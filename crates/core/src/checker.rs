//! The external Checker block (§IV-B, Fig. 3).
//!
//! Checkers are small, hardened logic blocks sitting outside (but near) each
//! PiM array. They receive, at logic-level granularity, the level's
//! computation results plus metadata — parity bits for ECiM, two redundant
//! copies for TRiM — through conventional memory reads, detect errors
//! (syndrome computation / majority vote), and send corrected data back to
//! the array through a write.
//!
//! The paper sizes the Checker with the NanGate 45 nm library and OpenROAD;
//! offline, [`CheckerCostModel`] substitutes a gate-count based area, energy
//! and latency model with per-operation costs in the same regime.

use nvpim_ecc::gf2::BitVec;
use nvpim_ecc::hamming::{DecodeOutcome, HammingCode};
use nvpim_ecc::redundancy::{majority_vote_words, VoteOutcome};
use serde::{Deserialize, Serialize};

/// Result of one Checker invocation on a logic level's data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// The (possibly corrected) data bits for this level.
    pub corrected_data: BitVec,
    /// Whether an error was detected.
    pub error_detected: bool,
    /// Positions (within this level's data bits) that were corrected and
    /// must be written back to the array.
    pub corrected_positions: Vec<usize>,
    /// Whether the error pattern exceeded the scheme's correction capability
    /// (detected but not correctable).
    pub uncorrectable: bool,
}

/// Outcome of one lean (allocation-free) ECiM level decode; see
/// [`EcimChecker::decode_level`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelDecode {
    /// Zero syndrome — nothing to write back.
    Clean,
    /// A single-bit error in data position `position` of the level: the
    /// caller flips that bit in the array.
    CorrectedData {
        /// Position within the level's data bits.
        position: usize,
    },
    /// A single-bit error in an unused data position or a parity bit —
    /// detected and corrected, but no data write-back is needed.
    CorrectedMeta,
    /// The syndrome matched no single-bit pattern (shortened codes only).
    Uncorrectable,
}

/// The ECiM Checker: a hardwired Hamming syndrome decoder plus a correction
/// XOR stage.
///
/// Borrows its [`HammingCode`] so per-run construction is free — the
/// Monte Carlo sweep builds one checker per trial, and cloning the code's
/// syndrome table there would dominate the hot path.
#[derive(Debug, Clone)]
pub struct EcimChecker<'a> {
    code: &'a HammingCode,
    cost: CheckerCostModel,
    checks: u64,
    corrections: u64,
    /// Reusable codeword assembly buffer for [`Self::decode_level`].
    codeword: BitVec,
}

impl<'a> EcimChecker<'a> {
    /// Builds a checker for the given Hamming code.
    pub fn new(code: &'a HammingCode) -> Self {
        let cost = CheckerCostModel::for_hamming(code);
        Self {
            code,
            cost,
            checks: 0,
            corrections: 0,
            codeword: BitVec::default(),
        }
    }

    /// Lean logic-level decode: assembles `[data | padding | parity]` into
    /// an internal reusable buffer, decodes, and reports just what the
    /// executor needs to act (at most one write-back position for a
    /// single-error code). The steady state allocates nothing — this is
    /// the Monte Carlo hot path; [`Self::check_level`] is the
    /// full-information variant.
    ///
    /// # Panics
    ///
    /// As [`Self::check_level`].
    pub fn decode_level(&mut self, data: &BitVec, parity: &BitVec) -> LevelDecode {
        assert!(
            data.len() <= self.code.k(),
            "level data ({}) exceeds code dimension k = {}",
            data.len(),
            self.code.k()
        );
        assert_eq!(
            parity.len(),
            self.code.parity_bits(),
            "parity width must match the code"
        );
        self.checks += 1;
        self.codeword.clear_resize(self.code.n());
        self.codeword.or_range(0, data);
        self.codeword.or_range(self.code.k(), parity);
        match self.code.decode(&mut self.codeword) {
            DecodeOutcome::Clean => LevelDecode::Clean,
            DecodeOutcome::Corrected { position } => {
                self.corrections += 1;
                if position < data.len() {
                    LevelDecode::CorrectedData { position }
                } else {
                    LevelDecode::CorrectedMeta
                }
            }
            DecodeOutcome::Uncorrectable => LevelDecode::Uncorrectable,
        }
    }

    /// Lane-parallel logic-level decode for the sliced backend: the level's
    /// data and parity bits arrive *transposed* — `data_words[j]` holds
    /// codeword position `j` across 64 trials (one per bit lane),
    /// `parity_words[i]` holds parity bit `i` likewise. The syndrome is
    /// evaluated for all lanes at once by folding each position's
    /// parity-update column over its lane word; `on_lane` is invoked (in
    /// ascending lane order) only for lanes whose syndrome is non-zero,
    /// with exactly the [`LevelDecode`] the scalar
    /// [`Self::decode_level`] would return for that lane's bits. Counts one
    /// check (the Checker block decodes all lanes in one invocation per
    /// trial, mirroring the scalar one-check-per-level accounting).
    ///
    /// Almost every lane is clean at paper-regime rates, so the per-lane
    /// scalar work runs on a handful of lanes per campaign.
    ///
    /// # Panics
    ///
    /// Panics if `data_words` exceeds the code dimension or `parity_words`
    /// is not `n − k` words.
    pub fn decode_level_lanes(
        &mut self,
        data_words: &[u64],
        parity_words: &[u64],
        valid: u64,
        syndrome: &mut Vec<u64>,
        mut on_lane: impl FnMut(usize, LevelDecode),
    ) {
        assert!(
            data_words.len() <= self.code.k(),
            "level data ({}) exceeds code dimension k = {}",
            data_words.len(),
            self.code.k()
        );
        assert_eq!(
            parity_words.len(),
            self.code.parity_bits(),
            "parity width must match the code"
        );
        self.checks += 1;
        syndrome.clear();
        syndrome.resize(parity_words.len(), 0);
        for (j, &word) in data_words.iter().enumerate() {
            if word == 0 {
                continue;
            }
            let mut mask = self.code.update_mask_word(j);
            while mask != 0 {
                let i = mask.trailing_zeros() as usize;
                syndrome[i] ^= word;
                mask &= mask - 1;
            }
        }
        let mut nonzero = 0u64;
        for (s, &p) in syndrome.iter_mut().zip(parity_words) {
            *s ^= p;
            nonzero |= *s;
        }
        let mut pending = nonzero & valid;
        while pending != 0 {
            let lane = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            let mut value = 0u64;
            for (i, &s) in syndrome.iter().enumerate() {
                value |= ((s >> lane) & 1) << i;
            }
            let outcome = match self.code.position_for_syndrome(value) {
                Some(position) if position < data_words.len() => {
                    self.corrections += 1;
                    LevelDecode::CorrectedData { position }
                }
                Some(_) => {
                    self.corrections += 1;
                    LevelDecode::CorrectedMeta
                }
                None => LevelDecode::Uncorrectable,
            };
            on_lane(lane, outcome);
        }
    }

    /// The Hamming code this checker decodes.
    pub fn code(&self) -> &HammingCode {
        self.code
    }

    /// The cost model of this checker instance.
    pub fn cost(&self) -> &CheckerCostModel {
        &self.cost
    }

    /// Number of checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of corrections performed.
    pub fn corrections(&self) -> u64 {
        self.corrections
    }

    /// Checks one logic level: `data` holds the level's gate outputs (at most
    /// `k` bits; shorter vectors are implicitly zero-padded, matching unused
    /// codeword positions), `parity` the in-memory running parity bits.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds `k` bits or `parity` is not `n − k` bits.
    pub fn check_level(&mut self, data: &BitVec, parity: &BitVec) -> CheckResult {
        assert!(
            data.len() <= self.code.k(),
            "level data ({}) exceeds code dimension k = {}",
            data.len(),
            self.code.k()
        );
        assert_eq!(
            parity.len(),
            self.code.parity_bits(),
            "parity width must match the code"
        );
        self.checks += 1;
        // Assemble `[data | zero padding | parity]` word-parallel; unused
        // codeword positions are implicitly zero.
        let mut codeword = BitVec::zeros(self.code.n());
        codeword.or_range(0, data);
        codeword.or_range(self.code.k(), parity);
        let outcome = self.code.decode(&mut codeword);
        let corrected_full = self.code.extract_data(&codeword);
        let corrected_data = corrected_full.slice(0..data.len());
        match outcome {
            DecodeOutcome::Clean => CheckResult {
                corrected_data,
                error_detected: false,
                corrected_positions: vec![],
                uncorrectable: false,
            },
            DecodeOutcome::Corrected { position } => {
                self.corrections += 1;
                let corrected_positions = if position < data.len() {
                    vec![position]
                } else {
                    // Error in an unused data position or a parity bit: no
                    // data write-back needed.
                    vec![]
                };
                CheckResult {
                    corrected_data,
                    error_detected: true,
                    corrected_positions,
                    uncorrectable: false,
                }
            }
            DecodeOutcome::Uncorrectable => CheckResult {
                corrected_data,
                error_detected: true,
                corrected_positions: vec![],
                uncorrectable: true,
            },
        }
    }
}

/// The TRiM Checker: per-bit majority voting over three copies.
#[derive(Debug, Clone, Default)]
pub struct TrimChecker {
    cost: CheckerCostModel,
    checks: u64,
    corrections: u64,
}

impl TrimChecker {
    /// Builds a TRiM checker sized for `level_bits` outputs per check.
    pub fn new(level_bits: usize) -> Self {
        Self {
            cost: CheckerCostModel::for_majority(level_bits),
            checks: 0,
            corrections: 0,
        }
    }

    /// The cost model of this checker instance.
    pub fn cost(&self) -> &CheckerCostModel {
        &self.cost
    }

    /// Number of checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of corrections performed.
    pub fn corrections(&self) -> u64 {
        self.corrections
    }

    /// Lean majority vote into a caller-owned buffer: `voted` receives the
    /// bitwise majority; returns whether any copy dissented (an error was
    /// detected). Allocation-free — the TRiM hot path; the caller derives
    /// write-back positions by diffing each copy against `voted`.
    pub fn vote_level_into(
        &mut self,
        primary: &BitVec,
        copy1: &BitVec,
        copy2: &BitVec,
        voted: &mut BitVec,
    ) -> bool {
        self.checks += 1;
        let dissent = nvpim_ecc::redundancy::tmr_vote_into(primary, copy1, copy2, voted);
        if dissent && primary != voted {
            self.corrections += 1;
        }
        dissent
    }

    /// Lane-parallel majority vote for the sliced backend: `a[g]`, `b[g]`
    /// and `c[g]` hold gate `g`'s three copies across 64 trials (one per
    /// bit lane). Writes the per-gate lane-parallel majority into `voted`
    /// and returns the mask of valid lanes in which *any* copy dissented —
    /// per lane, exactly the boolean [`Self::vote_level_into`] returns for
    /// that lane's bits. Counts one check.
    ///
    /// # Panics
    ///
    /// Panics if the copy slices differ in length.
    pub fn vote_level_lanes(
        &mut self,
        a: &[u64],
        b: &[u64],
        c: &[u64],
        valid: u64,
        voted: &mut Vec<u64>,
    ) -> u64 {
        assert!(
            a.len() == b.len() && b.len() == c.len(),
            "three equal-length copy planes required"
        );
        self.checks += 1;
        voted.clear();
        voted.reserve(a.len());
        let mut dissent = 0u64;
        let mut primary_diff = 0u64;
        for g in 0..a.len() {
            let v = nvpim_ecc::gf2::lanes::majority3(a[g], b[g], c[g]);
            dissent |= (a[g] ^ v) | (b[g] ^ v) | (c[g] ^ v);
            primary_diff |= a[g] ^ v;
            voted.push(v);
        }
        dissent &= valid;
        // Scalar accounting: one correction per dissenting check whose
        // primary copy changed — here, per such lane.
        self.corrections += u64::from((primary_diff & dissent).count_ones());
        dissent
    }

    /// Majority-votes the three copies of a logic level's outputs.
    ///
    /// # Panics
    ///
    /// Panics if the copies differ in length.
    pub fn check_level(&mut self, primary: &BitVec, copy1: &BitVec, copy2: &BitVec) -> CheckResult {
        self.checks += 1;
        let outcome = majority_vote_words(&[primary, copy1, copy2])
            .expect("three equal-length copies always produce a majority");
        let voted = outcome.value().clone();
        let corrected_positions: Vec<usize> = primary.xor(&voted).iter_ones().collect();
        let error_detected = matches!(outcome, VoteOutcome::Majority { .. });
        if !corrected_positions.is_empty() {
            self.corrections += 1;
        }
        CheckResult {
            corrected_data: voted,
            error_detected,
            corrected_positions,
            uncorrectable: false,
        }
    }
}

/// Gate-count based area / energy / latency model of a Checker block
/// (NanGate 45 nm + OpenROAD substitute).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckerCostModel {
    /// Equivalent NAND2 gate count of the block.
    pub gate_equivalents: u64,
    /// Energy per check invocation (fJ).
    pub energy_per_check_fj: f64,
    /// Latency per check invocation (ns).
    pub latency_per_check_ns: f64,
    /// Estimated silicon area (µm²), ~0.8 µm² per NAND2 at 45 nm.
    pub area_um2: f64,
}

impl Default for CheckerCostModel {
    fn default() -> Self {
        Self::for_majority(256)
    }
}

/// Energy of one NAND2-equivalent toggling at 45 nm (fJ).
const ENERGY_PER_GATE_FJ: f64 = 0.003;
/// Area of one NAND2-equivalent at 45 nm (µm²).
const AREA_PER_GATE_UM2: f64 = 0.8;

impl CheckerCostModel {
    /// Cost of a hardwired Hamming syndrome decoder + corrector for `code`.
    ///
    /// Syndrome generation is `(n−k)` XOR trees over (on average) half the
    /// codeword, the corrector is an `n`-way decoder plus an XOR per data
    /// bit.
    pub fn for_hamming(code: &HammingCode) -> Self {
        let n = code.n() as u64;
        let r = code.parity_bits() as u64;
        let syndrome_gates = r * n / 2 * 3; // XOR2 ≈ 3 NAND2 equivalents
        let corrector_gates = n * 4;
        let gate_equivalents = syndrome_gates + corrector_gates;
        Self::from_gates(gate_equivalents, 2.0)
    }

    /// Cost of a per-bit 3-way majority voter + comparator over `bits` bits.
    pub fn for_majority(bits: usize) -> Self {
        // MAJ3 + XOR-compare per bit ≈ 7 NAND2 equivalents.
        Self::from_gates(bits as u64 * 7, 1.0)
    }

    /// Cost of a detection-only even-parity checker over `bits` bits: an
    /// XOR reduction tree plus one comparator against the stored parity
    /// bit (the ParityDetect Checker).
    pub fn for_parity(bits: usize) -> Self {
        // A `bits`-wide XOR reduce is (bits − 1) XOR2s at ≈ 3 NAND2
        // equivalents each, plus the final compare.
        Self::from_gates((bits.max(1) as u64 - 1) * 3 + 1, 1.0)
    }

    fn from_gates(gate_equivalents: u64, latency_ns: f64) -> Self {
        Self {
            gate_equivalents,
            energy_per_check_fj: gate_equivalents as f64 * ENERGY_PER_GATE_FJ,
            latency_per_check_ns: latency_ns,
            area_um2: gate_equivalents as f64 * AREA_PER_GATE_UM2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(bits: &[u8]) -> BitVec {
        bits.iter().map(|&b| b == 1).collect()
    }

    #[test]
    fn clean_level_passes_through() {
        let code = HammingCode::new_standard(3);
        let mut checker = EcimChecker::new(&code);
        let data = bv(&[1, 0, 1, 1]);
        let parity = code.parity_of(&data);
        let result = checker.check_level(&data, &parity);
        assert!(!result.error_detected);
        assert_eq!(result.corrected_data, data);
        assert_eq!(checker.checks(), 1);
        assert_eq!(checker.corrections(), 0);
    }

    #[test]
    fn single_data_error_is_corrected_and_flagged_for_writeback() {
        let code = HammingCode::new_standard(3);
        let mut checker = EcimChecker::new(&code);
        let clean = bv(&[0, 1, 1, 0]);
        let parity = code.parity_of(&clean);
        let mut corrupted = clean.clone();
        corrupted.flip(2);
        let result = checker.check_level(&corrupted, &parity);
        assert!(result.error_detected);
        assert!(!result.uncorrectable);
        assert_eq!(result.corrected_data, clean);
        assert_eq!(result.corrected_positions, vec![2]);
        assert_eq!(checker.corrections(), 1);
    }

    #[test]
    fn parity_bit_error_needs_no_data_writeback() {
        let code = HammingCode::new_standard(3);
        let mut checker = EcimChecker::new(&code);
        let data = bv(&[1, 1, 0, 0]);
        let mut parity = code.parity_of(&data);
        parity.flip(1);
        let result = checker.check_level(&data, &parity);
        assert!(result.error_detected);
        assert!(result.corrected_positions.is_empty());
        assert_eq!(result.corrected_data, data);
    }

    #[test]
    fn short_levels_are_zero_padded() {
        // A level with fewer outputs than k still decodes correctly.
        let code = HammingCode::new_standard(8);
        let mut checker = EcimChecker::new(&code);
        let mut data = BitVec::zeros(10);
        data.set(3, true);
        data.set(7, true);
        let mut full = data.clone();
        full = full.concat(&BitVec::zeros(code.k() - 10));
        let parity = code.parity_of(&full);
        let mut corrupted = data.clone();
        corrupted.flip(5);
        let result = checker.check_level(&corrupted, &parity);
        assert!(result.error_detected);
        assert_eq!(result.corrected_data, data);
        assert_eq!(result.corrected_positions, vec![5]);
    }

    #[test]
    fn trim_checker_votes_out_single_copy_errors() {
        let mut checker = TrimChecker::new(8);
        let good = bv(&[1, 0, 1, 1, 0, 0, 1, 0]);
        let mut bad = good.clone();
        bad.flip(4);
        let result = checker.check_level(&bad, &good, &good);
        assert!(result.error_detected);
        assert_eq!(result.corrected_data, good);
        assert_eq!(result.corrected_positions, vec![4]);
        assert_eq!(checker.corrections(), 1);

        let clean = checker.check_level(&good, &good, &good);
        assert!(!clean.error_detected);
        assert!(clean.corrected_positions.is_empty());
        assert_eq!(checker.checks(), 2);
    }

    #[test]
    fn trim_checker_corrects_errors_in_redundant_copies_without_writeback() {
        let mut checker = TrimChecker::new(4);
        let good = bv(&[0, 1, 1, 0]);
        let mut bad_copy = good.clone();
        bad_copy.flip(0);
        let result = checker.check_level(&good, &bad_copy, &good);
        assert!(result.error_detected);
        // The primary copy was already correct: nothing to write back.
        assert!(result.corrected_positions.is_empty());
        assert_eq!(result.corrected_data, good);
    }

    #[test]
    fn cost_models_scale_with_problem_size() {
        let small = CheckerCostModel::for_hamming(&HammingCode::new_standard(3));
        let large = CheckerCostModel::for_hamming(&HammingCode::new_standard(8));
        assert!(large.gate_equivalents > small.gate_equivalents);
        assert!(large.energy_per_check_fj > small.energy_per_check_fj);
        assert!(large.area_um2 > small.area_um2);

        let maj_small = CheckerCostModel::for_majority(16);
        let maj_large = CheckerCostModel::for_majority(256);
        assert!(maj_large.gate_equivalents > maj_small.gate_equivalents);
        // The ECiM checker for Hamming(255,247) is heavier than a 256-bit
        // majority voter but both stay small (well under a million gates).
        assert!(large.gate_equivalents < 1_000_000);
    }
}
