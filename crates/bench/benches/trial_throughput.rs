//! Monte Carlo trial throughput on the paper-regime point: gate error rate
//! 1e-4, ECiM with a shortened Hamming(71, 64) code, 256×256 STT-MRAM
//! array, MAC(8×4) workload.
//!
//! Two paths are measured:
//!
//! * `packed_arena_skip` — the engine's hot path: bit-packed array reset in
//!   place, per-thread [`TrialArena`] buffers, skip-sampled fault
//!   injection, allocation-free executor scratch.
//! * `legacy_fresh_bernoulli` — the pre-optimization trial shape: a fresh
//!   array allocation per trial, per-operation Bernoulli fault draws, and
//!   a fresh executor scratch per run. (The word-packed ECC kernels are
//!   shared code and benefit both paths, so the printed ratio *understates*
//!   the full speedup over the pre-PR engine.)
//!
//! Besides the criterion-style console lines, the bench writes
//! `BENCH_trials.json` (override the location with `NVPIM_BENCH_OUT`) with
//! absolute trials/sec for both paths so CI can track the perf trajectory
//! per PR. Set `NVPIM_BENCH_QUICK=1` to cut sample counts for smoke runs.

use std::time::Instant;

use criterion::{black_box, Criterion};
use nvpim_sim::array::PimArray;
use nvpim_sim::fault::{ErrorRates, FaultInjector};
use nvpim_sim::technology::Technology;
use nvpim_sweep::{
    derive_trial_seed, trial_stream_seeds, ProtectionConfig, SweepWorkload, TrialArena,
    TrialHarness,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const GATE_ERROR_RATE: f64 = 1e-4;
const CAMPAIGN_SEED: u64 = 0x7147_0000;

fn quick_mode() -> bool {
    std::env::var("NVPIM_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The paper-regime point: ECiM/m-o on STT-MRAM with Hamming(71, 64).
fn paper_regime_harness() -> TrialHarness {
    let config = ProtectionConfig::ECIM
        .design_config(Technology::SttMram)
        .with_hamming_data_bits(64);
    TrialHarness::new(
        SweepWorkload::Mac {
            acc_bits: 8,
            mul_bits: 4,
        },
        ProtectionConfig::ECIM,
        config,
        GATE_ERROR_RATE,
    )
    .expect("paper-regime point compiles")
}

/// One trial the way the pre-optimization engine ran it: fresh array
/// allocation, per-op Bernoulli sampling, fresh per-run scratch.
fn run_trial_legacy(harness: &TrialHarness, trial_index: u64) -> u64 {
    let base_seed = derive_trial_seed(CAMPAIGN_SEED, 0, trial_index);
    let (input_seed, fault_seed) = trial_stream_seeds(base_seed);
    let mut input_rng = ChaCha8Rng::seed_from_u64(input_seed);
    let netlist = &harness.kernel().netlist;
    let inputs: Vec<bool> = (0..netlist.inputs.len())
        .map(|_| input_rng.gen_bool(0.5))
        .collect();
    let expected = netlist.evaluate(&inputs);
    let rates = ErrorRates {
        gate: GATE_ERROR_RATE,
        ..ErrorRates::NONE
    };
    let mut array = PimArray::standard(harness.config().technology)
        .with_fault_injector(FaultInjector::new(rates, fault_seed).with_per_op_sampling());
    let report = harness
        .executor()
        .run(netlist, &harness.kernel().schedule, &mut array, 0, &inputs)
        .expect("trial executes");
    report
        .outputs
        .iter()
        .zip(&expected)
        .filter(|(got, want)| got != want)
        .count() as u64
}

/// Wall-clock trials/sec of `f` over `n` trials.
fn measure(n: u64, mut f: impl FnMut(u64)) -> f64 {
    let start = Instant::now();
    for t in 0..n {
        f(t);
    }
    n as f64 / start.elapsed().as_secs_f64()
}

fn bench_trial_throughput(c: &mut Criterion) {
    let harness = paper_regime_harness();
    let mut group = c.benchmark_group("trial_throughput");

    group.bench_function("packed_arena_skip", |b| {
        let mut arena = TrialArena::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(harness.run_trial(CAMPAIGN_SEED, t, &mut arena))
        });
    });

    group.bench_function("legacy_fresh_bernoulli", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(run_trial_legacy(&harness, t))
        });
    });

    group.finish();
}

/// Measures both paths with enough trials for a stable ratio and writes
/// `BENCH_trials.json`.
fn emit_json() {
    let harness = paper_regime_harness();
    let (engine_trials, legacy_trials) = if quick_mode() {
        (1_000u64, 100u64)
    } else {
        (8_000u64, 800u64)
    };

    // Warm-up.
    let mut arena = TrialArena::new();
    for t in 0..64 {
        harness.run_trial(CAMPAIGN_SEED, t, &mut arena);
    }

    let engine_tps = measure(engine_trials, |t| {
        black_box(harness.run_trial(CAMPAIGN_SEED, t, &mut arena));
    });
    let legacy_tps = measure(legacy_trials, |t| {
        black_box(run_trial_legacy(&harness, t));
    });
    let speedup = engine_tps / legacy_tps;

    let out_path = std::env::var("NVPIM_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_trials.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"trial_throughput\",\n",
            "  \"point\": {{\n",
            "    \"workload\": \"mac8x4\",\n",
            "    \"protection\": \"ECiM/m-o\",\n",
            "    \"technology\": \"{tech}\",\n",
            "    \"code\": \"Hamming({n},{k})\",\n",
            "    \"gate_error_rate\": {rate},\n",
            "    \"array\": \"256x256\"\n",
            "  }},\n",
            "  \"engine_trials\": {et},\n",
            "  \"legacy_trials\": {lt},\n",
            "  \"engine_trials_per_sec\": {etps:.1},\n",
            "  \"legacy_trials_per_sec\": {ltps:.1},\n",
            "  \"speedup_vs_legacy_mode\": {speedup:.2},\n",
            "  \"note\": \"legacy mode = fresh array + per-op Bernoulli + fresh scratch, ",
            "replaying the engine's exact per-trial input/fault streams; the ",
            "word-packed ECC kernels are shared code that speeds this mode up ",
            "too, so the ratio is a lower bound on the speedup vs the pre-PR ",
            "engine (see docs/performance.md for the measured pre-PR reference)\"\n",
            "}}\n"
        ),
        tech = harness.config().technology,
        n = harness.executor().code().n(),
        k = harness.executor().code().k(),
        rate = GATE_ERROR_RATE,
        et = engine_trials,
        lt = legacy_trials,
        etps = engine_tps,
        ltps = legacy_tps,
        speedup = speedup,
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}\n{json}"),
        Err(err) => eprintln!("could not write {out_path}: {err}"),
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_trial_throughput(&mut criterion);
    emit_json();
}
