//! Offline stand-in for the real `serde_json` crate.
//!
//! Renders the stub `serde::Value` tree as JSON text and parses JSON text
//! back into a [`Value`] tree ([`from_str`]). Output is fully
//! deterministic: object keys keep insertion order (struct declaration
//! order), floats render via Rust's shortest-roundtrip formatting, and
//! non-finite floats render as `null` (matching serde_json's lossy modes).
//! Parsing preserves object key order, so a parse → serialize roundtrip of
//! stub-produced JSON is byte-identical.

use serde::Serialize;
pub use serde::Value;

/// Error type for serialization and parsing.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(offset: usize, message: impl Into<String>) -> Self {
        Error(format!("at byte {offset}: {}", message.into()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stub error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_json(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent, like the
/// real serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_json(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON into an `io::Write` sink.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(e.to_string()))
}

/// Serializes `value` as pretty JSON into an `io::Write` sink.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string_pretty(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(e.to_string()))
}

/// Parses a JSON document into a [`Value`] tree.
///
/// Object key order is preserved, integers without a fraction/exponent parse
/// to `UInt`/`Int` (so numeric JSON roundtrips losslessly through the stub's
/// writer), and trailing garbage after the document is an error.
pub fn from_str(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(p.pos, "trailing characters after JSON value"));
    }
    Ok(value)
}

/// Maximum nesting depth accepted by [`from_str`] (DoS guard for the
/// network-facing service protocol).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::parse(self.pos, "JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::parse(
                self.pos,
                format!("unexpected character `{}`", other as char),
            )),
            None => Err(Error::parse(self.pos, "unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::parse(self.pos, format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::parse(self.pos, "expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(self.pos, "expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::parse(
                                            self.pos,
                                            "invalid low surrogate",
                                        ));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::parse(self.pos, "lone surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| {
                                    Error::parse(self.pos, "invalid unicode escape")
                                })?,
                            );
                        }
                        other => {
                            return Err(Error::parse(
                                self.pos,
                                format!("invalid escape `\\{}`", other as char),
                            ))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::parse(self.pos, "control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte sequence is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::parse(self.pos, "invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::parse(self.pos, "truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::parse(self.pos, "invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::parse(self.pos, "invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse(start, "invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse(start, format!("invalid number `{text}`")))
    }
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: always include a decimal point or
                // exponent so the token reads back as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_rendering() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".to_string(), Value::Float(0.5)),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null],"c":0.5}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("2.5e-3").unwrap(), Value::Float(0.0025));
        assert_eq!(from_str(r#""a\nbA""#).unwrap(), Value::Str("a\nbA".into()));
        assert_eq!(
            from_str(r#"[1, "x", {"k": false}]"#).unwrap(),
            Value::Array(vec![
                Value::UInt(1),
                Value::Str("x".into()),
                Value::Object(vec![("k".into(), Value::Bool(false))]),
            ])
        );
    }

    #[test]
    fn parse_preserves_object_key_order() {
        let v = from_str(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            "tru",
            "1 2",
            r#""unterminated"#,
            "{]",
            "nul",
            r#"{"a":}"#,
        ] {
            assert!(from_str(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_serialize_roundtrip_is_identity() {
        let text = r#"{"a":1,"b":[true,null,-3,0.25],"c":{"d":"x\ny"},"e":1e300}"#;
        let v = from_str(text).unwrap();
        let rendered = to_string(&v).unwrap();
        assert_eq!(from_str(&rendered).unwrap(), v);
        // Pretty output also roundtrips to the same tree.
        assert_eq!(from_str(&to_string_pretty(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn parse_depth_is_bounded() {
        let deep = "[".repeat(400) + &"]".repeat(400);
        assert!(from_str(&deep).is_err());
    }
}
