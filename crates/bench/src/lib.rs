//! # nvpim-bench
//!
//! Shared harness for regenerating every table and figure of the paper's
//! evaluation. Each `src/bin/*.rs` binary reproduces one artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table2_design_space`  | Table II — asymptotic SEP design space |
//! | `table3_technology`    | Table III — technology parameters |
//! | `table4_area_reclaims` | Table IV — number of area reclaims |
//! | `table5_energy_overhead` | Table V — energy overhead vs unprotected baseline |
//! | `fig6_sep_cases`       | Fig. 6 — SEP guarantee case analysis |
//! | `fig7_time_overhead`   | Fig. 7 — time overhead vs unprotected baseline |
//! | `fig8_parity_bits`     | Fig. 8 — parity bits vs correctable errors |
//! | `fig9_electrical`      | Fig. 9 — noise margins and bias voltages |
//!
//! Every binary accepts `--quick` to run the reduced smoke suite instead of
//! the full twelve-benchmark sweep, and `--json` to emit machine-readable
//! output alongside the human-readable table.

#![warn(missing_docs)]

use nvpim::core::system::{compare, evaluate, ExecutionEstimate, OverheadReport};
use nvpim::{Benchmark, DesignConfig, Technology};
use serde::Serialize;

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone, Default)]
pub struct HarnessOptions {
    /// Run the reduced smoke suite instead of the full paper suite.
    pub quick: bool,
    /// Also emit JSON to stdout after the table.
    pub json: bool,
    /// Additionally run a Monte Carlo fault-injection campaign
    /// (`nvpim-sweep`) alongside the analytic table.
    pub sweep: bool,
    /// Run the campaign through a remote `nvpim-serviced` at this address
    /// instead of in-process (`--connect HOST:PORT`).
    pub connect: Option<String>,
    /// After the table, start an `nvpim-serviced` daemon on this address
    /// and serve campaigns until a `shutdown` request (`--serve HOST:PORT`).
    pub serve: Option<String>,
    /// Simulation backend for in-process `--sweep` campaigns
    /// (`--backend scalar|sliced`; default sliced). Reports are
    /// byte-identical either way — scalar is the cross-check path.
    pub backend: nvpim::SimBackend,
}

impl HarnessOptions {
    /// Parses options from `std::env::args`. `--list-schemes` prints the
    /// protection-scheme registry (with per-scheme capabilities) and exits,
    /// so every harness binary answers "which schemes can I sweep?" without
    /// running anything.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if nvpim::service::flags::has_flag(&args, "--list-schemes") {
            print_scheme_registry();
            std::process::exit(0);
        }
        Self::parse(&args)
    }

    /// Parses options from an explicit argument list (testable core of
    /// [`Self::from_args`]).
    pub fn parse(args: &[String]) -> Self {
        use nvpim::service::flags::{has_flag, value_of};
        let backend = match value_of(args, "--backend") {
            None => nvpim::SimBackend::default(),
            Some(text) => text.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            }),
        };
        Self {
            quick: has_flag(args, "--quick"),
            json: has_flag(args, "--json"),
            sweep: has_flag(args, "--sweep"),
            connect: value_of(args, "--connect"),
            serve: value_of(args, "--serve"),
            backend,
        }
    }

    /// The benchmark suite selected by these options.
    pub fn suite(&self) -> Vec<Benchmark> {
        if self.quick {
            Benchmark::smoke_suite()
        } else {
            Benchmark::paper_suite()
        }
    }
}

/// One row of a benchmark sweep: the protected designs' overheads relative
/// to the iso-area unprotected baseline.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Technology.
    pub technology: String,
    /// ECiM (multi-output) overheads.
    pub ecim: OverheadReport,
    /// TRiM (multi-output) overheads.
    pub trim: OverheadReport,
    /// ECiM single-output energy overhead.
    pub ecim_single_output_energy: f64,
    /// TRiM single-output energy overhead.
    pub trim_single_output_energy: f64,
}

/// Evaluates one benchmark on one technology across the unprotected
/// baseline, ECiM and TRiM (both gate styles), reusing the per-design
/// compiled schedules.
pub fn sweep_benchmark(bench: Benchmark, technology: Technology) -> SweepRow {
    let netlist = bench.row_netlist();
    let shape = bench.shape();
    let run = |config: &DesignConfig| -> ExecutionEstimate {
        evaluate(&netlist, &shape, config).expect("paper workloads fit the 256-column row")
    };
    let baseline = run(&DesignConfig::unprotected(technology));
    let ecim = run(&DesignConfig::ecim(technology));
    let trim = run(&DesignConfig::trim(technology));
    let ecim_so = run(&DesignConfig::ecim(technology).with_single_output_gates());
    let trim_so = run(&DesignConfig::trim(technology).with_single_output_gates());
    SweepRow {
        benchmark: bench.name(),
        technology: technology.to_string(),
        ecim: compare(&ecim, &baseline),
        trim: compare(&trim, &baseline),
        ecim_single_output_energy: compare(&ecim_so, &baseline).energy_overhead,
        trim_single_output_energy: compare(&trim_so, &baseline).energy_overhead,
    }
}

/// Runs the sweep for every benchmark in the suite on one technology.
pub fn sweep_suite(suite: &[Benchmark], technology: Technology) -> Vec<SweepRow> {
    suite
        .iter()
        .map(|&b| sweep_benchmark(b, technology))
        .collect()
}

/// Prints the compile-time protection-scheme registry with per-scheme
/// capabilities (evaluated at the paper's standard STT-MRAM design point)
/// — the `--list-schemes` output shared by every harness binary.
pub fn print_scheme_registry() {
    let rows: Vec<Vec<String>> = nvpim::scheme_capabilities()
        .into_iter()
        .map(|(scheme, caps)| {
            vec![
                scheme.wire_name().to_string(),
                scheme.name().to_string(),
                caps.sliceable.to_string(),
                caps.detect_only.to_string(),
                caps.parity_bits.to_string(),
                caps.metadata_columns.to_string(),
                caps.cells_per_value.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "scheme",
            "display",
            "sliceable",
            "detect-only",
            "parity bits",
            "metadata cols",
            "cells/value",
        ],
        &rows,
    );
}

/// Prints a simple fixed-width table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        println!("| {} |", joined.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Serializes a value as pretty JSON for the `--json` flag.
pub fn print_json<T: Serialize>(value: &T) {
    println!(
        "{}",
        serde_json::to_string_pretty(value).expect("harness results serialize to JSON")
    );
}

/// Runs the Monte Carlo fault-injection campaign behind the `--sweep` flag
/// and prints its per-point table (plus JSON when `json` is set).
///
/// The analytic tables above estimate *cost*; this campaign measures
/// *efficacy*: how often injected faults corrupt the final output under
/// each protection scheme, with detection / correction / silent-error
/// counters per campaign point.
pub fn run_monte_carlo_sweep(opts: &HarnessOptions) {
    let plan = selected_plan(opts);
    println!(
        "\nMonte Carlo fault sweep — {} points x {} seeds = {} trials ({} backend)",
        plan.point_count(),
        plan.seeds_per_point,
        plan.trial_count(),
        opts.backend
    );
    let report = nvpim::sweep::run_campaign_with_backend(&plan, opts.backend)
        .expect("sweep campaign plans are executable");
    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                p.workload.clone(),
                p.technology.clone(),
                p.protection.clone(),
                format!("{:.0e}", p.gate_error_rate),
                p.faults_injected.to_string(),
                p.errors_detected.to_string(),
                p.corrections_written_back.to_string(),
                p.failed_trials.to_string(),
                p.silent_failures.to_string(),
                p.exec_errors.to_string(),
                format!("{:.3}", p.output_error_rate),
            ]
        })
        .collect();
    print_table(
        &[
            "workload",
            "technology",
            "protection",
            "rate",
            "faults",
            "detected",
            "corrected",
            "failed",
            "silent",
            "exec errs",
            "out err rate",
        ],
        &rows,
    );
    println!(
        "({} schedules compiled for {} points; schedule cache shared the rest)",
        report.schedules_compiled,
        report.points.len()
    );
    if report.total_exec_errors > 0 {
        println!(
            "WARNING: {} trials failed to execute at all — the error rates above \
             rest on fewer trials than planned",
            report.total_exec_errors
        );
    }
    if opts.json {
        println!("{}", report.to_json());
    }
}

/// The shared tail of every harness binary: emit JSON when requested, run
/// the Monte Carlo campaign (`--sweep` locally, `--connect` through a
/// remote daemon), and finally enter daemon mode for `--serve`.
///
/// Previously this block — and the `--sweep` handling inside it — was
/// copy-pasted into each binary; the binaries now delegate here.
pub fn finish_harness<T: Serialize>(opts: &HarnessOptions, rows: &T) {
    if opts.json {
        print_json(rows);
    }
    if let Some(addr) = &opts.connect {
        run_remote_sweep(addr, opts);
    } else if opts.sweep {
        run_monte_carlo_sweep(opts);
    }
    if let Some(addr) = &opts.serve {
        serve_campaigns(addr, opts);
    }
}

/// The campaign plan selected by the shared options.
fn selected_plan(opts: &HarnessOptions) -> nvpim::SweepPlan {
    if opts.quick {
        nvpim::SweepPlan::quick()
    } else {
        nvpim::SweepPlan::paper_scale()
    }
}

/// Runs the `--sweep` campaign on a remote `nvpim-serviced` (`--connect`):
/// submits the plan, waits, and prints the returned report JSON — which is
/// byte-identical to a local `run_campaign` of the same plan.
pub fn run_remote_sweep(addr: &str, opts: &HarnessOptions) {
    use serde::Value;

    let plan = selected_plan(opts);
    let plan_value: Value =
        serde_json::from_str(&plan.canonical_json()).expect("canonical plan JSON parses");
    let mut client = nvpim::service::Client::connect(addr)
        .unwrap_or_else(|e| panic!("connecting to nvpim-serviced at {addr}: {e}"));
    let accepted = client
        .request(&nvpim::service::client::request(
            "submit",
            vec![("plan".to_string(), plan_value)],
        ))
        .expect("submit request");
    assert_eq!(
        accepted.get("ok").and_then(Value::as_bool),
        Some(true),
        "submit failed: {accepted:?}"
    );
    let job = accepted.get("job").and_then(Value::as_u64).expect("job id");
    eprintln!(
        "submitted campaign to {addr} as job {job} (cached: {})",
        accepted
            .get("cached")
            .and_then(Value::as_bool)
            .unwrap_or(false)
    );
    let result = client
        .request(&nvpim::service::client::request(
            "result",
            vec![
                ("job".to_string(), Value::UInt(job)),
                ("wait".to_string(), Value::Bool(true)),
            ],
        ))
        .expect("result request");
    assert_eq!(
        result.get("ok").and_then(Value::as_bool),
        Some(true),
        "campaign failed: {result:?}"
    );
    let report = result.get("report").expect("result carries a report");
    println!(
        "{}",
        serde_json::to_string_pretty(report).expect("report serializes")
    );
}

/// Starts an in-process campaign service on `addr` (`--serve`) and serves
/// the NDJSON protocol until a client sends `shutdown`.
pub fn serve_campaigns(addr: &str, _opts: &HarnessOptions) {
    let service = nvpim::service::ServiceHandle::start(nvpim::service::ServiceConfig::default());
    if let Err(e) = nvpim::service::run_server(addr, &service) {
        panic!("serving campaigns on {addr}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_smoke_benchmark_produces_positive_overheads() {
        let row = sweep_benchmark(Benchmark::MatMul { dim: 8 }, Technology::SttMram);
        assert_eq!(row.benchmark, "mm8");
        assert!(row.ecim.time_overhead_pct > 0.0);
        assert!(row.trim.time_overhead_pct > 0.0);
        assert!(row.ecim.energy_overhead > 0.0);
        assert!(row.ecim_single_output_energy > row.ecim.energy_overhead);
        assert!(row.trim_single_output_energy > row.trim.energy_overhead);
    }

    #[test]
    fn options_default_to_full_suite() {
        let opts = HarnessOptions::default();
        assert_eq!(opts.suite().len(), 12);
        let quick = HarnessOptions {
            quick: true,
            ..Default::default()
        };
        assert_eq!(quick.suite().len(), 3);
    }

    #[test]
    fn parse_handles_service_flags() {
        let args: Vec<String> = [
            "bin",
            "--quick",
            "--sweep",
            "--connect",
            "127.0.0.1:7171",
            "--serve",
            "0.0.0.0:9",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = HarnessOptions::parse(&args);
        assert!(opts.quick && opts.sweep && !opts.json);
        assert_eq!(opts.connect.as_deref(), Some("127.0.0.1:7171"));
        assert_eq!(opts.serve.as_deref(), Some("0.0.0.0:9"));
        // Flags without values parse as absent, not as panics.
        let bare: Vec<String> = ["bin", "--connect"].iter().map(|s| s.to_string()).collect();
        assert_eq!(HarnessOptions::parse(&bare).connect, None);
    }
}
