//! Gate-level netlists produced by the PiM synthesis flow (§II-B step 2).
//!
//! A [`Netlist`] is a DAG of NOR / THR gate operations over *nets* (single
//! bits). Workload generators build netlists with
//! [`crate::builder::CircuitBuilder`]; the scheduler
//! ([`crate::schedule`]) maps them to per-row PiM gate schedules. The
//! netlist also doubles as the behavioral reference simulator used for
//! functional validation.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a single-bit net within a netlist.
pub type NetId = usize;

/// The logic operation of one netlist gate. All operations are directly
/// executable by the PiM substrate (NOR-family or THR).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicOp {
    /// Multi-input NOR (1–4 inputs in practice).
    Nor,
    /// The 4-input thresholding gate: output is 1 when at least 3 inputs are 0.
    Thr,
    /// Copy of a single net (Table I's `CP`).
    Copy,
    /// Constant 0 (a preset).
    Zero,
    /// Constant 1 (a preset).
    One,
}

/// One gate of a netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// The operation.
    pub op: LogicOp,
    /// Input nets (empty for constants).
    pub inputs: Vec<NetId>,
    /// The single output net this gate drives.
    pub output: NetId,
}

impl Gate {
    /// Evaluates the gate given resolved input values.
    pub fn evaluate(&self, values: &[bool]) -> bool {
        match self.op {
            LogicOp::Nor => !values.iter().any(|&v| v),
            LogicOp::Thr => values.iter().filter(|&&v| !v).count() >= 3,
            LogicOp::Copy => values[0],
            LogicOp::Zero => false,
            LogicOp::One => true,
        }
    }
}

/// A combinational netlist over NOR/THR gates.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Netlist {
    /// Primary input nets, in declaration order.
    pub inputs: Vec<NetId>,
    /// Primary output nets, in declaration order.
    pub outputs: Vec<NetId>,
    /// Gates in topological order (guaranteed by the builder).
    pub gates: Vec<Gate>,
    /// Total number of nets (inputs + gate outputs).
    pub net_count: usize,
}

/// Summary statistics of a netlist, including its logic-level structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Number of gates (excluding constants).
    pub gate_count: usize,
    /// Number of THR gates.
    pub thr_count: usize,
    /// Number of primary inputs.
    pub input_count: usize,
    /// Number of primary outputs.
    pub output_count: usize,
    /// Circuit depth in logic levels.
    pub depth: usize,
    /// Number of gates in each logic level.
    pub gates_per_level: Vec<usize>,
}

impl Netlist {
    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Assigns each gate an ASAP logic level: level 0 gates depend only on
    /// primary inputs / constants; a gate's level is one more than the
    /// maximum level of its producing gates. Gates in the same level are
    /// never data-dependent, which is the property the paper's logic-level
    /// granularity error checks rely on (§IV-E).
    pub fn logic_levels(&self) -> Vec<usize> {
        let mut net_level: HashMap<NetId, usize> = HashMap::new();
        for &input in &self.inputs {
            net_level.insert(input, 0);
        }
        let mut levels = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let level = gate
                .inputs
                .iter()
                .map(|n| net_level.get(n).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            let gate_level = match gate.op {
                LogicOp::Zero | LogicOp::One => 0,
                _ => level + usize::from(!gate.inputs.is_empty()),
            };
            levels.push(gate_level);
            net_level.insert(gate.output, gate_level);
        }
        levels
    }

    /// Computes summary statistics (gate counts, depth, level widths).
    pub fn stats(&self) -> NetlistStats {
        let levels = self.logic_levels();
        let depth = levels.iter().copied().max().unwrap_or(0);
        let mut gates_per_level = vec![0usize; depth + 1];
        let mut thr_count = 0;
        for (gate, &level) in self.gates.iter().zip(&levels) {
            if matches!(gate.op, LogicOp::Zero | LogicOp::One) {
                continue;
            }
            gates_per_level[level] += 1;
            if gate.op == LogicOp::Thr {
                thr_count += 1;
            }
        }
        NetlistStats {
            gate_count: self
                .gates
                .iter()
                .filter(|g| !matches!(g.op, LogicOp::Zero | LogicOp::One))
                .count(),
            thr_count,
            input_count: self.inputs.len(),
            output_count: self.outputs.len(),
            depth,
            gates_per_level,
        }
    }

    /// Behavioral simulation: evaluates the netlist on the given primary
    /// input values, returning the primary output values. This is the
    /// functional-validation reference the paper's behavioral simulator
    /// provides.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the number of primary
    /// inputs.
    pub fn evaluate(&self, input_values: &[bool]) -> Vec<bool> {
        let mut values = Vec::new();
        let mut outputs = Vec::new();
        self.evaluate_into(input_values, &mut values, &mut outputs);
        outputs
    }

    /// [`Self::evaluate`] into caller-owned buffers: `values` is the
    /// net-value working array, `outputs` receives the primary output
    /// values. Both are cleared and refilled, so reusing them across
    /// evaluations (e.g. per Monte Carlo trial) allocates nothing in the
    /// steady state.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the number of primary
    /// inputs.
    pub fn evaluate_into(
        &self,
        input_values: &[bool],
        values: &mut Vec<bool>,
        outputs: &mut Vec<bool>,
    ) {
        assert_eq!(
            input_values.len(),
            self.inputs.len(),
            "expected {} input values",
            self.inputs.len()
        );
        values.clear();
        values.resize(self.net_count, false);
        for (&net, &v) in self.inputs.iter().zip(input_values) {
            values[net] = v;
        }
        let mut gate_inputs = [false; 8];
        let mut overflow = Vec::new();
        for gate in &self.gates {
            let resolved: &[bool] = if gate.inputs.len() <= gate_inputs.len() {
                for (slot, &n) in gate_inputs.iter_mut().zip(&gate.inputs) {
                    *slot = values[n];
                }
                &gate_inputs[..gate.inputs.len()]
            } else {
                overflow.clear();
                overflow.extend(gate.inputs.iter().map(|&n| values[n]));
                &overflow
            };
            values[gate.output] = gate.evaluate(resolved);
        }
        outputs.clear();
        outputs.extend(self.outputs.iter().map(|&n| values[n]));
    }

    /// Lane-parallel behavioral simulation: like [`Self::evaluate_into`],
    /// but every net carries a `u64` of 64 *independent* lanes (bit `k` =
    /// that net's value in trial `k`), so one pass evaluates 64 input
    /// vectors at once. `input_values` holds one word per primary input;
    /// `outputs` receives one word per primary output. Lane `k` of the
    /// outputs equals `evaluate` of lane `k` of the inputs — the sliced
    /// Monte Carlo backend's reference-output path.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the number of primary
    /// inputs.
    pub fn evaluate_lanes_into(
        &self,
        input_values: &[u64],
        values: &mut Vec<u64>,
        outputs: &mut Vec<u64>,
    ) {
        assert_eq!(
            input_values.len(),
            self.inputs.len(),
            "expected {} input values",
            self.inputs.len()
        );
        values.clear();
        values.resize(self.net_count, 0);
        for (&net, &v) in self.inputs.iter().zip(input_values) {
            values[net] = v;
        }
        for gate in &self.gates {
            values[gate.output] = match gate.op {
                LogicOp::Nor => {
                    let mut any = 0u64;
                    for &n in &gate.inputs {
                        any |= values[n];
                    }
                    !any
                }
                LogicOp::Thr => nvpim_ecc::gf2::lanes::at_least_three_zeros(
                    gate.inputs.iter().map(|&n| values[n]),
                ),
                LogicOp::Copy => values[gate.inputs[0]],
                LogicOp::Zero => 0,
                LogicOp::One => u64::MAX,
            };
        }
        outputs.clear();
        outputs.extend(self.outputs.iter().map(|&n| values[n]));
    }

    /// For each net, the index of the last gate (in topological order) that
    /// reads it, or `None` if it is never read (primary outputs are treated
    /// as read at a virtual position after the last gate). Used by the
    /// scratch allocator to decide when a cell's value is dead.
    pub fn last_uses(&self) -> HashMap<NetId, usize> {
        let mut last: HashMap<NetId, usize> = HashMap::new();
        for (idx, gate) in self.gates.iter().enumerate() {
            for &input in &gate.inputs {
                last.insert(input, idx);
            }
        }
        for &output in &self.outputs {
            last.insert(output, self.gates.len());
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn gate_evaluate_semantics() {
        let nor = Gate {
            op: LogicOp::Nor,
            inputs: vec![0, 1],
            output: 2,
        };
        assert!(nor.evaluate(&[false, false]));
        assert!(!nor.evaluate(&[true, false]));
        let thr = Gate {
            op: LogicOp::Thr,
            inputs: vec![0, 1, 2, 3],
            output: 4,
        };
        assert!(thr.evaluate(&[false, false, false, true]));
        assert!(!thr.evaluate(&[false, false, true, true]));
    }

    #[test]
    fn levels_respect_dependencies() {
        let mut b = CircuitBuilder::new();
        let a = b.input();
        let c = b.input();
        let n1 = b.nor(&[a, c]);
        let n2 = b.nor(&[n1, a]);
        let n3 = b.nor(&[n2, n1]);
        b.mark_output(n3);
        let netlist = b.finish();
        let levels = netlist.logic_levels();
        // gates are in topological order; each level strictly increases here
        assert_eq!(levels, vec![1, 2, 3]);
        let stats = netlist.stats();
        assert_eq!(stats.depth, 3);
        assert_eq!(stats.gate_count, 3);
        assert_eq!(stats.gates_per_level[1], 1);
    }

    #[test]
    fn same_level_gates_are_independent() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let z = b.input();
        let g1 = b.nor(&[x, y]);
        let g2 = b.nor(&[y, z]);
        b.mark_output(g1);
        b.mark_output(g2);
        let netlist = b.finish();
        let levels = netlist.logic_levels();
        assert_eq!(levels[0], levels[1]);
    }

    #[test]
    fn evaluate_nor_network() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let nor = b.nor(&[x, y]);
        let or = b.not(nor);
        b.mark_output(or);
        let netlist = b.finish();
        assert_eq!(netlist.evaluate(&[false, false]), vec![false]);
        assert_eq!(netlist.evaluate(&[true, false]), vec![true]);
        assert_eq!(netlist.evaluate(&[false, true]), vec![true]);
        assert_eq!(netlist.evaluate(&[true, true]), vec![true]);
    }

    #[test]
    fn last_uses_mark_outputs_as_live_to_the_end() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let n1 = b.nor(&[x, y]);
        let n2 = b.nor(&[n1, x]);
        b.mark_output(n2);
        let netlist = b.finish();
        let last = netlist.last_uses();
        assert_eq!(last[&n1], 1); // consumed by the second gate (index 1)
        assert_eq!(last[&n2], netlist.gate_count()); // primary output
    }

    #[test]
    fn lane_evaluation_matches_scalar_evaluation_per_lane() {
        // A MAC netlist (NOR + THR + Copy gates) evaluated on 64 distinct
        // input vectors at once must agree with 64 scalar evaluations.
        let mut b = CircuitBuilder::new();
        let acc = b.input_word(8);
        let x = b.input_word(4);
        let y = b.input_word(4);
        let out = b.mac(&acc, &x, &y);
        b.mark_output_word(&out);
        let netlist = b.finish();

        let n_inputs = netlist.inputs.len();
        // Deterministic pseudo-random per-lane input bits.
        let lane_input = |lane: usize, i: usize| -> bool {
            (lane.wrapping_mul(31).wrapping_add(i.wrapping_mul(17))).is_multiple_of(3)
        };
        let mut input_words = vec![0u64; n_inputs];
        for (i, word) in input_words.iter_mut().enumerate() {
            for lane in 0..64 {
                *word |= u64::from(lane_input(lane, i)) << lane;
            }
        }
        let mut values = Vec::new();
        let mut outputs = Vec::new();
        netlist.evaluate_lanes_into(&input_words, &mut values, &mut outputs);
        for lane in 0..64 {
            let scalar_inputs: Vec<bool> = (0..n_inputs).map(|i| lane_input(lane, i)).collect();
            let expected = netlist.evaluate(&scalar_inputs);
            let got: Vec<bool> = outputs.iter().map(|w| (w >> lane) & 1 == 1).collect();
            assert_eq!(got, expected, "lane {lane}");
        }
    }

    #[test]
    #[should_panic(expected = "expected 2 input values")]
    fn evaluate_with_wrong_arity_panics() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let n = b.nor(&[x, y]);
        b.mark_output(n);
        b.finish().evaluate(&[true]);
    }
}
