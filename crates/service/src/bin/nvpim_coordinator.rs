//! `nvpim-coordinator` — shard one campaign across a fleet of
//! `nvpim-serviced` workers and merge the result.
//!
//! ```text
//! nvpim-coordinator --fleet HOST:PORT[,HOST:PORT...]
//!     [--plan quick|paper_scale|@FILE.json] [--shards N] [--chunk-trials N]
//!     [--heartbeat-ms N] [--connect-timeout-ms N] [--max-reassignments N]
//!     [--backoff-ms N] [--out PATH] [--stats-out PATH] [--metrics-out PATH]
//! ```
//!
//! The merged report JSON goes to stdout (or `--out`) and is
//! byte-identical to a single-daemon run of the same plan: workers that
//! die, stall, or drain mid-campaign cost throughput, never correctness.
//! Fleet robustness counters and per-worker transfer accounting go to
//! `--stats-out` as JSON and `--metrics-out` as Prometheus text; a
//! one-line summary always lands on stderr. See `docs/robustness.md`.

use nvpim_service::coordinator::{run_fleet, FleetConfig};
use nvpim_service::flags::value_of;
use nvpim_sweep::{SweepPlan, Telemetry};
use serde::Serialize;

fn numeric<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match value_of(args, flag) {
        None => default,
        Some(text) => text.parse().unwrap_or_else(|_| {
            eprintln!("nvpim-coordinator: {flag} expects a number, got `{text}`");
            std::process::exit(2);
        }),
    }
}

fn load_plan(spec: &str) -> SweepPlan {
    match spec {
        "quick" => SweepPlan::quick(),
        "paper_scale" => SweepPlan::paper_scale(),
        other => {
            let Some(path) = other.strip_prefix('@') else {
                eprintln!(
                    "nvpim-coordinator: --plan expects quick, paper_scale, or @FILE.json, \
                     got `{other}`"
                );
                std::process::exit(2);
            };
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("nvpim-coordinator: cannot read plan file `{path}`: {e}");
                std::process::exit(2);
            });
            let value = serde_json::from_str(&text).unwrap_or_else(|e| {
                eprintln!("nvpim-coordinator: plan file `{path}` is not valid JSON: {e}");
                std::process::exit(2);
            });
            SweepPlan::from_json_value(&value).unwrap_or_else(|e| {
                eprintln!("nvpim-coordinator: plan file `{path}` is not a valid plan: {e}");
                std::process::exit(2);
            })
        }
    }
}

fn write_or_die(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("nvpim-coordinator: cannot write {what} to `{path}`: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "nvpim-coordinator --fleet HOST:PORT[,HOST:PORT...] \
             [--plan quick|paper_scale|@FILE.json] [--shards N] [--chunk-trials N] \
             [--heartbeat-ms N] [--connect-timeout-ms N] [--max-reassignments N] \
             [--backoff-ms N] [--out PATH] [--stats-out PATH] [--metrics-out PATH]\n\n  \
             --fleet A,B,...         worker daemon addresses (required)\n  \
             --plan SPEC             named plan or @FILE.json (default quick)\n  \
             --shards N              shard count; 0 = one per worker (default 0)\n  \
             --chunk-trials N        checkpoint/heartbeat granularity (default 64)\n  \
             --heartbeat-ms N        stall deadline per worker (default 2000)\n  \
             --connect-timeout-ms N  TCP connect timeout (default 1000)\n  \
             --max-reassignments N   per-shard retry budget (default 8)\n  \
             --backoff-ms N          base jittered-backoff delay (default 50)\n  \
             --out PATH              merged report JSON (default stdout)\n  \
             --stats-out PATH        fleet stats JSON (also printed to stderr)\n  \
             --metrics-out PATH      Prometheus metrics text for scraping/CI"
        );
        return;
    }
    let Some(fleet) = value_of(&args, "--fleet") else {
        eprintln!("nvpim-coordinator: --fleet HOST:PORT[,HOST:PORT...] is required (see --help)");
        std::process::exit(2);
    };
    let workers: Vec<String> = fleet
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let plan = load_plan(&value_of(&args, "--plan").unwrap_or_else(|| "quick".to_string()));
    let defaults = FleetConfig::default();
    let cfg = FleetConfig {
        workers,
        shards: numeric(&args, "--shards", defaults.shards),
        chunk_trials: numeric(&args, "--chunk-trials", defaults.chunk_trials),
        heartbeat_timeout_ms: numeric(&args, "--heartbeat-ms", defaults.heartbeat_timeout_ms),
        connect_timeout_ms: numeric(&args, "--connect-timeout-ms", defaults.connect_timeout_ms),
        max_shard_reassignments: numeric(
            &args,
            "--max-reassignments",
            defaults.max_shard_reassignments,
        ),
        retry_backoff_ms: numeric(&args, "--backoff-ms", defaults.retry_backoff_ms),
    };
    let telemetry = Telemetry::new();
    let outcome = match run_fleet(&plan, &cfg, &telemetry) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("nvpim-coordinator: {e}");
            std::process::exit(1);
        }
    };
    let report_json = outcome.report.to_json();
    match value_of(&args, "--out") {
        Some(path) => write_or_die(&path, &report_json, "report"),
        None => println!("{report_json}"),
    }
    let stats_json = serde_json::to_string(&outcome.stats.to_json()).unwrap_or_default();
    if let Some(path) = value_of(&args, "--stats-out") {
        write_or_die(&path, &stats_json, "fleet stats");
    }
    if let Some(path) = value_of(&args, "--metrics-out") {
        write_or_die(
            &path,
            &telemetry.snapshot().render_prometheus(),
            "fleet metrics",
        );
    }
    eprintln!(
        "nvpim-coordinator: {} shard(s) across {} worker(s); {} reassigned, {} eviction(s), \
         {} heartbeat miss(es)",
        outcome.stats.shards_total,
        outcome.stats.workers.len(),
        outcome.stats.shards_reassigned,
        outcome.stats.worker_evictions,
        outcome.stats.heartbeat_misses,
    );
    eprintln!("{stats_json}");
}
