//! `nvpim-serviced` — the campaign daemon.
//!
//! ```text
//! nvpim-serviced [--addr HOST:PORT] [--workers N] [--queue-capacity N] [--chunk-trials N]
//!                [--backend scalar|sliced] [--log-json PATH] [--state-dir DIR]
//!                [--max-job-retries N] [--retry-backoff-ms N] [--journal-fsync-every N]
//!                [--shutdown-grace-ms N]
//! ```
//!
//! Binds the address (default `127.0.0.1:7171`; use port `0` for an
//! OS-assigned port), prints `nvpim-serviced listening on <addr>`, and
//! serves the NDJSON protocol until a client sends `{"cmd":"shutdown"}`.
//!
//! With `--state-dir`, the daemon keeps a durable job journal and a
//! disk-backed report store under that directory and recovers jobs —
//! including in-flight campaigns, resumed from their last checkpointed
//! chunk — on restart. See `docs/robustness.md`.

use nvpim_service::flags::value_of;
use nvpim_service::service::{ServiceConfig, ServiceHandle};

fn numeric_arg(args: &[String], flag: &str, default: usize) -> usize {
    match value_of(args, flag) {
        None => default,
        Some(text) => text.parse().unwrap_or_else(|_| {
            eprintln!("nvpim-serviced: {flag} expects a number, got `{text}`");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "nvpim-serviced [--addr HOST:PORT] [--workers N] [--queue-capacity N] \
             [--chunk-trials N] [--backend scalar|sliced] [--log-json PATH] \
             [--state-dir DIR] [--max-job-retries N] [--retry-backoff-ms N] \
             [--journal-fsync-every N] [--shutdown-grace-ms N]\n\n  \
             --log-json PATH         append one NDJSON event per job transition/chunk to PATH\n  \
             --state-dir DIR         durable journal + report store; recover jobs on restart\n  \
             --max-job-retries N     re-run a panicking campaign up to N times (default 2)\n  \
             --retry-backoff-ms N    base delay before a retry, doubled each attempt (default 50)\n  \
             --journal-fsync-every N fsync the journal every N records; 0 = never (default 1)\n  \
             --shutdown-grace-ms N   graceful drain: shutdown checkpoints in-flight jobs at a\n                          \
             chunk boundary and exits within ~N ms, leaving queued and\n                          \
             in-flight jobs in the journal for restart resume (default:\n                          \
             run every queued job to completion before exiting)"
        );
        return;
    }
    let addr = value_of(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let defaults = ServiceConfig::default();
    let backend = match value_of(&args, "--backend") {
        None => defaults.backend,
        Some(text) => text.parse().unwrap_or_else(|e| {
            eprintln!("nvpim-serviced: {e}");
            std::process::exit(2);
        }),
    };
    let log_json = value_of(&args, "--log-json").map(std::path::PathBuf::from);
    let state_dir = value_of(&args, "--state-dir").map(std::path::PathBuf::from);
    let cfg = ServiceConfig {
        workers: numeric_arg(&args, "--workers", defaults.workers),
        queue_capacity: numeric_arg(&args, "--queue-capacity", defaults.queue_capacity),
        chunk_trials: numeric_arg(&args, "--chunk-trials", defaults.chunk_trials),
        backend,
        log_json,
        state_dir,
        max_job_retries: numeric_arg(
            &args,
            "--max-job-retries",
            defaults.max_job_retries as usize,
        ) as u32,
        retry_backoff_ms: numeric_arg(
            &args,
            "--retry-backoff-ms",
            defaults.retry_backoff_ms as usize,
        ) as u64,
        journal_fsync_records: numeric_arg(
            &args,
            "--journal-fsync-every",
            defaults.journal_fsync_records as usize,
        ) as u64,
        shutdown_grace_ms: value_of(&args, "--shutdown-grace-ms").map(|text| {
            text.parse().unwrap_or_else(|_| {
                eprintln!("nvpim-serviced: --shutdown-grace-ms expects a number, got `{text}`");
                std::process::exit(2);
            })
        }),
        ..defaults
    };
    let service = ServiceHandle::start(cfg);
    if let Err(e) = nvpim_service::run_server(&addr, &service) {
        eprintln!("nvpim-serviced: {e}");
        std::process::exit(1);
    }
}
