//! Property-based tests (proptest) on the core invariants: ECC round trips,
//! NOR-synthesized arithmetic vs integer semantics, allocator behaviour, and
//! the majority voter.

use nvpim::compiler::builder::CircuitBuilder;
use nvpim::compiler::layout::RowLayout;
use nvpim::compiler::schedule::map_netlist;
use nvpim::ecc::bch::BchCode;
use nvpim::ecc::gf2::BitVec;
use nvpim::ecc::hamming::{DecodeOutcome, HammingCode};
use nvpim::ecc::redundancy::majority_vote_words;
use proptest::prelude::*;

fn bits_strategy(len: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-bit corruption of any Hamming codeword is corrected back to
    /// the original data.
    #[test]
    fn hamming_corrects_any_single_error(
        data_bits in bits_strategy(26),
        error_pos in 0usize..31,
    ) {
        let code = HammingCode::new_standard(5); // Hamming(31, 26)
        let data = BitVec::from_bools(&data_bits);
        let clean = code.encode(&data);
        let mut corrupted = clean.clone();
        corrupted.flip(error_pos % code.n());
        let outcome = code.decode(&mut corrupted);
        let corrected = matches!(outcome, DecodeOutcome::Corrected { .. });
        prop_assert!(corrected, "outcome was {:?}", outcome);
        prop_assert_eq!(corrupted, clean);
    }

    /// Hamming encoding is linear: encode(a) XOR encode(b) == encode(a XOR b).
    #[test]
    fn hamming_encoding_is_linear(
        a_bits in bits_strategy(11),
        b_bits in bits_strategy(11),
    ) {
        let code = HammingCode::new_standard(4);
        let a = BitVec::from_bools(&a_bits);
        let b = BitVec::from_bools(&b_bits);
        let lhs = code.encode(&a).xor(&code.encode(&b));
        let rhs = code.encode(&a.xor(&b));
        prop_assert_eq!(lhs, rhs);
    }

    /// BCH(31, k, 2) corrects any double-bit error pattern.
    #[test]
    fn bch_corrects_double_errors(
        data_bits in bits_strategy(21),
        p1 in 0usize..31,
        p2 in 0usize..31,
    ) {
        let code = BchCode::new(5, 2).unwrap();
        prop_assume!(p1 != p2);
        let data = BitVec::from_bools(&data_bits);
        let clean = code.encode(&data);
        let mut corrupted = clean.clone();
        corrupted.flip(p1);
        corrupted.flip(p2);
        let fixed = code.decode(&mut corrupted).unwrap();
        prop_assert_eq!(fixed, 2);
        prop_assert_eq!(corrupted, clean);
    }

    /// Majority voting over three copies recovers the original word whenever
    /// at most one copy is corrupted (in arbitrarily many bit positions).
    #[test]
    fn tmr_recovers_from_one_corrupted_copy(
        word in bits_strategy(64),
        corrupt_mask in bits_strategy(64),
        which in 0usize..3,
    ) {
        let good = BitVec::from_bools(&word);
        let mut copies = [good.clone(), good.clone(), good.clone()];
        let mask = BitVec::from_bools(&corrupt_mask);
        copies[which] = copies[which].xor(&mask);
        let refs: Vec<&BitVec> = copies.iter().collect();
        let outcome = majority_vote_words(&refs).unwrap();
        prop_assert_eq!(outcome.value(), &good);
    }

    /// The NOR/THR-synthesized adder agrees with integer addition for all
    /// inputs, and the schedule mapped onto a 256-column row reproduces the
    /// same gate count regardless of metadata pressure.
    #[test]
    fn synthesized_adder_matches_integer_addition(a in 0u64..256, b in 0u64..256) {
        let mut builder = CircuitBuilder::new();
        let wa = builder.input_word(8);
        let wb = builder.input_word(8);
        let (sum, carry) = builder.ripple_add(&wa, &wb, None);
        builder.mark_output_word(&sum);
        builder.mark_output(carry);
        let netlist = builder.finish();
        let mut inputs: Vec<bool> = (0..8).map(|i| (a >> i) & 1 == 1).collect();
        inputs.extend((0..8).map(|i| (b >> i) & 1 == 1));
        let out = netlist.evaluate(&inputs);
        let value = out.iter().enumerate().fold(0u64, |acc, (i, &bit)| acc | (u64::from(bit) << i));
        prop_assert_eq!(value, a + b);
    }

    /// The synthesized multiplier agrees with integer multiplication.
    #[test]
    fn synthesized_multiplier_matches_integer_multiplication(a in 0u64..64, b in 0u64..64) {
        let mut builder = CircuitBuilder::new();
        let wa = builder.input_word(6);
        let wb = builder.input_word(6);
        let p = builder.mul_unsigned(&wa, &wb);
        builder.mark_output_word(&p);
        let netlist = builder.finish();
        let mut inputs: Vec<bool> = (0..6).map(|i| (a >> i) & 1 == 1).collect();
        inputs.extend((0..6).map(|i| (b >> i) & 1 == 1));
        let out = netlist.evaluate(&inputs);
        let value = out.iter().enumerate().fold(0u64, |acc, (i, &bit)| acc | (u64::from(bit) << i));
        prop_assert_eq!(value, a * b);
    }

    /// Shrinking the scratch region never decreases the number of area
    /// reclaims, and never changes the gate-operation count (the iso-area
    /// invariant behind Table IV).
    #[test]
    fn reclaims_monotone_in_scratch_pressure(metadata in 0usize..180) {
        let mut builder = CircuitBuilder::new();
        let wa = builder.input_word(8);
        let wb = builder.input_word(8);
        let p = builder.mul_unsigned(&wa, &wb);
        builder.mark_output_word(&p);
        let netlist = builder.finish();

        let tight = map_netlist(&netlist, RowLayout {
            total_columns: 256,
            metadata_columns: metadata,
            cells_per_value: 1,
        }).unwrap();
        let loose = map_netlist(&netlist, RowLayout::unprotected(256)).unwrap();
        prop_assert!(tight.reclaim_count() >= loose.reclaim_count());
        prop_assert_eq!(tight.gate_op_count(), loose.gate_op_count());
    }
}
