//! Dense fixed-point matrix multiplication (the paper's `mm8` … `mm64`
//! benchmarks).
//!
//! Following the paper's PiM execution model, every active row of the fleet
//! computes one element of the result matrix: a dot product of `dim`
//! 8-bit operand pairs accumulated into a wide fixed-point register. The
//! per-row netlist is therefore a chain of `dim` multiply–accumulate
//! operations, and `dim²` rows run it in parallel on different data.

use nvpim_compiler::builder::CircuitBuilder;
use nvpim_compiler::netlist::Netlist;

/// Operand precision of the matrix elements (bits).
pub const ELEMENT_BITS: usize = 8;

/// Accumulator width for a `dim`-term dot product of 8-bit operands.
pub fn accumulator_bits(dim: usize) -> usize {
    2 * ELEMENT_BITS + (usize::BITS - dim.next_power_of_two().leading_zeros()) as usize
}

/// Builds the per-row netlist of the `mm<dim>` benchmark: one output element
/// of the `dim × dim` product, i.e. a `dim`-term dot product.
pub fn row_netlist(dim: usize) -> Netlist {
    assert!(dim >= 1, "matrix dimension must be positive");
    let acc_bits = accumulator_bits(dim);
    let mut b = CircuitBuilder::new();
    let mut acc = b.constant_word(0, acc_bits);
    for _ in 0..dim {
        let a = b.input_word(ELEMENT_BITS);
        let x = b.input_word(ELEMENT_BITS);
        acc = b.mac(&acc, &a, &x);
    }
    b.mark_output_word(&acc);
    b.finish()
}

/// Reference dense matrix multiplication over `u64` (row-major `dim × dim`
/// matrices of 8-bit values).
pub fn reference_matmul(a: &[u64], b: &[u64], dim: usize) -> Vec<u64> {
    assert_eq!(a.len(), dim * dim);
    assert_eq!(b.len(), dim * dim);
    let mut out = vec![0u64; dim * dim];
    for i in 0..dim {
        for j in 0..dim {
            out[i * dim + j] = (0..dim).map(|k| a[i * dim + k] * b[k * dim + j]).sum();
        }
    }
    out
}

/// Packs one row of `A` and one column of `B` into the bit-level inputs the
/// per-row netlist expects (interleaved `a_k`, `b_k` little-endian words).
pub fn pack_dot_product_inputs(a_row: &[u64], b_col: &[u64]) -> Vec<bool> {
    assert_eq!(a_row.len(), b_col.len());
    let mut bits = Vec::with_capacity(a_row.len() * 2 * ELEMENT_BITS);
    for (&a, &b) in a_row.iter().zip(b_col) {
        for i in 0..ELEMENT_BITS {
            bits.push((a >> i) & 1 == 1);
        }
        for i in 0..ELEMENT_BITS {
            bits.push((b >> i) & 1 == 1);
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn accumulator_width_covers_worst_case() {
        // dim terms of 255*255 must fit.
        for dim in [1usize, 4, 8, 64] {
            let max = dim as u64 * 255 * 255;
            assert!(max < (1u64 << accumulator_bits(dim)), "dim {dim}");
        }
    }

    #[test]
    fn row_netlist_computes_a_dot_product() {
        let netlist = row_netlist(3);
        let a = [12u64, 7, 200];
        let b = [3u64, 150, 9];
        let inputs = pack_dot_product_inputs(&a, &b);
        let out = netlist.evaluate(&inputs);
        let expected: u64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        assert_eq!(from_bits(&out), expected);
    }

    #[test]
    fn netlist_size_scales_linearly_with_dim() {
        let g4 = row_netlist(4).gate_count();
        let g8 = row_netlist(8).gate_count();
        assert!(g8 > g4 && g8 < 3 * g4);
    }

    #[test]
    fn reference_matmul_identity() {
        let dim = 4;
        let mut eye = vec![0u64; dim * dim];
        for i in 0..dim {
            eye[i * dim + i] = 1;
        }
        let m: Vec<u64> = (0..dim * dim).map(|i| (i * 7 % 256) as u64).collect();
        assert_eq!(reference_matmul(&m, &eye, dim), m);
        assert_eq!(reference_matmul(&eye, &m, dim), m);
    }

    #[test]
    fn netlist_matches_reference_matmul_element() {
        let dim = 4;
        let a: Vec<u64> = (0..dim * dim).map(|i| (i * 31 % 251) as u64).collect();
        let b: Vec<u64> = (0..dim * dim).map(|i| (i * 17 % 249) as u64).collect();
        let reference = reference_matmul(&a, &b, dim);
        let netlist = row_netlist(dim);
        // Check element (2, 1).
        let (i, j) = (2usize, 1usize);
        let a_row: Vec<u64> = (0..dim).map(|k| a[i * dim + k]).collect();
        let b_col: Vec<u64> = (0..dim).map(|k| b[k * dim + j]).collect();
        let out = netlist.evaluate(&pack_dot_product_inputs(&a_row, &b_col));
        assert_eq!(from_bits(&out), reference[i * dim + j]);
    }
}
