//! Fault-injection sweep: measures how often the final result of an in-array
//! computation is corrupted as the gate error rate grows, for the
//! unprotected baseline, ECiM and TRiM — the motivating experiment behind
//! the paper's single-error-protection designs.
//!
//! Run with: `cargo run --release --example fault_injection_sweep`

use nvpim::compiler::builder::CircuitBuilder;
use nvpim::compiler::netlist::Netlist;
use nvpim::compiler::schedule::map_netlist;
use nvpim::core::config::DesignConfig;
use nvpim::core::executor::ProtectedExecutor;
use nvpim::sim::array::PimArray;
use nvpim::sim::fault::{ErrorRates, FaultInjector};
use nvpim::sim::technology::Technology;

fn to_bits(value: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

fn from_bits(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

fn workload() -> (Netlist, Vec<bool>, u64) {
    let mut b = CircuitBuilder::new();
    let acc = b.input_word(10);
    let x = b.input_word(5);
    let y = b.input_word(5);
    let out = b.mac(&acc, &x, &y);
    b.mark_output_word(&out);
    let netlist = b.finish();
    let mut inputs = to_bits(512, 10);
    inputs.extend(to_bits(21, 5));
    inputs.extend(to_bits(19, 5));
    (netlist, inputs, 512 + 21 * 19)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (netlist, inputs, expected) = workload();
    let tech = Technology::SttMram;
    let trials = 40u64;
    println!("gate error rate | unprotected failures | ECiM failures | TRiM failures  (out of {trials} runs)");
    for &rate in &[1e-4, 3e-4, 1e-3, 3e-3] {
        let rates = ErrorRates {
            gate: rate,
            ..ErrorRates::NONE
        };
        let mut failures = Vec::new();
        for config in [
            DesignConfig::unprotected(tech),
            DesignConfig::ecim(tech),
            DesignConfig::trim(tech),
        ] {
            let executor = ProtectedExecutor::new(config.clone());
            let schedule = map_netlist(&netlist, config.row_layout())?;
            let mut failed = 0usize;
            for seed in 0..trials {
                let mut array = PimArray::standard(tech)
                    .with_fault_injector(FaultInjector::new(rates, seed * 7 + 1));
                let report = executor.run(&netlist, &schedule, &mut array, 0, &inputs)?;
                if from_bits(&report.outputs) != expected {
                    failed += 1;
                }
            }
            failures.push(failed);
        }
        println!(
            "{:>15.0e} | {:>20} | {:>13} | {:>13}",
            rate, failures[0], failures[1], failures[2]
        );
    }
    println!(
        "\nECiM and TRiM guarantee correction of single errors per logic level; residual\n\
         failures at the highest rates correspond to multiple errors landing in one level,\n\
         which the paper's SEP coverage (and Hamming distance 3) deliberately excludes."
    );
    Ok(())
}
