//! Built-in [`SchemeRuntime`](crate::scheme::SchemeRuntime)
//! implementations — one module per protection scheme.
//!
//! Each module is self-contained: identity, row geometry, capability
//! declarations, the §V analytic cost hooks, and both Monte Carlo run paths
//! (scalar and, where declared, bit-sliced) live in one file. Adding a
//! scheme is writing one such file and appending its static to
//! [`crate::scheme::registry`]; no executor, engine, service or CLI code
//! changes. [`parity_detect`] was added exactly that way and is the
//! template to copy.

pub mod detect_recompute;
pub mod ecim;
pub mod parity_detect;
pub mod trim;
pub mod unprotected;
