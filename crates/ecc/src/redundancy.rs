//! Modular redundancy primitives: DMR detection, TMR / N-modular majority
//! voting (§II-C of the paper). TRiM's external Checker is built on
//! [`majority_vote_words`].

use crate::error::EccError;
use crate::gf2::BitVec;

/// Outcome of comparing redundant copies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VoteOutcome {
    /// All copies agreed.
    Unanimous(BitVec),
    /// A strict majority agreed; `dissenting` lists the indices of copies
    /// that disagreed with the majority value in at least one bit.
    Majority {
        /// The bitwise-majority value.
        value: BitVec,
        /// Copies that differed from the majority value.
        dissenting: Vec<usize>,
    },
}

impl VoteOutcome {
    /// The voted value, regardless of whether it was unanimous.
    pub fn value(&self) -> &BitVec {
        match self {
            VoteOutcome::Unanimous(v) => v,
            VoteOutcome::Majority { value, .. } => value,
        }
    }

    /// Whether any copy disagreed (i.e. an error was detected).
    pub fn error_detected(&self) -> bool {
        matches!(self, VoteOutcome::Majority { .. })
    }
}

/// Dual modular redundancy: detects (but cannot correct) a mismatch.
///
/// Returns `true` when the two copies agree.
///
/// # Panics
///
/// Panics if the copies have different lengths.
pub fn dmr_check(a: &BitVec, b: &BitVec) -> bool {
    assert_eq!(a.len(), b.len(), "DMR copies must have equal length");
    a == b
}

/// Bitwise majority vote over exactly three copies (classic TMR).
///
/// # Panics
///
/// Panics if the copies have different lengths.
pub fn tmr_vote(a: &BitVec, b: &BitVec, c: &BitVec) -> VoteOutcome {
    majority_vote_words(&[a, b, c]).expect("three copies always have a bitwise majority")
}

/// Word-parallel TMR vote into a reusable buffer: `voted` is resized and
/// overwritten with the bitwise majority of the three copies; the return
/// value is `true` when any copy dissents from the majority in at least
/// one bit (an error was detected). The allocation-free primitive behind
/// the TRiM Checker's hot path.
///
/// # Panics
///
/// Panics if the copies have different lengths.
pub fn tmr_vote_into(a: &BitVec, b: &BitVec, c: &BitVec, voted: &mut BitVec) -> bool {
    assert!(
        a.len() == b.len() && b.len() == c.len(),
        "all redundant copies must have equal length"
    );
    voted.clear_resize(a.len());
    let (aw, bw, cw) = (a.words(), b.words(), c.words());
    let out = voted.words_mut();
    let mut dissent = 0u64;
    for i in 0..aw.len() {
        let m = (aw[i] & bw[i]) | (cw[i] & (aw[i] | bw[i]));
        dissent |= (aw[i] ^ m) | (bw[i] ^ m) | (cw[i] ^ m);
        out[i] = m;
    }
    dissent != 0
}

/// Bitwise majority vote over `N` copies (N-modular redundancy).
///
/// For each bit position the value held by more than half of the copies
/// wins. Voting is word-parallel: three copies reduce to two bitwise ops
/// per `u64` lane; larger `N` uses bit-sliced ripple counters, so cost
/// scales with `N × len / 64` rather than `N × len`. Callers pass
/// references, so voting never copies a codeword.
///
/// For an even number of copies a tied bit position is reported as
/// [`EccError::NoMajority`].
///
/// # Errors
///
/// Returns [`EccError::NoMajority`] if fewer than two copies are supplied or
/// any bit position ties.
///
/// # Panics
///
/// Panics if the copies have different lengths.
pub fn majority_vote_words(copies: &[&BitVec]) -> Result<VoteOutcome, EccError> {
    let n = copies.len();
    if n < 2 {
        return Err(EccError::NoMajority);
    }
    let len = copies[0].len();
    assert!(
        copies.iter().all(|c| c.len() == len),
        "all redundant copies must have equal length"
    );
    let word_len = copies[0].word_len();
    let mut value_words = vec![0u64; word_len];

    if n == 3 {
        // TMR fast path: maj(a, b, c) = (a & b) | (c & (a | b)).
        let (a, b, c) = (copies[0].words(), copies[1].words(), copies[2].words());
        for i in 0..word_len {
            value_words[i] = (a[i] & b[i]) | (c[i] & (a[i] | b[i]));
        }
    } else {
        // Bit-sliced lane counters: `planes[p]` holds bit `p` of the
        // per-lane ones-count. `n` copies need ceil(log2(n+1)) planes.
        let plane_count = (usize::BITS - n.leading_zeros()) as usize;
        let threshold = (n / 2 + 1) as u64;
        let half = (n / 2) as u64;
        let mut planes = vec![0u64; plane_count];
        for (i, value_word) in value_words.iter_mut().enumerate() {
            planes.iter_mut().for_each(|p| *p = 0);
            for copy in copies {
                let mut carry = copy.words()[i];
                for plane in planes.iter_mut() {
                    let overflow = *plane & carry;
                    *plane ^= carry;
                    carry = overflow;
                }
                debug_assert_eq!(carry, 0, "counter planes sized for n copies");
            }
            *value_word = lanes_ge(&planes, threshold);
            if n.is_multiple_of(2) && lanes_eq(&planes, half) != 0 {
                // Some lane split the copies exactly in half. (Lanes past
                // `len` count zero copies and `half >= 1`, so tail bits can
                // never produce a spurious tie.)
                return Err(EccError::NoMajority);
            }
        }
    }

    let value = BitVec::from_words(value_words, len);
    let dissenting: Vec<usize> = copies
        .iter()
        .enumerate()
        .filter(|(_, c)| **c != &value)
        .map(|(i, _)| i)
        .collect();
    Ok(if dissenting.is_empty() {
        VoteOutcome::Unanimous(value)
    } else {
        VoteOutcome::Majority { value, dissenting }
    })
}

/// Lane-wise `count >= threshold` over bit-sliced counter planes
/// (`planes[p]` = bit `p` of each lane's count, little-endian).
fn lanes_ge(planes: &[u64], threshold: u64) -> u64 {
    let mut gt = 0u64;
    let mut eq = u64::MAX;
    for (p, &plane) in planes.iter().enumerate().rev() {
        let t_mask = if (threshold >> p) & 1 == 1 {
            u64::MAX
        } else {
            0
        };
        gt |= eq & plane & !t_mask;
        eq &= !(plane ^ t_mask);
    }
    gt | eq
}

/// Lane-wise `count == target` over bit-sliced counter planes.
fn lanes_eq(planes: &[u64], target: u64) -> u64 {
    let mut eq = u64::MAX;
    for (p, &plane) in planes.iter().enumerate() {
        let t_mask = if (target >> p) & 1 == 1 { u64::MAX } else { 0 };
        eq &= !(plane ^ t_mask);
    }
    eq
}

/// Majority vote over three booleans (single-bit TMR), the primitive the
/// TRiM Checker applies per gate output.
pub fn majority3(a: bool, b: bool, c: bool) -> bool {
    (a & b) | (a & c) | (b & c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(bits: &[u8]) -> BitVec {
        bits.iter().map(|&b| b == 1).collect()
    }

    #[test]
    fn majority3_truth_table() {
        assert!(!majority3(false, false, false));
        assert!(!majority3(true, false, false));
        assert!(majority3(true, true, false));
        assert!(majority3(true, true, true));
        assert!(majority3(false, true, true));
    }

    #[test]
    fn dmr_detects_mismatch() {
        assert!(dmr_check(&bv(&[1, 0, 1]), &bv(&[1, 0, 1])));
        assert!(!dmr_check(&bv(&[1, 0, 1]), &bv(&[1, 1, 1])));
    }

    #[test]
    fn tmr_corrects_single_corrupted_copy() {
        let good = bv(&[1, 0, 1, 1, 0]);
        let mut bad = good.clone();
        bad.flip(2);
        let outcome = tmr_vote(&good, &bad, &good);
        assert!(outcome.error_detected());
        assert_eq!(outcome.value(), &good);
        if let VoteOutcome::Majority { dissenting, .. } = outcome {
            assert_eq!(dissenting, vec![1]);
        }
    }

    #[test]
    fn tmr_unanimous() {
        let v = bv(&[0, 1, 1]);
        let outcome = tmr_vote(&v, &v, &v);
        assert!(!outcome.error_detected());
        assert_eq!(outcome.value(), &v);
    }

    #[test]
    fn nmr_five_copies_two_corrupt() {
        let good = bv(&[1, 1, 0, 0, 1, 0]);
        let mut bad1 = good.clone();
        bad1.flip(0);
        let mut bad2 = good.clone();
        bad2.flip(5);
        let outcome = majority_vote_words(&[&good, &bad1, &good, &bad2, &good]).unwrap();
        assert_eq!(outcome.value(), &good);
    }

    #[test]
    fn even_copies_can_tie() {
        let a = bv(&[1, 0]);
        let b = bv(&[0, 0]);
        assert_eq!(majority_vote_words(&[&a, &b]), Err(EccError::NoMajority));
        // But two identical copies are fine.
        assert!(majority_vote_words(&[&a, &a]).is_ok());
    }

    #[test]
    fn four_copies_tie_detected_and_clear_majority_wins() {
        let a = bv(&[1, 0, 1]);
        let b = bv(&[0, 0, 1]);
        // 2-2 split in bit 0 → tie.
        assert_eq!(
            majority_vote_words(&[&a, &a, &b, &b]),
            Err(EccError::NoMajority)
        );
        // 3-1 splits everywhere → majority.
        let outcome = majority_vote_words(&[&a, &a, &a, &b]).unwrap();
        assert_eq!(outcome.value(), &a);
        if let VoteOutcome::Majority { dissenting, .. } = outcome {
            assert_eq!(dissenting, vec![3]);
        } else {
            panic!("copy 3 dissented");
        }
    }

    #[test]
    fn wide_vectors_vote_word_parallel_consistently() {
        // Cross-check the packed paths (TMR fast path and bit-sliced
        // counters) against a per-bit reference on >64-bit vectors.
        let len = 200;
        let mk = |salt: usize| -> BitVec {
            (0..len)
                .map(|i| (i * 31 + salt * 17) % 5 < 2)
                .collect::<BitVec>()
        };
        for n in [3usize, 5, 7] {
            let copies: Vec<BitVec> = (0..n).map(mk).collect();
            let refs: Vec<&BitVec> = copies.iter().collect();
            let outcome = majority_vote_words(&refs).unwrap();
            for bit in 0..len {
                let ones = copies.iter().filter(|c| c.get(bit)).count();
                assert_eq!(outcome.value().get(bit), ones > n - ones, "n={n} bit {bit}");
            }
        }
    }

    #[test]
    fn single_copy_rejected() {
        let v = bv(&[1]);
        assert_eq!(majority_vote_words(&[&v]), Err(EccError::NoMajority));
    }
}
