//! `nvpim-cli` — client for the `nvpim-serviced` campaign daemon.
//!
//! ```text
//! nvpim-cli submit  [--addr A] (--plan plan.json | --quick | --paper-scale
//!                   | --accuracy-quick) [--priority N] [--wait]
//! nvpim-cli status  [--addr A] --job ID
//! nvpim-cli result  [--addr A] --job ID [--wait]
//! nvpim-cli cancel  [--addr A] --job ID
//! nvpim-cli stats   [--addr A] [--watch] [--interval-ms N] [--count N]
//! nvpim-cli metrics [--addr A]      # Prometheus-style text exposition
//! nvpim-cli shutdown [--addr A]
//! nvpim-cli run     (--plan plan.json | --quick | --paper-scale
//!                   | --accuracy-quick)
//!                   [--backend scalar|sliced]
//!                   [--estimator exact|stratified]
//!                   [--kind error|accuracy] [--stuck-at DENSITY]
//!                   [--timings]                                    # no daemon
//! nvpim-cli run     --fleet HOST:PORT[,HOST:PORT...]               # sharded
//!                   [--shards N] [--chunk-trials N] [--heartbeat-ms N]
//!                   [--max-reassignments N] (--plan ... | --quick | ...)
//! nvpim-cli schemes [--json]        # the protection-scheme registry
//! ```
//!
//! Every daemon-facing subcommand also accepts the shared connection
//! flags `--connect-timeout-ms N` (default 5000; 0 = no timeout),
//! `--read-timeout-ms N` (default: none), `--retries N` (default 2) and
//! `--retry-backoff-ms N` (default 200). `submit` and `result` survive a
//! daemon restart mid-command: on a transport failure they reconnect with
//! jittered exponential backoff and resubmit — safe because submission is
//! idempotent, keyed by the plan's content digest, so the restarted daemon
//! coalesces or serves the cached report instead of re-running the
//! campaign twice. A daemon answering `overloaded` (bounded queue full)
//! also lands in the retry loop: the structured error carries a
//! `retry_after_ms` hint derived from observed run latency and queue
//! depth, and the client backs off for at least that long before
//! resubmitting.
//!
//! `run --fleet` shards the campaign across several daemons through the
//! fleet coordinator (see `docs/robustness.md`); the merged report on
//! stdout is byte-identical to a local `run` of the same plan even when
//! workers die, stall, or drain mid-campaign.
//!
//! `submit --wait` streams progress to stderr and prints the final report
//! JSON (pretty, byte-identical to a direct `run_campaign` of the same
//! plan) on stdout. `run` executes the plan locally without a daemon —
//! used by CI to diff daemon output against direct execution; `run
//! --timings` additionally prints a per-phase timing/counter breakdown to
//! stderr (the report on stdout stays byte-identical). `stats --watch`
//! polls the daemon and prints counter deltas between refreshes;
//! `metrics` dumps the daemon's Prometheus-style text exposition. `schemes`
//! enumerates the compile-time scheme registry with per-scheme
//! capabilities — any scheme listed there is accepted in plan JSON with
//! zero CLI changes.

use nvpim::service::client::{request, Client};
use nvpim::service::coordinator::{run_fleet, FleetConfig};
use nvpim::service::flags::{has_flag, value_of};
use nvpim::sweep::{prepare_campaign_with_telemetry, run_campaign_with_backend, ScheduleCache};
use nvpim::telemetry::{Counter, Phase, Telemetry};
use nvpim::{CampaignKind, EstimatorMode, SimBackend, SweepPlan};
use serde::Value;

const DEFAULT_ADDR: &str = "127.0.0.1:7171";

fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("nvpim-cli: {msg}");
    std::process::exit(1)
}

/// Resolves the plan selection flags into a request `plan` value.
fn plan_value(args: &[String]) -> Value {
    if has_flag(args, "--quick") {
        return Value::Str("quick".into());
    }
    if has_flag(args, "--paper-scale") {
        return Value::Str("paper_scale".into());
    }
    if has_flag(args, "--accuracy-quick") {
        return Value::Str("accuracy_quick".into());
    }
    let path = value_of(args, "--plan")
        .unwrap_or_else(|| die("expected --plan FILE, --quick, --paper-scale or --accuracy-quick"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(format!("reading {path}: {e}")));
    serde_json::from_str(&text).unwrap_or_else(|e| die(format!("parsing {path}: {e}")))
}

/// Decodes the same plan selection locally (for `run`).
fn plan_local(args: &[String]) -> SweepPlan {
    if has_flag(args, "--quick") {
        return SweepPlan::quick();
    }
    if has_flag(args, "--paper-scale") {
        return SweepPlan::paper_scale();
    }
    if has_flag(args, "--accuracy-quick") {
        return SweepPlan::accuracy_quick();
    }
    let value = plan_value(args);
    SweepPlan::from_json_value(&value).unwrap_or_else(|e| die(e))
}

/// The shared daemon-connection settings: address, timeouts and the
/// bounded-retry policy, parsed once from the command line.
struct Conn {
    addr: String,
    connect_timeout: Option<std::time::Duration>,
    read_timeout: Option<std::time::Duration>,
    retries: u32,
    backoff_ms: u64,
}

impl Conn {
    fn from_args(args: &[String]) -> Self {
        let ms_flag = |flag: &str, default: Option<u64>| -> Option<u64> {
            match value_of(args, flag) {
                None => default,
                Some(text) => {
                    let ms: u64 = text
                        .parse()
                        .unwrap_or_else(|_| die(format!("{flag} expects milliseconds")));
                    (ms > 0).then_some(ms)
                }
            }
        };
        Self {
            addr: value_of(args, "--addr").unwrap_or_else(|| DEFAULT_ADDR.to_string()),
            connect_timeout: ms_flag("--connect-timeout-ms", Some(5000))
                .map(std::time::Duration::from_millis),
            read_timeout: ms_flag("--read-timeout-ms", None).map(std::time::Duration::from_millis),
            retries: value_of(args, "--retries")
                .map(|t| {
                    t.parse()
                        .unwrap_or_else(|_| die("--retries expects a number"))
                })
                .unwrap_or(2),
            backoff_ms: value_of(args, "--retry-backoff-ms")
                .map(|t| {
                    t.parse()
                        .unwrap_or_else(|_| die("--retry-backoff-ms expects milliseconds"))
                })
                .unwrap_or(200),
        }
    }

    fn connect_once(&self) -> std::io::Result<Client> {
        Client::connect_with_timeouts(&self.addr, self.connect_timeout, self.read_timeout)
    }

    /// Runs `attempt` with bounded retry: each transport failure reconnects
    /// after a jittered exponential backoff, up to `--retries` extra tries.
    /// Protocol-level errors (`"ok": false`) are not retried — `check_ok`
    /// inside the attempt exits directly — with one exception: an attempt
    /// can return a retryable [`AttemptError`] carrying the server's
    /// `retry_after_ms` hint (the `overloaded` backpressure reply), which
    /// becomes the floor for that retry's delay.
    fn with_retry<T>(&self, what: &str, attempt: impl Fn(&Self) -> Result<T, AttemptError>) -> T {
        let mut tries = 0u32;
        loop {
            match attempt(self) {
                Ok(value) => return value,
                Err(failure) if tries < self.retries => {
                    tries += 1;
                    let delay = jittered_backoff(self.backoff_ms, tries)
                        .max(failure.min_delay.unwrap_or_default());
                    eprintln!(
                        "nvpim-cli: {what} failed ({}); retry {tries}/{} in {}ms",
                        failure.err,
                        self.retries,
                        delay.as_millis()
                    );
                    std::thread::sleep(delay);
                }
                Err(failure) => die(format!("{what} (after {tries} retries): {}", failure.err)),
            }
        }
    }
}

/// A failed attempt inside [`Conn::with_retry`]: the error plus an
/// optional server-provided minimum back-off (from `retry_after_ms`).
struct AttemptError {
    err: std::io::Error,
    min_delay: Option<std::time::Duration>,
}

impl From<std::io::Error> for AttemptError {
    fn from(err: std::io::Error) -> Self {
        Self {
            err,
            min_delay: None,
        }
    }
}

/// Classifies an `overloaded` backpressure reply: returns the retry as an
/// [`AttemptError`] honoring the server's `retry_after_ms` hint, `None`
/// for every other response (success or a fatal protocol error).
fn overloaded_retry(response: &Value) -> Option<AttemptError> {
    if response.get("ok").and_then(Value::as_bool) == Some(true) {
        return None;
    }
    let error = response.get("error")?;
    if error.get("code").and_then(Value::as_str) != Some("overloaded") {
        return None;
    }
    let hint_ms = error.get("retry_after_ms").and_then(Value::as_u64)?;
    Some(AttemptError {
        err: std::io::Error::other(format!("server overloaded; retry in ~{hint_ms}ms")),
        min_delay: Some(std::time::Duration::from_millis(hint_ms)),
    })
}

/// Exponential backoff with jitter: the delay for retry `attempt` is drawn
/// uniformly from `[base·2^(attempt-1) / 2, base·2^(attempt-1)]` so
/// colliding clients de-synchronize. Uses a SystemTime-seeded xorshift —
/// no RNG dependency, and the CLI's determinism guarantees only cover
/// report bytes, not retry timing.
fn jittered_backoff(base_ms: u64, attempt: u32) -> std::time::Duration {
    let ceiling = base_ms.saturating_mul(1u64 << attempt.saturating_sub(1).min(16));
    let mut x = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()) | 1)
        .unwrap_or(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let floor = ceiling / 2;
    let span = ceiling - floor + 1;
    std::time::Duration::from_millis((floor + x % span).max(1))
}

fn connect(args: &[String]) -> Client {
    let conn = Conn::from_args(args);
    conn.with_retry("connecting", |conn| Ok(conn.connect_once()?))
}

fn job_arg(args: &[String]) -> u64 {
    value_of(args, "--job")
        .unwrap_or_else(|| die("expected --job ID"))
        .parse()
        .unwrap_or_else(|_| die("--job expects a number"))
}

/// Exits with status 1 when a response carries `"ok": false`.
fn check_ok(response: &Value) -> &Value {
    if response.get("ok").and_then(Value::as_bool) != Some(true) {
        let code = response
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str)
            .unwrap_or("unknown");
        let message = response
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Value::as_str)
            .unwrap_or("malformed error response");
        die(format!("server error [{code}]: {message}"));
    }
    response
}

fn print_pretty(value: &Value) {
    println!(
        "{}",
        serde_json::to_string_pretty(value).expect("serialize")
    );
}

/// Prints the embedded report of a `result`-shaped response.
fn print_report(response: &Value) {
    let report = response
        .get("report")
        .unwrap_or_else(|| die("result response carries no report"));
    print_pretty(report);
}

/// `recv` result → frame, turning a clean server close into a retryable
/// transport error (a restarting daemon drops connections; resubmission is
/// idempotent, so the retry loop should pick it up).
fn must_frame(frame: Option<Value>) -> std::io::Result<Value> {
    frame.ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        )
    })
}

fn cmd_submit(args: &[String]) {
    let conn = Conn::from_args(args);
    let wait = has_flag(args, "--wait");
    let plan = plan_value(args);
    let priority: Option<u64> = value_of(args, "--priority").map(|p| {
        p.parse()
            .unwrap_or_else(|_| die("--priority expects a number"))
    });
    // The whole exchange lives inside the retry loop: if the daemon
    // restarts mid-stream, we reconnect and resubmit the same plan. The
    // service keys submissions by the plan's content digest, so the
    // resubmission coalesces onto the recovered job (or hits the report
    // cache) instead of running the campaign twice.
    conn.with_retry("submit", |conn| {
        let mut client = conn.connect_once()?;
        let mut fields = vec![("plan".to_string(), plan.clone())];
        if let Some(p) = priority {
            fields.push(("priority".to_string(), Value::UInt(p)));
        }
        if wait {
            fields.push(("wait".to_string(), Value::Bool(true)));
        }
        client.send(&request("submit", fields))?;
        // First line: acceptance (or error). Backpressure (`overloaded`)
        // re-enters the retry loop honoring the server's hint; any other
        // protocol error is fatal.
        let accepted = must_frame(client.recv()?)?;
        if let Some(retry) = overloaded_retry(&accepted) {
            return Err(retry);
        }
        check_ok(&accepted);
        if !wait {
            print_pretty(&accepted);
            return Ok(());
        }
        let job = accepted.get("job").and_then(Value::as_u64).unwrap_or(0);
        eprintln!(
            "job {job} accepted (digest {}, cached: {})",
            accepted
                .get("digest")
                .and_then(Value::as_str)
                .unwrap_or("?"),
            accepted
                .get("cached")
                .and_then(Value::as_bool)
                .unwrap_or(false),
        );
        // Then: progress events until the result line.
        loop {
            let line = must_frame(client.recv()?)?;
            check_ok(&line);
            match line.get("event").and_then(Value::as_str) {
                Some("progress") => {
                    let percent = line.get("percent").and_then(Value::as_f64).unwrap_or(0.0);
                    let done = line.get("trials_done").and_then(Value::as_u64).unwrap_or(0);
                    let total = line
                        .get("trials_total")
                        .and_then(Value::as_u64)
                        .unwrap_or(0);
                    // Accuracy campaigns stream their running tally too.
                    match line.get("accuracy").and_then(Value::as_f64) {
                        Some(accuracy) => eprintln!(
                            "job {job}: {done}/{total} trials ({percent:.1}%), \
                             accuracy {accuracy:.3}"
                        ),
                        None => eprintln!("job {job}: {done}/{total} trials ({percent:.1}%)"),
                    }
                }
                Some("result") => {
                    print_report(&line);
                    return Ok(());
                }
                other => die(format!("unexpected event {other:?}")),
            }
        }
    });
}

fn cmd_result(args: &[String]) {
    let conn = Conn::from_args(args);
    let job = job_arg(args);
    let wait = has_flag(args, "--wait");
    // `result` is a pure read — retrying after a dropped connection is
    // always safe, and a daemon restarted with `--state-dir` still knows
    // the job (recovered from the journal).
    conn.with_retry("result", |conn| {
        let mut client = conn.connect_once()?;
        let mut fields = vec![("job".to_string(), Value::UInt(job))];
        if wait {
            fields.push(("wait".to_string(), Value::Bool(true)));
        }
        let response = client.request(&request("result", fields))?;
        check_ok(&response);
        print_report(&response);
        Ok(())
    });
}

fn simple_command(args: &[String], cmd: &str, fields: Vec<(String, Value)>) {
    let mut client = connect(args);
    let response = client
        .request(&request(cmd, fields))
        .unwrap_or_else(|e| die(e));
    check_ok(&response);
    print_pretty(&response);
}

fn cmd_run(args: &[String]) {
    let mut plan = plan_local(args);
    // `--estimator stratified` switches the campaign to the rare-event
    // estimator (conditioned trials, reweighted rates, Wilson CIs, schema
    // version 2); the default leaves the plan's own mode — Exact unless the
    // plan file says otherwise — and its byte-stable report format.
    if let Some(text) = value_of(args, "--estimator") {
        let estimator: EstimatorMode = text.parse().unwrap_or_else(|e| die(e));
        plan.estimator = estimator;
    }
    // `--kind accuracy` promotes the campaign to inference-accuracy
    // evaluation (labelled workloads only, schema version 3); `--stuck-at
    // DENSITY` seeds permanent SA0/SA1 defects at that per-cell density,
    // derived deterministically from the campaign seed.
    if let Some(text) = value_of(args, "--kind") {
        let kind: CampaignKind = text.parse().unwrap_or_else(|e| die(e));
        plan.kind = kind;
    }
    if let Some(text) = value_of(args, "--stuck-at") {
        plan.stuck_at_rate = text
            .parse()
            .unwrap_or_else(|_| die("--stuck-at expects a defect density in [0, 1]"));
    }
    plan.validate().unwrap_or_else(|e| die(e));
    // `--fleet A,B,...` shards the campaign across several daemons via
    // the coordinator. The merged report is byte-identical to the local
    // path below — sharding and worker failure never change report
    // bytes — so the same stdout contract holds. Workers use their own
    // configured backend (also byte-identical); `--backend` and
    // `--timings` are local-run flags.
    if let Some(fleet) = value_of(args, "--fleet") {
        let numeric = |flag: &str, default: u64| -> u64 {
            value_of(args, flag)
                .map(|t| {
                    t.parse()
                        .unwrap_or_else(|_| die(format!("{flag} expects a number")))
                })
                .unwrap_or(default)
        };
        let defaults = FleetConfig::default();
        let cfg = FleetConfig {
            workers: fleet
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect(),
            shards: numeric("--shards", defaults.shards as u64) as usize,
            chunk_trials: numeric("--chunk-trials", defaults.chunk_trials as u64) as usize,
            heartbeat_timeout_ms: numeric("--heartbeat-ms", defaults.heartbeat_timeout_ms),
            connect_timeout_ms: numeric("--connect-timeout-ms", defaults.connect_timeout_ms),
            max_shard_reassignments: numeric(
                "--max-reassignments",
                u64::from(defaults.max_shard_reassignments),
            ) as u32,
            retry_backoff_ms: numeric("--retry-backoff-ms", defaults.retry_backoff_ms),
        };
        let telemetry = Telemetry::new();
        let outcome = run_fleet(&plan, &cfg, &telemetry).unwrap_or_else(|e| die(e));
        println!("{}", outcome.report.to_json());
        eprintln!(
            "fleet: {} shard(s) across {} worker(s); {} reassigned, {} eviction(s), \
             {} heartbeat miss(es)",
            outcome.stats.shards_total,
            outcome.stats.workers.len(),
            outcome.stats.shards_reassigned,
            outcome.stats.worker_evictions,
            outcome.stats.heartbeat_misses,
        );
        return;
    }
    // Reports are byte-identical across backends; `--backend scalar` is
    // the reference path for cross-checking the sliced default.
    let backend: SimBackend = match value_of(args, "--backend") {
        None => SimBackend::default(),
        Some(text) => text.parse().unwrap_or_else(|e| die(e)),
    };
    if !has_flag(args, "--timings") {
        let report = run_campaign_with_backend(&plan, backend).unwrap_or_else(|e| die(e));
        println!("{}", report.to_json());
        return;
    }
    // `--timings`: run the same campaign with a telemetry sink attached and
    // print the per-phase breakdown to stderr. The report on stdout stays
    // byte-identical — telemetry only observes, it never touches the RNG
    // stream or trial outcomes.
    let telemetry = Telemetry::new();
    let mut cache = ScheduleCache::new();
    let report = prepare_campaign_with_telemetry(&plan, &mut cache, telemetry.clone())
        .unwrap_or_else(|e| die(e))
        .with_backend(backend)
        .run()
        .unwrap_or_else(|e| die(e));
    let json = telemetry.time(Phase::ReportSerialization, || report.to_json());
    println!("{json}");
    print_timings(&telemetry.snapshot());
}

/// Prints the `run --timings` per-phase breakdown and counter table to
/// stderr.
fn print_timings(snap: &nvpim::TelemetrySnapshot) {
    eprintln!();
    eprintln!(
        "{:<24} {:>10} {:>14} {:>12}",
        "phase", "spans", "total ms", "mean \u{b5}s"
    );
    for phase in Phase::ALL {
        let count = snap.phase_count(phase);
        let nanos = snap.phase_nanos(phase);
        let mean_us = if count == 0 {
            0.0
        } else {
            nanos as f64 / count as f64 / 1_000.0
        };
        eprintln!(
            "{:<24} {:>10} {:>14.3} {:>12.2}",
            phase.name(),
            count,
            nanos as f64 / 1e6,
            mean_us
        );
    }
    eprintln!();
    eprintln!("{:<24} {:>10}", "counter", "value");
    for counter in Counter::ALL {
        eprintln!("{:<24} {:>10}", counter.name(), snap.counter(counter));
    }
}

/// `nvpim-cli metrics`: dumps the daemon's Prometheus-style text
/// exposition (raw, not JSON-wrapped — ready for scraping or diffing).
fn cmd_metrics(args: &[String]) {
    let mut client = connect(args);
    let response = client
        .request(&request("metrics", vec![]))
        .unwrap_or_else(|e| die(e));
    check_ok(&response);
    let text = response
        .get("metrics")
        .and_then(Value::as_str)
        .unwrap_or_else(|| die("metrics response carries no text payload"));
    print!("{text}");
}

/// One `stats --watch` refresh: prints the counters that moved since the
/// previous snapshot as `name value (+delta)` lines.
fn print_stats_delta(stats: &Value, previous: Option<&Value>) {
    const WATCHED: &[&str] = &[
        "jobs_submitted",
        "jobs_completed",
        "jobs_failed",
        "jobs_cancelled",
        "trials_executed",
        "clean_settled_trials",
        "estimator_redraws",
        "report_cache_hits",
        "queue_depth",
    ];
    let mut parts = Vec::new();
    for key in WATCHED {
        let now = stats.get(key).and_then(Value::as_u64).unwrap_or(0);
        let before = previous
            .and_then(|p| p.get(key))
            .and_then(Value::as_u64)
            .unwrap_or(now);
        if previous.is_none() || now != before {
            let delta = now.wrapping_sub(before);
            if previous.is_some() && delta > 0 {
                parts.push(format!("{key}={now} (+{delta})"));
            } else {
                parts.push(format!("{key}={now}"));
            }
        }
    }
    let rate = stats
        .get("trials_per_sec")
        .and_then(Value::as_f64)
        .map(|r| format!("rate={r:.0}/s"))
        .unwrap_or_else(|| "rate=n/a".to_string());
    if parts.is_empty() {
        println!("(idle) {rate}");
    } else {
        println!("{} {rate}", parts.join(" "));
    }
}

/// `nvpim-cli stats --watch`: polls the daemon every `--interval-ms`
/// (default 1000) and prints counter deltas, for `--count` refreshes
/// (default: until the connection drops).
fn cmd_stats_watch(args: &[String]) {
    let interval = value_of(args, "--interval-ms")
        .map(|t| {
            t.parse()
                .unwrap_or_else(|_| die("--interval-ms expects a number"))
        })
        .unwrap_or(1000u64);
    let count: u64 = value_of(args, "--count")
        .map(|t| {
            t.parse()
                .unwrap_or_else(|_| die("--count expects a number"))
        })
        .unwrap_or(u64::MAX);
    let mut client = connect(args);
    let mut previous: Option<Value> = None;
    let mut ticks = 0u64;
    while ticks < count {
        let response = client
            .request(&request("stats", vec![]))
            .unwrap_or_else(|e| die(e));
        check_ok(&response);
        let stats = response
            .get("stats")
            .cloned()
            .unwrap_or_else(|| die("stats response carries no payload"));
        print_stats_delta(&stats, previous.as_ref());
        previous = Some(stats);
        ticks += 1;
        if ticks < count {
            std::thread::sleep(std::time::Duration::from_millis(interval));
        }
    }
}

/// `nvpim-cli schemes`: enumerates the protection-scheme registry with
/// per-scheme capabilities, evaluated against the paper's standard design
/// point (STT-MRAM, Hamming r = 8). Human-readable table by default,
/// machine-readable with `--json`.
fn cmd_schemes(args: &[String]) {
    let rows = nvpim::scheme_capabilities();
    if has_flag(args, "--json") {
        let entries: Vec<Value> = rows
            .iter()
            .map(|(scheme, caps)| {
                Value::Object(vec![
                    ("scheme".into(), Value::Str(scheme.wire_name().into())),
                    ("display".into(), Value::Str(scheme.name().into())),
                    ("sliceable".into(), Value::Bool(caps.sliceable)),
                    ("detect_only".into(), Value::Bool(caps.detect_only)),
                    ("parity_bits".into(), Value::UInt(caps.parity_bits as u64)),
                    (
                        "metadata_columns".into(),
                        Value::UInt(caps.metadata_columns as u64),
                    ),
                    (
                        "cells_per_value".into(),
                        Value::UInt(caps.cells_per_value as u64),
                    ),
                    ("analytic_clean".into(), Value::Bool(caps.analytic_clean)),
                    ("recompute".into(), Value::Bool(caps.recompute)),
                    ("stuck_at_aware".into(), Value::Bool(caps.stuck_at_aware)),
                ])
            })
            .collect();
        print_pretty(&Value::Array(entries));
        return;
    }
    println!(
        "{:<16} {:<16} {:>9} {:>11} {:>11} {:>16} {:>15} {:>14} {:>9} {:>13}",
        "scheme",
        "display",
        "sliceable",
        "detect-only",
        "parity bits",
        "metadata columns",
        "cells per value",
        "analytic-clean",
        "recompute",
        "stuck-at-aware"
    );
    for (scheme, caps) in rows {
        println!(
            "{:<16} {:<16} {:>9} {:>11} {:>11} {:>16} {:>15} {:>14} {:>9} {:>13}",
            scheme.wire_name(),
            scheme.name(),
            caps.sliceable,
            caps.detect_only,
            caps.parity_bits,
            caps.metadata_columns,
            caps.cells_per_value,
            caps.analytic_clean,
            caps.recompute,
            caps.stuck_at_aware
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("submit") => cmd_submit(&args),
        Some("status") => simple_command(
            &args,
            "status",
            vec![("job".to_string(), Value::UInt(job_arg(&args)))],
        ),
        Some("result") => cmd_result(&args),
        Some("cancel") => simple_command(
            &args,
            "cancel",
            vec![("job".to_string(), Value::UInt(job_arg(&args)))],
        ),
        Some("stats") => {
            if has_flag(&args, "--watch") {
                cmd_stats_watch(&args)
            } else {
                simple_command(&args, "stats", vec![])
            }
        }
        Some("metrics") => cmd_metrics(&args),
        Some("shutdown") => simple_command(&args, "shutdown", vec![]),
        Some("run") => cmd_run(&args),
        Some("schemes") => cmd_schemes(&args),
        _ => {
            eprintln!(
                "usage: nvpim-cli <submit|status|result|cancel|stats|metrics|shutdown|run|schemes> [flags]\n\
                 see `docs/protocol.md` for the full protocol, `docs/observability.md` for metrics"
            );
            std::process::exit(2);
        }
    }
}
