//! Opt-in structured NDJSON event log.
//!
//! One JSON object per line, written through a buffered writer behind a
//! mutex. Each line carries a wall-clock timestamp (`ts_ms`, UNIX epoch
//! milliseconds), a process-monotone sequence number (`seq`), a `trace`
//! id correlating every event of one job, the `event` name, and any
//! event-specific fields. The log is append-only and flushed per line so
//! a crashed process leaves complete records behind.

use serde::Value;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// An append-only NDJSON event log.
#[derive(Debug)]
pub struct EventLog {
    writer: Mutex<BufWriter<File>>,
    seq: AtomicU64,
}

impl EventLog {
    /// Creates (truncating) the log file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
            seq: AtomicU64::new(0),
        })
    }

    /// Appends one event line.
    ///
    /// `fields` are appended after the standard `ts_ms` / `seq` / `trace`
    /// / `event` keys, preserving their order. Write errors are swallowed:
    /// the event log is telemetry, and a full disk must never take down
    /// the service.
    pub fn emit(&self, event: &str, trace: &str, fields: Vec<(String, Value)>) {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut object = vec![
            ("ts_ms".to_string(), Value::UInt(ts_ms)),
            ("seq".to_string(), Value::UInt(seq)),
            ("trace".to_string(), Value::Str(trace.to_string())),
            ("event".to_string(), Value::Str(event.to_string())),
        ];
        object.extend(fields);
        let line = match serde_json::to_string(&Value::Object(object)) {
            Ok(line) => line,
            Err(_) => return,
        };
        if let Ok(mut writer) = self.writer.lock() {
            let _ = writer.write_all(line.as_bytes());
            let _ = writer.write_all(b"\n");
            let _ = writer.flush();
        }
    }

    /// Number of events emitted so far.
    #[must_use]
    pub fn events_emitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_lines_are_valid_ordered_ndjson() {
        let path = std::env::temp_dir().join(format!(
            "nvpim-telemetry-events-{}.ndjson",
            std::process::id()
        ));
        let log = EventLog::create(&path).expect("create log");
        log.emit(
            "submitted",
            "job-1-deadbeef",
            vec![("queue_depth".to_string(), Value::UInt(3))],
        );
        log.emit("running", "job-1-deadbeef", Vec::new());
        assert_eq!(log.events_emitted(), 2);

        let contents = std::fs::read_to_string(&path).expect("read log");
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = serde_json::from_str(lines[0]).expect("parse first");
        assert_eq!(first.get("seq").and_then(Value::as_u64), Some(0));
        assert_eq!(
            first.get("trace").and_then(Value::as_str),
            Some("job-1-deadbeef")
        );
        assert_eq!(
            first.get("event").and_then(Value::as_str),
            Some("submitted")
        );
        assert_eq!(first.get("queue_depth").and_then(Value::as_u64), Some(3));
        // Standard keys lead every line, in fixed order.
        let keys: Vec<&str> = first
            .as_object()
            .expect("object")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(&keys[..4], &["ts_ms", "seq", "trace", "event"]);
        let second = serde_json::from_str(lines[1]).expect("parse second");
        assert_eq!(second.get("seq").and_then(Value::as_u64), Some(1));
        let _ = std::fs::remove_file(&path);
    }
}
