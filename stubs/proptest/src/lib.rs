//! Offline stand-in for the real `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro (with an optional `#![proptest_config(...)]` header), range and
//! `any::<T>()` strategies, `collection::vec`, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros. Cases are generated from a
//! fixed-seed SplitMix64 stream, so failures reproduce deterministically.
//! There is no shrinking — a failing case panics with its assertion message.

use std::marker::PhantomData;
use std::ops::Range;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic SplitMix64 stream used to generate test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fixed-seed RNG: every run of the test suite sees the same cases.
    pub fn deterministic() -> Self {
        Self {
            state: 0x7072_6f70_7465_7374, // "proptest"
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let start = self.start as i128;
                let span = (self.end as i128 - start) as u128;
                let offset = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (start + offset) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// Generates arbitrary values of `T` (bools and small integers here).
pub fn any<T>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Drives one property: generates `config.cases` values from `strategy` and
/// feeds each to `case`. The generic signature pins the closure's argument
/// types to `S::Value`, which is what makes type inference inside
/// `proptest!` bodies work.
pub fn run_cases<S: Strategy, F: FnMut(S::Value)>(
    config: &ProptestConfig,
    strategy: S,
    mut case: F,
) {
    let mut rng = TestRng::deterministic();
    for _ in 0..config.cases {
        case(strategy.generate(&mut rng));
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy generating fixed-length `Vec`s from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `proptest::collection::vec(element, len)` — fixed length only.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                // The closure gives `prop_assume!` an early-exit scope; its
                // argument types are pinned by `run_cases`' signature.
                $crate::run_cases(&__config, ($(($strategy),)*), |($($arg,)*)| $body);
            }
        )*
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, AnyStrategy,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in 5u64..100) {
            prop_assert!(x < 10);
            prop_assert!((5..100).contains(&y));
        }

        #[test]
        fn assume_skips_cases(a in 0usize..4, b in 0usize..4) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn vec_strategy_has_fixed_len(bits in collection::vec(any::<bool>(), 33)) {
            prop_assert_eq!(bits.len(), 33);
        }
    }
}
