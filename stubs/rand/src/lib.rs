//! Offline stand-in for the real `rand` crate (0.8-style API).
//!
//! Provides exactly the surface the workspace uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen_bool`, `gen_range`),
//! [`SliceRandom::shuffle`], and a deterministic [`rngs::StdRng`] built on
//! SplitMix64. Streams are self-consistent and seeded-deterministic; they do
//! not bit-match the real crate (nothing in the workspace depends on that).

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it as needed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53-bit uniform draw in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let start = self.start as i128;
                let span = (self.end as i128 - start) as u128;
                // Lemire-style multiply-shift; the modulo bias over a u64
                // draw is negligible for the spans used here.
                let offset = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (start + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let start = lo as i128;
                let span = (hi as i128 - start) as u128 + 1;
                let offset = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (start + offset) as $t
            }
        }
    )*};
}
impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_sample_range!(f32, f64);

/// In-place slice operations driven by an RNG.
pub trait SliceRandom {
    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = ((rng.next_u64() as u128).wrapping_mul(i as u128 + 1) >> 64) as usize;
            self.swap(i, j);
        }
    }
}

/// The SplitMix64 step; also used by `rand_chacha` for seed expansion.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic standard generator (SplitMix64 under the hood).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Decorrelate trivially-related seeds before use.
            let mut s = state ^ 0x5851_F42D_4C95_7F2D;
            let _ = splitmix64(&mut s);
            Self { state: s }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..16).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn gen_range_covers_the_full_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let f: f64 = rng.gen_range(3.0..9.0);
            assert!((3.0..9.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
