//! One worker link: drives `ping` and `run_shard` against a single
//! `nvpim-serviced` daemon and classifies every way the worker can stop
//! cooperating.
//!
//! The link keeps one TCP connection with the read timeout set to the
//! fleet's heartbeat deadline, so the streamed `shard_chunk` lines double
//! as the worker's heartbeat: a daemon that is SIGSTOPped, wedged, or
//! partitioned keeps the socket open but goes silent, and the next `recv`
//! times out instead of blocking forever.

use std::io::ErrorKind;
use std::time::Duration;

use serde::{Serialize, Value};

use super::board::ShardSpec;
use crate::client::{request, Client};

use nvpim_sweep::TrialOutcome;

/// Result of a health-check ping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ping {
    /// Alive and accepting work.
    Healthy,
    /// Alive but draining (or shutting down): unschedulable, not dead.
    Draining,
    /// No response within the heartbeat deadline: stalled.
    Stalled,
    /// Connection refused, reset, or closed: dead or partitioned.
    Unreachable,
}

/// How one shard attempt ended. Every variant carries the outcomes
/// accumulated so far (the resume prefix plus every streamed chunk), so a
/// failed attempt hands its durable progress to the next owner.
#[derive(Debug)]
pub(crate) enum AttemptEnd {
    /// `shard_done` observed with a complete outcome list.
    Completed(Vec<TrialOutcome>),
    /// The daemon began draining mid-shard: it checkpointed and bowed out.
    Draining(Vec<TrialOutcome>),
    /// No chunk arrived within the heartbeat deadline.
    HeartbeatMiss(Vec<TrialOutcome>),
    /// The connection died mid-stream (or could not be established).
    Disconnect(Vec<TrialOutcome>),
    /// The daemon answered with a structured error or a malformed stream.
    Rejected(Vec<TrialOutcome>, String),
}

/// A lazily connected client for one worker address, with lifetime byte
/// accounting that survives reconnects.
pub(crate) struct WorkerLink {
    addr: String,
    connect_timeout: Duration,
    heartbeat_timeout: Duration,
    client: Option<Client>,
    bytes_sent: u64,
    bytes_received: u64,
}

impl WorkerLink {
    pub fn new(addr: &str, connect_timeout: Duration, heartbeat_timeout: Duration) -> Self {
        Self {
            addr: addr.to_string(),
            connect_timeout,
            heartbeat_timeout,
            client: None,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    fn client(&mut self) -> std::io::Result<&mut Client> {
        if self.client.is_none() {
            self.client = Some(Client::connect_with_timeouts(
                &self.addr,
                Some(self.connect_timeout),
                Some(self.heartbeat_timeout),
            )?);
        }
        Ok(self.client.as_mut().expect("client just connected"))
    }

    /// Folds the live connection's byte counters into the lifetime totals
    /// and drops it (the next call reconnects).
    fn drop_client(&mut self) {
        if let Some(client) = self.client.take() {
            self.bytes_sent += client.bytes_sent();
            self.bytes_received += client.bytes_received();
        }
    }

    /// Lifetime `(sent, received)` bytes across every connection.
    pub fn bytes(&self) -> (u64, u64) {
        let (live_sent, live_received) = self
            .client
            .as_ref()
            .map_or((0, 0), |c| (c.bytes_sent(), c.bytes_received()));
        (
            self.bytes_sent + live_sent,
            self.bytes_received + live_received,
        )
    }

    /// Health-checks the worker over the protocol's `ping` command.
    pub fn ping(&mut self) -> Ping {
        let client = match self.client() {
            Ok(client) => client,
            Err(_) => {
                self.drop_client();
                return Ping::Unreachable;
            }
        };
        match client.request(&request("ping", Vec::new())) {
            Ok(resp) => {
                let draining = resp.get("draining").and_then(Value::as_bool) == Some(true);
                let stopping = resp.get("shutting_down").and_then(Value::as_bool) == Some(true);
                if draining || stopping {
                    Ping::Draining
                } else {
                    Ping::Healthy
                }
            }
            Err(err) if is_timeout(&err) => {
                self.drop_client();
                Ping::Stalled
            }
            Err(_) => {
                self.drop_client();
                Ping::Unreachable
            }
        }
    }

    /// Runs one shard attempt, streaming chunk checkpoints into the
    /// returned outcome list. `resume` is the durable prefix from earlier
    /// attempts; the daemon computes only the remainder.
    pub fn run_shard(
        &mut self,
        plan_json: &Value,
        spec: ShardSpec,
        chunk_trials: usize,
        resume: Vec<TrialOutcome>,
    ) -> AttemptEnd {
        let resume_json: Vec<Value> = resume.iter().map(|o| o.to_json()).collect();
        let req = request(
            "run_shard",
            vec![
                ("plan".into(), plan_json.clone()),
                ("start".into(), Value::UInt(spec.start)),
                ("end".into(), Value::UInt(spec.end)),
                ("chunk_trials".into(), Value::UInt(chunk_trials as u64)),
                ("resume".into(), Value::Array(resume_json)),
            ],
        );
        let mut collected = resume;
        let client = match self.client() {
            Ok(client) => client,
            Err(_) => {
                self.drop_client();
                return AttemptEnd::Disconnect(collected);
            }
        };
        if client.send(&req).is_err() {
            self.drop_client();
            return AttemptEnd::Disconnect(collected);
        }
        loop {
            let line = match client.recv() {
                Ok(Some(line)) => line,
                Ok(None) => {
                    self.drop_client();
                    return AttemptEnd::Disconnect(collected);
                }
                Err(err) if is_timeout(&err) => {
                    self.drop_client();
                    return AttemptEnd::HeartbeatMiss(collected);
                }
                Err(_) => {
                    self.drop_client();
                    return AttemptEnd::Disconnect(collected);
                }
            };
            if line.get("ok").and_then(Value::as_bool) == Some(false) {
                let code = error_code(&line);
                // A drained worker checkpoints the shard and reports
                // `shutting_down`; everything else is a rejection.
                if code == "shutting_down" {
                    return AttemptEnd::Draining(collected);
                }
                return AttemptEnd::Rejected(collected, code.to_string());
            }
            match line.get("event").and_then(Value::as_str) {
                Some("shard_accepted") => {}
                Some("shard_chunk") => {
                    let Some(items) = line.get("outcomes").and_then(Value::as_array) else {
                        return AttemptEnd::Rejected(
                            collected,
                            "shard_chunk without outcomes".to_string(),
                        );
                    };
                    for item in items {
                        match TrialOutcome::from_json_value(item) {
                            Ok(outcome) => collected.push(outcome),
                            Err(err) => {
                                return AttemptEnd::Rejected(
                                    collected,
                                    format!("undecodable chunk outcome: {err}"),
                                )
                            }
                        }
                    }
                }
                Some("shard_done") => {
                    if collected.len() as u64 == spec.len() {
                        return AttemptEnd::Completed(collected);
                    }
                    return AttemptEnd::Rejected(
                        collected,
                        "shard_done before all outcomes streamed".to_string(),
                    );
                }
                _ => {
                    return AttemptEnd::Rejected(
                        collected,
                        "unexpected response event mid-shard".to_string(),
                    )
                }
            }
        }
    }
}

fn is_timeout(err: &std::io::Error) -> bool {
    matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

fn error_code(line: &Value) -> &str {
    line.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Value::as_str)
        .unwrap_or("unknown_error")
}
