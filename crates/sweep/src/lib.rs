//! # nvpim-sweep
//!
//! Batched, parallel Monte Carlo fault-injection campaign engine for the
//! `nvpim` reproduction of *"On Error Correction for Nonvolatile
//! Processing-In-Memory"* (ISCA 2024).
//!
//! The paper's evaluation (Fig. 7, Table V) and its single-error-protection
//! claims rest on large fault-injection campaigns. The seed codebase could
//! only run one `ProtectedExecutor::run` trial at a time; this crate layers
//! a campaign engine on top of `core` / `sim` / `compiler` / `workloads`:
//!
//! * [`plan::SweepPlan`] — the cartesian product of workload × technology ×
//!   protection scheme (× gate style) × gate-error-rate grid, times N seeds;
//! * [`engine::ScheduleCache`] — compiled `(netlist, layout)` schedules are
//!   shared by every trial instead of recompiled per trial;
//! * [`engine::run_campaign`] — expands the plan into independent trials,
//!   runs them in parallel via `rayon` with per-trial `ChaCha8Rng` seeds
//!   derived deterministically from the campaign seed, and aggregates
//!   detection / correction / silent-error counts, output-error rates and
//!   the system model's cycle/energy estimates;
//! * [`report::SweepReport`] — a serde-serializable report whose JSON is
//!   byte-identical for any thread count (`RAYON_NUM_THREADS=1` vs default).
//!
//! # Examples
//!
//! ```
//! use nvpim_sweep::{run_campaign, SweepPlan};
//!
//! let mut plan = SweepPlan::quick();
//! plan.seeds_per_point = 4;
//! let report = run_campaign(&plan).expect("quick campaign runs");
//! assert_eq!(report.total_trials, plan.trial_count());
//! // Schedules are compiled once per (workload, layout), not per trial.
//! assert!(report.schedules_compiled < report.points.len());
//! println!("{}", report.to_json());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod digest;
pub mod engine;
pub mod json;
pub mod plan;
pub mod report;

pub use engine::{
    derive_trial_seed, execution_backend, prepare_campaign, prepare_campaign_with_telemetry,
    run_campaign, run_campaign_with_backend, shard_ranges, trial_stream_seeds, CampaignControl,
    CampaignProgress, ChunkCheckpoint, CompiledKernel, ExecutionBackend, PointContext,
    PreparedCampaign, ScalarBackend, ScheduleCache, SlicedBackend, TaskOutcomes, TrialArena,
    TrialHarness,
};
pub use nvpim_core::config::SimBackend;
pub use nvpim_telemetry::{Counter as TelemetryCounter, Phase, Telemetry, TelemetrySnapshot};
pub use plan::{CampaignKind, EstimatorMode, ProtectionConfig, SweepPlan, SweepWorkload};
pub use report::{AccuracySummary, EstimatorSummary, PointSummary, SweepReport, TrialOutcome};

/// Errors raised while setting up a campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// A plan axis is empty (names the axis).
    EmptyPlan(&'static str),
    /// A gate error rate is outside `[0, 1]`.
    InvalidErrorRate(f64),
    /// Mapping a workload netlist onto a row layout failed.
    Map {
        /// Workload name.
        workload: String,
        /// Mapping error description.
        detail: String,
    },
    /// The compiled schedule spills and cannot run on a single row.
    NotDirectlyExecutable {
        /// Workload name.
        workload: String,
        /// Human-readable layout description.
        layout_label: String,
    },
    /// A plan's JSON encoding could not be decoded.
    Parse(String),
    /// The plan combines campaign features that cannot run together (e.g.
    /// an accuracy campaign on an unlabelled workload).
    UnsupportedCampaign(String),
    /// A chunked campaign was cancelled by its progress observer.
    Cancelled,
    /// A resume checkpoint is inconsistent with the campaign it claims to
    /// checkpoint (e.g. it carries more outcomes than the plan has trials).
    BadCheckpoint(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::EmptyPlan(axis) => write!(f, "sweep plan has an empty `{axis}` axis"),
            SweepError::InvalidErrorRate(rate) => {
                write!(f, "gate error rate {rate} is outside [0, 1]")
            }
            SweepError::Map { workload, detail } => {
                write!(f, "mapping workload `{workload}` failed: {detail}")
            }
            SweepError::NotDirectlyExecutable {
                workload,
                layout_label,
            } => write!(
                f,
                "workload `{workload}` spills under layout ({layout_label}) and cannot run \
                 functional fault-injection trials"
            ),
            SweepError::Parse(detail) => write!(f, "invalid sweep plan encoding — {detail}"),
            SweepError::UnsupportedCampaign(detail) => {
                write!(f, "unsupported campaign combination — {detail}")
            }
            SweepError::Cancelled => write!(f, "campaign cancelled by its observer"),
            SweepError::BadCheckpoint(detail) => {
                write!(f, "invalid resume checkpoint — {detail}")
            }
        }
    }
}

impl std::error::Error for SweepError {}
