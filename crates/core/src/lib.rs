//! # nvpim-core
//!
//! The primary contribution of the `nvpim` reproduction of *"On Error
//! Correction for Nonvolatile Processing-In-Memory"* (ISCA 2024): two
//! single-error-protection (SEP) designs for PiM architectures that compute
//! inside nonvolatile memory arrays, plus the full-system machinery needed
//! to evaluate them.
//!
//! * [`config`] — design points: ECiM / TRiM / unprotected, multi- vs
//!   single-output gates, technology, Hamming code, array organization.
//! * [`checker`] — the external, hardened Checker blocks (Hamming syndrome
//!   decoder for ECiM, majority voter for TRiM) with a gate-count cost model.
//! * [`executor`] — functional execution of compiled schedules on a
//!   simulated array with in-memory metadata maintenance, logic-level checks
//!   and correction write-back; the vehicle for fault-injection experiments.
//! * [`sliced`] — the same semantics on the transposed bit-sliced array,
//!   advancing 64 Monte Carlo trials per word operation with bit-identical
//!   per-trial results.
//! * [`sep`] — the SEP guarantee analysis of Fig. 6 and the check-granularity
//!   design space.
//! * [`system`] — the analytic timing/energy model that regenerates the
//!   paper's evaluation (Fig. 7, Table IV, Table V) from compiled schedules.
//!
//! # Examples
//!
//! Estimating ECiM's and TRiM's overheads on a small dot-product workload:
//!
//! ```
//! use nvpim_compiler::builder::CircuitBuilder;
//! use nvpim_core::config::DesignConfig;
//! use nvpim_core::system::{compare, evaluate, WorkloadShape};
//! use nvpim_sim::technology::Technology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CircuitBuilder::new();
//! let mut acc = b.constant_word(0, 16);
//! for _ in 0..4 {
//!     let x = b.input_word(4);
//!     let w = b.input_word(4);
//!     acc = b.mac(&acc, &x, &w);
//! }
//! b.mark_output_word(&acc);
//! let netlist = b.finish();
//!
//! let shape = WorkloadShape::new("dot4", 256, 1);
//! let tech = Technology::SttMram;
//! let baseline = evaluate(&netlist, &shape, &DesignConfig::unprotected(tech))?;
//! let ecim = evaluate(&netlist, &shape, &DesignConfig::ecim(tech))?;
//! let overhead = compare(&ecim, &baseline);
//! assert!(overhead.time_overhead_pct > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checker;
pub mod config;
pub mod executor;
pub mod scheme;
pub mod schemes;
pub mod sep;
pub mod sliced;
pub mod system;

pub use checker::{CheckResult, CheckerCostModel, EcimChecker, TrimChecker};
pub use config::{DesignConfig, GateStyle, ProtectionScheme, SimBackend};
pub use executor::{ExecScratch, ProtectedExecError, ProtectedExecutor, ProtectedRunReport};
pub use scheme::{registry as scheme_registry, CostEnv, SchemeCapabilities, SchemeRuntime};
pub use sep::{figure6_cases, granularity_analysis};
pub use sliced::{SlicedExecScratch, SlicedExecutor, SlicedRunReport};
pub use system::{
    compare, evaluate, evaluate_benchmark, evaluate_schedule, CostBreakdown, ExecutionEstimate,
    OverheadReport, WorkloadShape,
};
