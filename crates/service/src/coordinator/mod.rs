//! The fleet coordinator: one campaign, many daemons, zero recompute on
//! failure.
//!
//! [`run_fleet`] cuts a plan's flat plan-ordered trial list into
//! contiguous shards ([`nvpim_sweep::shard_ranges`]) and drives them
//! across a fleet of `nvpim-serviced` workers over the NDJSON protocol's
//! `ping`/`run_shard` commands. Chunk-invariance makes this legal: every
//! trial outcome is a pure function of `(point, campaign seed, trial
//! index)`, so outcomes computed anywhere splice back into one list whose
//! aggregated report is byte-identical to a single-daemon run.
//!
//! The failure model (see `docs/robustness.md`):
//!
//! * **Heartbeats.** Each worker agent pings before claiming work, and
//!   the `shard_chunk` stream doubles as a heartbeat while a shard runs —
//!   the read timeout is the heartbeat deadline, so a SIGSTOPped or
//!   wedged daemon surfaces as a timeout, not a hang.
//! * **Shard leases.** A claimed shard belongs to its worker until the
//!   worker completes it, misses its deadline, disconnects, or drains.
//!   On failure the shard returns to the pending pool carrying every
//!   outcome already streamed, so the next owner resumes from the last
//!   chunk checkpoint instead of recomputing.
//! * **Bounded retry.** Re-assignments back off with jittered exponential
//!   delay and are bounded per shard; a shard failing everywhere aborts
//!   the fleet rather than looping forever.
//! * **Degraded merge.** Losing workers shrinks throughput, never
//!   correctness: the merge re-aggregates the spliced outcome list
//!   locally, and fails loudly if any trial is missing.

mod board;
mod worker;

use std::time::{Duration, Instant};

use serde::{Serialize, Value};

use board::{Abort, Board, ShardSpec};
use worker::{AttemptEnd, Ping, WorkerLink};

use nvpim_sweep::{
    prepare_campaign, shard_ranges, ScheduleCache, SweepError, SweepPlan, SweepReport,
};
use nvpim_telemetry::{Counter, Telemetry};

/// Fleet topology and failure-handling knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker daemon addresses (`host:port`).
    pub workers: Vec<String>,
    /// Shard count; `0` means one shard per worker. More shards than
    /// workers gives finer-grained re-assignment (less lost work per
    /// failure) at the cost of more protocol round-trips.
    pub shards: usize,
    /// Trials per streamed chunk on each worker — the checkpoint (and
    /// heartbeat) granularity.
    pub chunk_trials: usize,
    /// Heartbeat deadline: a worker that streams no chunk (or answers no
    /// ping) for this long is considered stalled. Must comfortably exceed
    /// the worst-case single-chunk compute time.
    pub heartbeat_timeout_ms: u64,
    /// TCP connect timeout per worker.
    pub connect_timeout_ms: u64,
    /// Per-shard re-assignment budget before the fleet gives up.
    pub max_shard_reassignments: u32,
    /// Base for the jittered exponential backoff between re-assignments
    /// of the same shard.
    pub retry_backoff_ms: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            workers: Vec::new(),
            shards: 0,
            chunk_trials: 64,
            heartbeat_timeout_ms: 2_000,
            connect_timeout_ms: 1_000,
            max_shard_reassignments: 8,
            retry_backoff_ms: 50,
        }
    }
}

/// Errors raised by [`run_fleet`].
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// The config listed no workers.
    NoWorkers,
    /// The plan failed validation or preparation.
    InvalidPlan(SweepError),
    /// One shard exceeded its re-assignment budget.
    ShardExhausted {
        /// Index of the failing shard.
        shard: usize,
        /// Attempts consumed.
        attempts: u32,
        /// The last classified failure.
        last_error: String,
    },
    /// Every worker died or drained with shards still unfinished.
    WorkersExhausted {
        /// Shards not yet completed when the last worker left.
        unfinished: usize,
    },
    /// The spliced outcome list failed to merge (a coordinator bug —
    /// chunk-invariance means a complete splice always aggregates).
    Merge(SweepError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoWorkers => write!(f, "no worker addresses configured"),
            FleetError::InvalidPlan(e) => write!(f, "invalid plan: {e}"),
            FleetError::ShardExhausted {
                shard,
                attempts,
                last_error,
            } => write!(
                f,
                "shard {shard} failed on every worker ({attempts} attempts; last: {last_error})"
            ),
            FleetError::WorkersExhausted { unfinished } => write!(
                f,
                "every worker died or drained with {unfinished} shard(s) unfinished"
            ),
            FleetError::Merge(e) => write!(f, "merge failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// Per-worker accounting for the fleet-wide stats view.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerStats {
    /// The worker's address.
    pub addr: String,
    /// Shards this worker ran to completion.
    pub shards_completed: u64,
    /// Newly computed trials streamed by this worker (resume prefixes and
    /// recomputed work excluded — these are trials it actually ran).
    pub trials_computed: u64,
    /// Bytes written to this worker across all connections.
    pub bytes_sent: u64,
    /// Bytes read from this worker across all connections.
    pub bytes_received: u64,
    /// Wall-clock seconds spent inside shard attempts on this worker.
    pub busy_seconds: f64,
    /// Heartbeat deadline misses observed (stalls).
    pub heartbeat_misses: u64,
    /// Whether the coordinator evicted this worker (dead or stalled).
    pub evicted: bool,
    /// Whether the worker reported draining (unschedulable, not dead).
    pub drained: bool,
}

impl WorkerStats {
    fn new(addr: &str) -> Self {
        Self {
            addr: addr.to_string(),
            shards_completed: 0,
            trials_computed: 0,
            bytes_sent: 0,
            bytes_received: 0,
            busy_seconds: 0.0,
            heartbeat_misses: 0,
            evicted: false,
            drained: false,
        }
    }
}

/// Fleet-wide robustness counters plus the per-worker breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct FleetStats {
    /// Shards the trial list was cut into.
    pub shards_total: u64,
    /// Shard re-assignments (every hand-off to a different attempt).
    pub shards_reassigned: u64,
    /// Workers evicted for death or stalls.
    pub worker_evictions: u64,
    /// Heartbeat deadline misses across the fleet.
    pub heartbeat_misses: u64,
    /// Per-worker accounting.
    pub workers: Vec<WorkerStats>,
}

/// A merged fleet run: the report (byte-identical to a one-daemon run)
/// plus the robustness accounting.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The merged campaign report.
    pub report: SweepReport,
    /// Fleet-wide stats.
    pub stats: FleetStats,
}

/// Jittered exponential backoff before re-trying a shard: the ceiling
/// doubles per attempt (capped at 5 s) and the delay lands uniformly in
/// `[ceiling/2, ceiling]` so simultaneous failures don't retry in
/// lockstep.
fn jittered_backoff(base_ms: u64, attempt: u32) -> Duration {
    let ceiling = base_ms
        .max(1)
        .saturating_mul(1 << attempt.min(6))
        .min(5_000);
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0x9e37_79b9, |d| d.subsec_nanos() as u64 | 1);
    let mut x = seed;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let half = ceiling / 2;
    Duration::from_millis(half + x % (ceiling - half + 1))
}

/// Runs `plan` across the fleet and merges the shards into one report.
///
/// The returned report is byte-identical to `run_campaign(plan)` on a
/// single machine — sharding, worker failure, and re-assignment never
/// change report bytes (the chaos suite enforces this under SIGKILL,
/// SIGSTOP, and disconnects). Robustness counters are mirrored into
/// `telemetry` (`shards_reassigned`, `worker_evictions`,
/// `heartbeat_misses`) alongside per-worker labeled transfer series.
///
/// # Errors
///
/// [`FleetError`] on an empty fleet, invalid plan, exhausted shard
/// budget, or total worker loss.
pub fn run_fleet(
    plan: &SweepPlan,
    cfg: &FleetConfig,
    telemetry: &Telemetry,
) -> Result<FleetOutcome, FleetError> {
    if cfg.workers.is_empty() {
        return Err(FleetError::NoWorkers);
    }
    let mut cache = ScheduleCache::new();
    let prepared = prepare_campaign(plan, &mut cache).map_err(FleetError::InvalidPlan)?;
    let shard_count = if cfg.shards == 0 {
        cfg.workers.len()
    } else {
        cfg.shards
    };
    let specs: Vec<ShardSpec> = shard_ranges(prepared.trial_count(), shard_count)
        .into_iter()
        .enumerate()
        .map(|(index, (start, end))| ShardSpec { index, start, end })
        .collect();
    let shards_total = specs.len() as u64;
    let board = Board::new(specs, cfg.workers.len());
    let plan_json = plan.to_json();

    let worker_stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = cfg
            .workers
            .iter()
            .map(|addr| {
                let board = &board;
                let plan_json = &plan_json;
                scope.spawn(move || worker_loop(addr, plan_json, cfg, board, telemetry))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("worker agent never panics"))
            .collect()
    });

    let stats = FleetStats {
        shards_total,
        shards_reassigned: board.reassigned(),
        worker_evictions: worker_stats.iter().filter(|w| w.evicted).count() as u64,
        heartbeat_misses: worker_stats.iter().map(|w| w.heartbeat_misses).sum(),
        workers: worker_stats,
    };
    for worker in &stats.workers {
        telemetry.add_labeled(
            "fleet_worker_trials",
            "worker",
            &worker.addr,
            worker.trials_computed,
        );
        telemetry.add_labeled(
            "fleet_worker_bytes_sent",
            "worker",
            &worker.addr,
            worker.bytes_sent,
        );
        telemetry.add_labeled(
            "fleet_worker_bytes_received",
            "worker",
            &worker.addr,
            worker.bytes_received,
        );
    }

    let shards = board.finish().map_err(|abort| match abort {
        Abort::ShardExhausted {
            shard,
            attempts,
            last_error,
        } => FleetError::ShardExhausted {
            shard,
            attempts,
            last_error,
        },
        Abort::WorkersExhausted { unfinished } => FleetError::WorkersExhausted { unfinished },
    })?;
    let mut all = Vec::with_capacity(prepared.trial_count() as usize);
    for shard in shards {
        all.extend(shard);
    }
    let report = prepared
        .report_from_outcomes(&all)
        .map_err(FleetError::Merge)?;
    Ok(FleetOutcome { report, stats })
}

/// One worker agent: claims shards off the board and drives them on a
/// single daemon until the work runs out or the worker stops cooperating.
fn worker_loop(
    addr: &str,
    plan_json: &Value,
    cfg: &FleetConfig,
    board: &Board,
    telemetry: &Telemetry,
) -> WorkerStats {
    let mut link = WorkerLink::new(
        addr,
        Duration::from_millis(cfg.connect_timeout_ms),
        Duration::from_millis(cfg.heartbeat_timeout_ms),
    );
    let mut stats = WorkerStats::new(addr);
    let mut busy = Duration::ZERO;
    loop {
        // Health-check before claiming, so a dead or draining worker
        // never holds a shard lease it cannot serve.
        match link.ping() {
            Ping::Healthy => {}
            Ping::Draining => {
                stats.drained = true;
                break;
            }
            Ping::Stalled => {
                stats.heartbeat_misses += 1;
                telemetry.add(Counter::HeartbeatMisses, 1);
                evict(&mut stats, telemetry);
                break;
            }
            Ping::Unreachable => {
                evict(&mut stats, telemetry);
                break;
            }
        }
        let Some(claim) = board.claim() else {
            break; // all shards done (or the fleet aborted)
        };
        let spec = claim.spec;
        let attempts = claim.attempts;
        let resumed = claim.resume.len() as u64;
        let started = Instant::now();
        let end = link.run_shard(plan_json, spec, cfg.chunk_trials, claim.resume);
        busy += started.elapsed();
        match end {
            AttemptEnd::Completed(outcomes) => {
                stats.trials_computed += outcomes.len() as u64 - resumed;
                stats.shards_completed += 1;
                board.complete(spec.index, outcomes);
            }
            AttemptEnd::Draining(prefix) => {
                // Unschedulable, not dead: hand the shard off with its
                // checkpointed prefix and stop scheduling here, without
                // an eviction or a retry penalty.
                stats.trials_computed += prefix.len() as u64 - resumed;
                stats.drained = true;
                if board.requeue(
                    spec.index,
                    prefix,
                    attempts,
                    cfg.max_shard_reassignments,
                    Duration::ZERO,
                    "worker draining",
                ) {
                    telemetry.add(Counter::ShardsReassigned, 1);
                }
                break;
            }
            AttemptEnd::HeartbeatMiss(prefix) => {
                stats.trials_computed += prefix.len() as u64 - resumed;
                stats.heartbeat_misses += 1;
                telemetry.add(Counter::HeartbeatMisses, 1);
                evict(&mut stats, telemetry);
                if board.requeue(
                    spec.index,
                    prefix,
                    attempts + 1,
                    cfg.max_shard_reassignments,
                    jittered_backoff(cfg.retry_backoff_ms, attempts),
                    "heartbeat deadline missed",
                ) {
                    telemetry.add(Counter::ShardsReassigned, 1);
                }
                break;
            }
            AttemptEnd::Disconnect(prefix) => {
                stats.trials_computed += prefix.len() as u64 - resumed;
                evict(&mut stats, telemetry);
                if board.requeue(
                    spec.index,
                    prefix,
                    attempts + 1,
                    cfg.max_shard_reassignments,
                    jittered_backoff(cfg.retry_backoff_ms, attempts),
                    "worker disconnected",
                ) {
                    telemetry.add(Counter::ShardsReassigned, 1);
                }
                break;
            }
            AttemptEnd::Rejected(prefix, why) => {
                // The worker answered coherently — the shard request
                // itself failed. Requeue with a penalty but keep the
                // worker in the pool.
                stats.trials_computed += prefix.len() as u64 - resumed;
                if board.requeue(
                    spec.index,
                    prefix,
                    attempts + 1,
                    cfg.max_shard_reassignments,
                    jittered_backoff(cfg.retry_backoff_ms, attempts),
                    &why,
                ) {
                    telemetry.add(Counter::ShardsReassigned, 1);
                }
            }
        }
    }
    board.worker_gone();
    let (sent, received) = link.bytes();
    stats.bytes_sent = sent;
    stats.bytes_received = received;
    stats.busy_seconds = busy.as_secs_f64();
    stats
}

fn evict(stats: &mut WorkerStats, telemetry: &Telemetry) {
    if !stats.evicted {
        stats.evicted = true;
        telemetry.add(Counter::WorkerEvictions, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServiceConfig, ServiceHandle};

    fn spawn_daemon(cfg: ServiceConfig) -> (String, ServiceHandle) {
        let service = ServiceHandle::start(cfg);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        let serve_handle = service.clone();
        std::thread::spawn(move || {
            let _ = crate::server::serve(&serve_handle, listener);
        });
        (addr, service)
    }

    fn tiny_plan() -> SweepPlan {
        let mut plan = SweepPlan::quick();
        plan.seeds_per_point = 2;
        plan
    }

    #[test]
    fn fleet_report_matches_a_single_node_run() {
        let (addr_a, _svc_a) = spawn_daemon(ServiceConfig::default());
        let (addr_b, _svc_b) = spawn_daemon(ServiceConfig::default());
        let plan = tiny_plan();
        let baseline = nvpim_sweep::run_campaign(&plan).expect("baseline runs");
        let cfg = FleetConfig {
            workers: vec![addr_a, addr_b],
            shards: 4,
            chunk_trials: 4,
            ..FleetConfig::default()
        };
        let outcome = run_fleet(&plan, &cfg, &Telemetry::disabled()).expect("fleet runs");
        assert_eq!(
            outcome.report.to_json(),
            baseline.to_json(),
            "sharded fleet run must be byte-identical to one-daemon run"
        );
        assert_eq!(outcome.stats.shards_total, 4);
        let completed: u64 = outcome
            .stats
            .workers
            .iter()
            .map(|w| w.shards_completed)
            .sum();
        assert_eq!(completed, 4);
        let computed: u64 = outcome
            .stats
            .workers
            .iter()
            .map(|w| w.trials_computed)
            .sum();
        assert_eq!(computed, plan.trial_count());
        for worker in &outcome.stats.workers {
            assert!(worker.bytes_sent > 0, "request bytes accounted");
            assert!(worker.bytes_received > 0, "response bytes accounted");
        }
    }

    #[test]
    fn draining_worker_is_unschedulable_not_fatal() {
        let (addr_live, _svc_live) = spawn_daemon(ServiceConfig::default());
        let (addr_drain, svc_drain) = spawn_daemon(ServiceConfig {
            shutdown_grace_ms: Some(2_000),
            ..ServiceConfig::default()
        });
        svc_drain.begin_drain();
        let plan = tiny_plan();
        let baseline = nvpim_sweep::run_campaign(&plan).expect("baseline runs");
        let cfg = FleetConfig {
            workers: vec![addr_live, addr_drain.clone()],
            shards: 2,
            chunk_trials: 4,
            ..FleetConfig::default()
        };
        let outcome = run_fleet(&plan, &cfg, &Telemetry::disabled()).expect("fleet survives");
        assert_eq!(outcome.report.to_json(), baseline.to_json());
        let drained = outcome
            .stats
            .workers
            .iter()
            .find(|w| w.addr == addr_drain)
            .expect("drained worker accounted");
        assert!(drained.drained, "ping classified the worker as draining");
        assert!(!drained.evicted, "draining is not an eviction");
        assert_eq!(drained.shards_completed, 0);
        assert_eq!(outcome.stats.worker_evictions, 0);
    }

    #[test]
    fn dead_worker_address_is_evicted_and_work_reroutes() {
        let (addr_live, _svc) = spawn_daemon(ServiceConfig::default());
        // A port nothing listens on: connect fails fast with ECONNREFUSED.
        let dead = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr_dead = dead.local_addr().expect("local addr").to_string();
        drop(dead);
        let plan = tiny_plan();
        let baseline = nvpim_sweep::run_campaign(&plan).expect("baseline runs");
        let telemetry = Telemetry::new();
        let cfg = FleetConfig {
            workers: vec![addr_live, addr_dead],
            shards: 3,
            chunk_trials: 4,
            ..FleetConfig::default()
        };
        let outcome = run_fleet(&plan, &cfg, &telemetry).expect("fleet survives one death");
        assert_eq!(outcome.report.to_json(), baseline.to_json());
        assert_eq!(outcome.stats.worker_evictions, 1);
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.counter(Counter::WorkerEvictions), 1);
    }

    #[test]
    fn empty_fleet_and_backoff_bounds_are_sane() {
        let err = run_fleet(
            &tiny_plan(),
            &FleetConfig::default(),
            &Telemetry::disabled(),
        )
        .expect_err("no workers");
        assert_eq!(err, FleetError::NoWorkers);
        for attempt in 0..10 {
            let delay = jittered_backoff(50, attempt);
            assert!(delay >= Duration::from_millis(25));
            assert!(delay <= Duration::from_millis(5_000));
        }
    }
}
