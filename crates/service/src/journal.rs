//! Write-ahead job journal: the durable half of the crash-safe daemon.
//!
//! Every job-state transition the daemon performs is first appended to an
//! NDJSON journal file (`jobs.journal` under `--state-dir`) — one JSON
//! object per line, fsync'd every `fsync_every` records. On startup the
//! daemon [replays](replay) the journal to reconstruct its job table:
//! terminal jobs are restored as queryable records, and in-flight jobs are
//! re-queued with the trial outcomes from their checkpointed chunks
//! spliced back in, so only the un-checkpointed suffix is recomputed.
//! Chunk-boundary invariance (report bytes do not depend on chunk size or
//! boundaries) makes the resumed report byte-identical to an
//! uninterrupted run.
//!
//! ## Record format
//!
//! | `rec`       | extra fields                                          |
//! |-------------|-------------------------------------------------------|
//! | `submit`    | `job`, `digest`, `priority`, `trials_total`, `plan_json` |
//! | `start`     | `job`                                                 |
//! | `chunk`     | `job`, `trials_done` (cumulative), `outcomes` (array) |
//! | `done`      | `job`                                                 |
//! | `failed`    | `job`, `error`                                        |
//! | `cancelled` | `job`                                                 |
//!
//! A `chunk` record is accepted during replay only when its cumulative
//! `trials_done` equals the outcomes already accumulated plus the record's
//! own outcome count — anything else (a duplicated or reordered chunk)
//! is discarded and those trials recompute, which determinism makes
//! harmless. Replay stops at the first unparseable line: an append-only
//! journal can only be torn at its tail, so everything before the tear is
//! trusted and the torn tail is dropped.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use nvpim_sweep::TrialOutcome;
use serde::{Serialize, Value};

/// File name of the job journal under the daemon's state directory.
pub const JOURNAL_FILE: &str = "jobs.journal";

/// One durable job-state transition.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A job was accepted into the queue.
    Submit {
        /// Job id assigned by the daemon.
        job: u64,
        /// Content digest of the submitted plan.
        digest: String,
        /// Scheduling priority.
        priority: u64,
        /// Total trials the plan expands to.
        trials_total: u64,
        /// The plan's canonical JSON (replayed to re-prepare the campaign).
        plan_json: String,
    },
    /// A worker picked the job up.
    Start {
        /// Job id.
        job: u64,
    },
    /// A chunk of trials completed; `outcomes` are the chunk's results and
    /// `trials_done` is the cumulative count including this chunk.
    Chunk {
        /// Job id.
        job: u64,
        /// Cumulative trials completed after this chunk.
        trials_done: u64,
        /// The chunk's newly computed outcomes, in trial order.
        outcomes: Vec<TrialOutcome>,
    },
    /// The job finished successfully (its report is in the store).
    Done {
        /// Job id.
        job: u64,
    },
    /// The job failed terminally.
    Failed {
        /// Job id.
        job: u64,
        /// Failure description (e.g. captured panic payload).
        error: String,
    },
    /// The job was cancelled.
    Cancelled {
        /// Job id.
        job: u64,
    },
}

impl JournalRecord {
    /// Encodes the record as one compact JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let value = match self {
            JournalRecord::Submit {
                job,
                digest,
                priority,
                trials_total,
                plan_json,
            } => Value::Object(vec![
                ("rec".into(), Value::Str("submit".into())),
                ("job".into(), Value::UInt(*job)),
                ("digest".into(), Value::Str(digest.clone())),
                ("priority".into(), Value::UInt(*priority)),
                ("trials_total".into(), Value::UInt(*trials_total)),
                ("plan_json".into(), Value::Str(plan_json.clone())),
            ]),
            JournalRecord::Start { job } => Value::Object(vec![
                ("rec".into(), Value::Str("start".into())),
                ("job".into(), Value::UInt(*job)),
            ]),
            JournalRecord::Chunk {
                job,
                trials_done,
                outcomes,
            } => Value::Object(vec![
                ("rec".into(), Value::Str("chunk".into())),
                ("job".into(), Value::UInt(*job)),
                ("trials_done".into(), Value::UInt(*trials_done)),
                (
                    "outcomes".into(),
                    Value::Array(outcomes.iter().map(|o| o.to_json()).collect()),
                ),
            ]),
            JournalRecord::Done { job } => Value::Object(vec![
                ("rec".into(), Value::Str("done".into())),
                ("job".into(), Value::UInt(*job)),
            ]),
            JournalRecord::Failed { job, error } => Value::Object(vec![
                ("rec".into(), Value::Str("failed".into())),
                ("job".into(), Value::UInt(*job)),
                ("error".into(), Value::Str(error.clone())),
            ]),
            JournalRecord::Cancelled { job } => Value::Object(vec![
                ("rec".into(), Value::Str("cancelled".into())),
                ("job".into(), Value::UInt(*job)),
            ]),
        };
        serde_json::to_string(&value).expect("journal records serialize")
    }

    /// Decodes one journal line. `Err` carries a description of why the
    /// line is unusable (torn tail, unknown record type, missing field).
    pub fn from_line(line: &str) -> Result<Self, String> {
        let value = serde_json::from_str(line).map_err(|e| format!("unparseable JSON: {e}"))?;
        let str_field = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("journal record missing string field `{key}`"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("journal record missing integer field `{key}`"))
        };
        let rec = str_field("rec")?;
        match rec.as_str() {
            "submit" => Ok(JournalRecord::Submit {
                job: u64_field("job")?,
                digest: str_field("digest")?,
                priority: u64_field("priority")?,
                trials_total: u64_field("trials_total")?,
                plan_json: str_field("plan_json")?,
            }),
            "start" => Ok(JournalRecord::Start {
                job: u64_field("job")?,
            }),
            "chunk" => {
                let outcomes_value = value
                    .get("outcomes")
                    .and_then(Value::as_array)
                    .ok_or("journal chunk record missing `outcomes` array")?;
                let mut outcomes = Vec::with_capacity(outcomes_value.len());
                for entry in outcomes_value {
                    outcomes.push(TrialOutcome::from_json_value(entry)?);
                }
                Ok(JournalRecord::Chunk {
                    job: u64_field("job")?,
                    trials_done: u64_field("trials_done")?,
                    outcomes,
                })
            }
            "done" => Ok(JournalRecord::Done {
                job: u64_field("job")?,
            }),
            "failed" => Ok(JournalRecord::Failed {
                job: u64_field("job")?,
                error: str_field("error")?,
            }),
            "cancelled" => Ok(JournalRecord::Cancelled {
                job: u64_field("job")?,
            }),
            other => Err(format!("unknown journal record type `{other}`")),
        }
    }
}

/// Append-only writer for the job journal.
///
/// `fsync_every = n` syncs the file to disk after every `n`-th appended
/// record (`1` = sync every record, the durable default; `0` = never sync
/// explicitly, leaving flush timing to the OS).
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    fsync_every: u64,
    appended_since_sync: u64,
    records_appended: u64,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` for appending.
    ///
    /// A torn final line — a crash mid-append — is truncated away first.
    /// Appending after a partial line would fuse the next record onto it,
    /// and [`replay`] (which stops at the first unparseable line, the
    /// torn-tail assumption) would then discard every record from the tear
    /// onward on the *next* restart.
    pub fn open(path: impl Into<PathBuf>, fsync_every: u64) -> io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        if let Ok(bytes) = std::fs::read(&path) {
            if !bytes.is_empty() && bytes.last() != Some(&b'\n') {
                let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
                let trunc = OpenOptions::new().write(true).open(&path)?;
                trunc.set_len(keep as u64)?;
                trunc.sync_all()?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            file,
            path,
            fsync_every,
            appended_since_sync: 0,
            records_appended: 0,
        })
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record (as one NDJSON line), honoring the fsync policy.
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let mut line = record.to_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.records_appended += 1;
        self.appended_since_sync += 1;
        if self.fsync_every > 0 && self.appended_since_sync >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces buffered records to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()?;
        self.appended_since_sync = 0;
        Ok(())
    }

    /// Lifetime records appended through this handle.
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }
}

/// Terminal state of a replayed job.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayedTerminal {
    /// Completed; its report should be in the durable store.
    Done,
    /// Failed with the recorded error.
    Failed(String),
    /// Cancelled before completion.
    Cancelled,
}

/// One job reconstructed from the journal.
#[derive(Debug, Clone)]
pub struct ReplayedJob {
    /// Job id from the submit record.
    pub id: u64,
    /// Plan content digest.
    pub digest: String,
    /// Scheduling priority.
    pub priority: u64,
    /// Total trials the plan expands to.
    pub trials_total: u64,
    /// The plan's canonical JSON.
    pub plan_json: String,
    /// Whether a `start` record was seen.
    pub started: bool,
    /// Outcomes accumulated from accepted `chunk` records, in trial order.
    pub outcomes: Vec<TrialOutcome>,
    /// Terminal state, if any terminal record was seen (first one wins).
    pub terminal: Option<ReplayedTerminal>,
    /// Number of `chunk` records whose outcomes were accepted.
    pub chunks_accepted: u64,
}

/// Result of replaying a journal file.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Reconstructed jobs in submit order.
    pub jobs: Vec<ReplayedJob>,
    /// The next job id the daemon should hand out (max replayed id + 1).
    pub next_id: u64,
    /// Records successfully applied.
    pub records_replayed: u64,
    /// Records dropped (torn tail, unknown type, inconsistent chunk,
    /// reference to an unknown job, or duplicate terminal).
    pub records_discarded: u64,
}

/// Replays the journal at `path`, tolerating a torn tail.
///
/// A missing file replays to an empty state. Replay stops at the first
/// line that fails to parse (only the tail of an append-only file can be
/// torn); structurally valid records that are semantically inconsistent
/// (chunk count mismatch, unknown job id, duplicate terminal) are
/// discarded individually and replay continues.
pub fn replay(path: &Path) -> io::Result<Replay> {
    let mut out = Replay {
        jobs: Vec::new(),
        next_id: 1,
        records_replayed: 0,
        records_discarded: 0,
    };
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    let reader = BufReader::new(file);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record = match JournalRecord::from_line(&line) {
            Ok(r) => r,
            Err(_) => {
                // Torn tail: everything after the first bad line is
                // untrustworthy in an append-only file.
                out.records_discarded += 1;
                break;
            }
        };
        let applied = apply(&mut out.jobs, record);
        if applied {
            out.records_replayed += 1;
        } else {
            out.records_discarded += 1;
        }
    }
    out.next_id = out.jobs.iter().map(|j| j.id + 1).max().unwrap_or(1);
    Ok(out)
}

/// Applies one record to the reconstructed job list. Returns whether the
/// record was accepted.
fn apply(jobs: &mut Vec<ReplayedJob>, record: JournalRecord) -> bool {
    match record {
        JournalRecord::Submit {
            job,
            digest,
            priority,
            trials_total,
            plan_json,
        } => {
            if jobs.iter().any(|j| j.id == job) {
                return false; // duplicate submit: first wins
            }
            jobs.push(ReplayedJob {
                id: job,
                digest,
                priority,
                trials_total,
                plan_json,
                started: false,
                outcomes: Vec::new(),
                terminal: None,
                chunks_accepted: 0,
            });
            true
        }
        JournalRecord::Start { job } => match jobs.iter_mut().find(|j| j.id == job) {
            Some(j) => {
                j.started = true;
                true
            }
            None => false,
        },
        JournalRecord::Chunk {
            job,
            trials_done,
            outcomes,
        } => {
            let Some(j) = jobs.iter_mut().find(|j| j.id == job) else {
                return false;
            };
            let expected = j.outcomes.len() as u64 + outcomes.len() as u64;
            if j.terminal.is_some() || trials_done != expected || expected > j.trials_total {
                return false; // duplicated/reordered chunk — recompute instead
            }
            j.outcomes.extend(outcomes);
            j.chunks_accepted += 1;
            true
        }
        JournalRecord::Done { job } => set_terminal(jobs, job, ReplayedTerminal::Done),
        JournalRecord::Failed { job, error } => {
            set_terminal(jobs, job, ReplayedTerminal::Failed(error))
        }
        JournalRecord::Cancelled { job } => set_terminal(jobs, job, ReplayedTerminal::Cancelled),
    }
}

fn set_terminal(jobs: &mut [ReplayedJob], job: u64, terminal: ReplayedTerminal) -> bool {
    match jobs.iter_mut().find(|j| j.id == job) {
        Some(j) if j.terminal.is_none() => {
            j.terminal = Some(terminal);
            true
        }
        _ => false, // unknown job or duplicate terminal: first wins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(faults: u64) -> TrialOutcome {
        TrialOutcome {
            faults_injected: faults,
            checks: 2,
            errors_detected: 1,
            corrections_written_back: 1,
            uncorrectable: 0,
            wrong_output_bits: 0,
            exec_error: None,
            correct: None,
        }
    }

    #[test]
    fn records_round_trip_through_lines() {
        let records = vec![
            JournalRecord::Submit {
                job: 3,
                digest: "d".repeat(64),
                priority: 7,
                trials_total: 12,
                plan_json: "{\"workloads\":[\"full_adder_1b\"]}".into(),
            },
            JournalRecord::Start { job: 3 },
            JournalRecord::Chunk {
                job: 3,
                trials_done: 2,
                outcomes: vec![outcome(0), outcome(3)],
            },
            JournalRecord::Done { job: 3 },
            JournalRecord::Failed {
                job: 4,
                error: "panicked: boom".into(),
            },
            JournalRecord::Cancelled { job: 5 },
        ];
        for record in records {
            let line = record.to_line();
            assert!(!line.contains('\n'), "one record = one line");
            assert_eq!(JournalRecord::from_line(&line).unwrap(), record);
        }
    }

    #[test]
    fn replay_reconstructs_in_flight_and_terminal_jobs() {
        let dir = std::env::temp_dir().join(format!("nvpim-journal-test-{}", std::process::id()));
        let path = dir.join(JOURNAL_FILE);
        let _ = std::fs::remove_file(&path);
        {
            let mut journal = Journal::open(&path, 1).unwrap();
            for record in [
                JournalRecord::Submit {
                    job: 1,
                    digest: "a".repeat(64),
                    priority: 0,
                    trials_total: 4,
                    plan_json: "{}".into(),
                },
                JournalRecord::Start { job: 1 },
                JournalRecord::Chunk {
                    job: 1,
                    trials_done: 2,
                    outcomes: vec![outcome(0), outcome(1)],
                },
                JournalRecord::Submit {
                    job: 2,
                    digest: "b".repeat(64),
                    priority: 0,
                    trials_total: 2,
                    plan_json: "{}".into(),
                },
                JournalRecord::Done { job: 2 },
            ] {
                journal.append(&record).unwrap();
            }
        }
        let replay = replay(&path).unwrap();
        assert_eq!(replay.records_replayed, 5);
        assert_eq!(replay.records_discarded, 0);
        assert_eq!(replay.next_id, 3);
        assert_eq!(replay.jobs.len(), 2);
        let j1 = &replay.jobs[0];
        assert!(j1.started && j1.terminal.is_none());
        assert_eq!(j1.outcomes.len(), 2);
        assert_eq!(replay.jobs[1].terminal, Some(ReplayedTerminal::Done));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn inconsistent_chunks_and_duplicate_terminals_are_discarded() {
        let mut jobs = Vec::new();
        assert!(apply(
            &mut jobs,
            JournalRecord::Submit {
                job: 1,
                digest: "a".repeat(64),
                priority: 0,
                trials_total: 4,
                plan_json: "{}".into(),
            },
        ));
        // Cumulative count skips ahead: rejected.
        assert!(!apply(
            &mut jobs,
            JournalRecord::Chunk {
                job: 1,
                trials_done: 3,
                outcomes: vec![outcome(0)],
            },
        ));
        assert!(jobs[0].outcomes.is_empty());
        // Chunk for an unknown job: rejected.
        assert!(!apply(
            &mut jobs,
            JournalRecord::Chunk {
                job: 9,
                trials_done: 1,
                outcomes: vec![outcome(0)],
            },
        ));
        // First terminal wins; the conflicting duplicate is dropped.
        assert!(apply(
            &mut jobs,
            JournalRecord::Failed {
                job: 1,
                error: "boom".into(),
            },
        ));
        assert!(!apply(&mut jobs, JournalRecord::Done { job: 1 }));
        assert_eq!(
            jobs[0].terminal,
            Some(ReplayedTerminal::Failed("boom".into()))
        );
    }

    #[test]
    fn reopening_truncates_a_torn_tail_so_later_appends_stay_replayable() {
        let dir = std::env::temp_dir().join(format!("nvpim-journal-torn-{}", std::process::id()));
        let path = dir.join(JOURNAL_FILE);
        let _ = std::fs::remove_file(&path);
        {
            let mut journal = Journal::open(&path, 1).unwrap();
            journal
                .append(&JournalRecord::Submit {
                    job: 1,
                    digest: "a".repeat(64),
                    priority: 0,
                    trials_total: 2,
                    plan_json: "{}".into(),
                })
                .unwrap();
        }
        // Simulate a crash mid-append: a partial record with no newline.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(br#"{"type":"chunk","job":1,"tri"#);
        std::fs::write(&path, &bytes).unwrap();
        // Reopening must drop the torn tail; the next record then lands on
        // its own line instead of fusing with the partial one.
        {
            let mut journal = Journal::open(&path, 1).unwrap();
            journal.append(&JournalRecord::Done { job: 1 }).unwrap();
        }
        let replay = replay(&path).unwrap();
        assert_eq!(replay.records_discarded, 0, "tear was truncated, not kept");
        assert_eq!(replay.records_replayed, 2);
        assert_eq!(replay.jobs[0].terminal, Some(ReplayedTerminal::Done));
        std::fs::remove_file(&path).unwrap();
    }
}
