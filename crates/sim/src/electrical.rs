//! Electrical characterization of in-array (multi-output) gates — the
//! Appendix of the paper and Fig. 9.
//!
//! A gate is realized as a resistive voltage divider: the input cells sit
//! between the bias line and the output cell(s), and the output switches
//! when the current through it exceeds the device's critical current `I_C`
//! (MRAM) or its voltage drop crosses `V_OFF` (ReRAM). The bias voltage must
//! be chosen inside a window:
//!
//! * **lower bound** — in the *marginally switching* input combination
//!   (all NOR inputs at `R_low`) the output current must still reach the
//!   switching threshold;
//! * **upper bound** — in the *marginally non-switching* combination (one
//!   input at `R_high`) it must stay below the threshold.
//!
//! The *noise margin* `(V_high − V_low) / ((V_high + V_low)/2)` measures how
//! tolerant the gate is to device variation; the paper requires at least 5 %.
//! Multi-output gates place `N` output devices either in **parallel**
//! (total current `N·I_C`, output resistance `R_P/N`) or in **series**
//! (current `I_C`, resistance `N·R_P`); the Appendix concludes the parallel
//! arrangement is the feasible one, which [`noise_margin`] reproduces.
//!
//! Matching the NOR and THR bias windows requires adding `D` dummy inputs to
//! the NOR gate (Eqs. 4–7); [`min_dummy_inputs`] searches for the smallest
//! `D` that creates an overlapping window.

use serde::{Deserialize, Serialize};

use crate::technology::{Technology, TechnologyParams};

/// How the output devices of a multi-output gate are connected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutputPlacement {
    /// Output devices in parallel: drive current `N·I_C`, resistance `R_P/N`.
    Parallel,
    /// Output devices in series: drive current `I_C`, resistance `N·R_P`.
    Series,
}

/// A bias-voltage operating window `[low, high]` in volts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiasWindow {
    /// Minimum bias voltage that guarantees switching in the must-switch case.
    pub low_v: f64,
    /// Maximum bias voltage that avoids switching in the must-not-switch case.
    pub high_v: f64,
}

impl BiasWindow {
    /// Whether the window is non-empty (a valid bias voltage exists).
    pub fn is_feasible(&self) -> bool {
        self.high_v > self.low_v
    }

    /// The noise margin `(high − low) / ((high + low)/2)`, as a fraction.
    pub fn noise_margin(&self) -> f64 {
        if self.low_v + self.high_v == 0.0 {
            return 0.0;
        }
        (self.high_v - self.low_v) / ((self.high_v + self.low_v) / 2.0)
    }

    /// Intersection with another window.
    pub fn intersect(&self, other: &BiasWindow) -> BiasWindow {
        BiasWindow {
            low_v: self.low_v.max(other.low_v),
            high_v: self.high_v.min(other.high_v),
        }
    }
}

/// Parallel combination of resistances (kΩ).
fn parallel(rs: &[f64]) -> f64 {
    1.0 / rs.iter().map(|r| 1.0 / r).sum::<f64>()
}

/// The minimum noise margin the paper assumes for feasible gate operation.
pub const MIN_NOISE_MARGIN: f64 = 0.05;

/// Electrical model for one technology.
#[derive(Debug, Clone)]
pub struct ElectricalModel {
    params: TechnologyParams,
}

impl ElectricalModel {
    /// Builds the model from a technology's Table III parameters.
    pub fn new(technology: Technology) -> Self {
        Self {
            params: technology.parameters(),
        }
    }

    /// Builds the model from explicit parameters (e.g. the "Today's MTJ"
    /// parameter set of the CRAM literature).
    pub fn with_params(params: TechnologyParams) -> Self {
        Self { params }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &TechnologyParams {
        &self.params
    }

    fn drive_scale(&self) -> (f64, f64) {
        // Returns (threshold current in mA, low resistance in kΩ) — the
        // product is volts. For ReRAM the switching condition is expressed
        // through V_OFF / R_ON, which reduces to an equivalent current.
        match self.params.technology {
            Technology::SttMram | Technology::SotSheMram => (
                self.params.critical_current_ua.unwrap_or(50.0) * 1e-3,
                self.params.r_low_kohm,
            ),
            Technology::ReRam | Technology::ReramCrossbar => (
                self.params.v_off.unwrap_or(0.3).abs() / self.params.r_low_kohm,
                self.params.r_low_kohm,
            ),
        }
    }

    /// Effective output-path resistance (kΩ) for `n_outputs` devices. For
    /// SOT/SHE-MRAM the write path goes through the SHE channel, so the
    /// channel resistance replaces the MTJ resistance (Appendix).
    fn output_resistance(&self, n_outputs: usize, placement: OutputPlacement) -> f64 {
        let r_out_device = match self.params.technology {
            Technology::SotSheMram => self.params.r_she_kohm.unwrap_or(self.params.r_low_kohm),
            _ => self.params.r_low_kohm,
        };
        match placement {
            OutputPlacement::Parallel => r_out_device / n_outputs as f64,
            OutputPlacement::Series => r_out_device * n_outputs as f64,
        }
    }

    /// Total drive current required to switch `n_outputs` devices.
    fn required_current_ma(&self, n_outputs: usize, placement: OutputPlacement) -> f64 {
        let (ic_ma, _) = self.drive_scale();
        match placement {
            OutputPlacement::Parallel => ic_ma * n_outputs as f64,
            OutputPlacement::Series => ic_ma,
        }
    }

    /// Bias window of an `n_inputs`-input NOR gate with `n_outputs` output
    /// devices in the given placement and `dummy_inputs` low-resistance
    /// dummy devices added in parallel with the inputs (Eq. 5 / Eq. 7).
    pub fn nor_bias_window(
        &self,
        n_inputs: usize,
        n_outputs: usize,
        placement: OutputPlacement,
        dummy_inputs: usize,
    ) -> BiasWindow {
        assert!(n_inputs >= 1, "NOR needs at least one input");
        assert!(n_outputs >= 1, "NOR needs at least one output");
        let rp = self.params.r_low_kohm;
        let rap = self.params.r_high_kohm;
        let i_req = self.required_current_ma(n_outputs, placement);
        let r_out = self.output_resistance(n_outputs, placement);
        // Must-switch case: every input at R_low (plus dummies).
        let mut rs_switch = vec![rp; n_inputs];
        // Must-not-switch case: exactly one input at R_high.
        let mut rs_hold = vec![rp; n_inputs - 1];
        rs_hold.push(rap);
        if dummy_inputs > 0 {
            rs_switch.push(rp / dummy_inputs as f64);
            rs_hold.push(rp / dummy_inputs as f64);
        }
        let low = i_req * (parallel(&rs_switch) + r_out);
        let high = i_req * (parallel(&rs_hold) + r_out);
        BiasWindow {
            low_v: low,
            high_v: high,
        }
    }

    /// Bias window of the 4-input THR gate (threshold = 3 zero inputs),
    /// per Eq. 4 / Eq. 6: must switch with three `R_low` inputs, must not
    /// switch with only two.
    pub fn thr_bias_window(&self) -> BiasWindow {
        let rp = self.params.r_low_kohm;
        let rap = self.params.r_high_kohm;
        let (ic_ma, _) = self.drive_scale();
        let r_out = self.output_resistance(1, OutputPlacement::Parallel);
        let switch = parallel(&[rp, rp, rp, rap]);
        let hold = parallel(&[rp, rp, rap, rap]);
        BiasWindow {
            low_v: ic_ma * (switch + r_out),
            high_v: ic_ma * (hold + r_out),
        }
    }

    /// Noise margin (fraction) of an `n_outputs`-output 2-input NOR gate.
    pub fn noise_margin(&self, n_outputs: usize, placement: OutputPlacement) -> f64 {
        self.nor_bias_window(2, n_outputs, placement, 0)
            .noise_margin()
    }

    /// Whether an `n_outputs`-output NOR is feasible (noise margin at least
    /// [`MIN_NOISE_MARGIN`]).
    pub fn multi_output_feasible(&self, n_outputs: usize, placement: OutputPlacement) -> bool {
        self.noise_margin(n_outputs, placement) >= MIN_NOISE_MARGIN
    }

    /// Largest number of output devices that keeps the noise margin above
    /// the minimum, searching up to `max_outputs`.
    pub fn max_feasible_outputs(&self, placement: OutputPlacement, max_outputs: usize) -> usize {
        (1..=max_outputs)
            .take_while(|&n| self.multi_output_feasible(n, placement))
            .last()
            .unwrap_or(0)
    }

    /// Smallest number of dummy inputs `D` that makes the `n_outputs`-output
    /// NOR window overlap the THR window (so both gates can share the same
    /// column control-line bias), searching `0..=max_d`. Returns `None` when
    /// no such `D` exists in the range.
    pub fn min_dummy_inputs(
        &self,
        n_outputs: usize,
        placement: OutputPlacement,
        max_d: usize,
    ) -> Option<usize> {
        let thr = self.thr_bias_window();
        (0..=max_d).find(|&d| {
            let nor = self.nor_bias_window(2, n_outputs, placement, d);
            nor.intersect(&thr).is_feasible() && nor.is_feasible()
        })
    }

    /// Generates the Fig. 9 data: for `n = 1..=max_outputs`, the noise margin
    /// (a) and bias window (b) for both output placements.
    pub fn figure9_sweep(&self, max_outputs: usize) -> Vec<Figure9Point> {
        (1..=max_outputs)
            .map(|n| Figure9Point {
                n_outputs: n,
                parallel_margin: self.noise_margin(n, OutputPlacement::Parallel),
                series_margin: self.noise_margin(n, OutputPlacement::Series),
                parallel_window: self.nor_bias_window(2, n, OutputPlacement::Parallel, 0),
                series_window: self.nor_bias_window(2, n, OutputPlacement::Series, 0),
            })
            .collect()
    }
}

/// One point of the Fig. 9 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure9Point {
    /// Number of output cells.
    pub n_outputs: usize,
    /// Noise margin with parallel-connected outputs.
    pub parallel_margin: f64,
    /// Noise margin with series-connected outputs.
    pub series_margin: f64,
    /// Bias window with parallel-connected outputs.
    pub parallel_window: BiasWindow,
    /// Bias window with series-connected outputs.
    pub series_window: BiasWindow,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_output_nor_window_is_feasible_for_all_technologies() {
        for tech in Technology::ALL {
            let m = ElectricalModel::new(tech);
            let w = m.nor_bias_window(2, 1, OutputPlacement::Parallel, 0);
            assert!(w.is_feasible(), "{tech}: window {w:?}");
            assert!(w.noise_margin() > MIN_NOISE_MARGIN, "{tech}");
        }
    }

    #[test]
    fn series_margin_degrades_faster_than_parallel() {
        let m = ElectricalModel::new(Technology::SttMram);
        for n in 2..=10 {
            let par = m.noise_margin(n, OutputPlacement::Parallel);
            let ser = m.noise_margin(n, OutputPlacement::Series);
            assert!(
                par > ser,
                "parallel margin must exceed series margin at N={n} ({par} vs {ser})"
            );
        }
        // Series placement falls below the 5% minimum within a handful of
        // outputs; parallel stays feasible through N=10 (Fig. 9a).
        assert!(m.max_feasible_outputs(OutputPlacement::Series, 10) < 10);
        assert!(m.max_feasible_outputs(OutputPlacement::Parallel, 10) >= 3);
    }

    #[test]
    fn series_margin_monotonically_decreases() {
        let m = ElectricalModel::new(Technology::SttMram);
        let sweep = m.figure9_sweep(10);
        for pair in sweep.windows(2) {
            assert!(pair[1].series_margin <= pair[0].series_margin + 1e-12);
        }
    }

    #[test]
    fn bias_voltages_grow_with_output_count() {
        // Fig. 9b: required voltages increase with N for both placements.
        let m = ElectricalModel::new(Technology::SttMram);
        let sweep = m.figure9_sweep(10);
        for pair in sweep.windows(2) {
            assert!(pair[1].parallel_window.low_v > pair[0].parallel_window.low_v);
            assert!(pair[1].series_window.low_v > pair[0].series_window.low_v);
        }
        // Voltages stay in a physically sensible range (sub ~5 V).
        assert!(sweep.last().unwrap().series_window.high_v < 5.0);
    }

    #[test]
    fn thr_window_feasible_and_dummy_inputs_align_nor() {
        for tech in Technology::ALL {
            let m = ElectricalModel::new(tech);
            assert!(m.thr_bias_window().is_feasible(), "{tech}");
            // Some modest number of dummy inputs aligns the 2-output NOR
            // window with the THR window (Appendix: D = 2..5 depending on
            // technology; we only require existence within D <= 8).
            let d = m.min_dummy_inputs(2, OutputPlacement::Parallel, 8);
            assert!(
                d.is_some(),
                "{tech}: no dummy-input count aligns NOR with THR"
            );
        }
    }

    #[test]
    fn two_and_three_output_gates_are_feasible_in_parallel_placement() {
        // ECiM needs NOR22 and TRiM needs 3-output NOR.
        for tech in Technology::ALL {
            let m = ElectricalModel::new(tech);
            assert!(
                m.multi_output_feasible(2, OutputPlacement::Parallel),
                "{tech}: NOR22 infeasible"
            );
            assert!(
                m.multi_output_feasible(3, OutputPlacement::Parallel),
                "{tech}: 3-output NOR infeasible"
            );
        }
    }

    #[test]
    fn crossbar_gates_are_electrically_feasible() {
        // `Technology::ALL` iterations above deliberately exclude the
        // crossbar (plan-byte compatibility); give it the same coverage.
        let m = ElectricalModel::new(Technology::ReramCrossbar);
        let w = m.nor_bias_window(2, 1, OutputPlacement::Parallel, 0);
        assert!(w.is_feasible());
        assert!(w.noise_margin() > MIN_NOISE_MARGIN);
        assert!(m.thr_bias_window().is_feasible());
        assert!(m.multi_output_feasible(2, OutputPlacement::Parallel));
        assert!(m.multi_output_feasible(3, OutputPlacement::Parallel));
        assert!(m
            .min_dummy_inputs(2, OutputPlacement::Parallel, 8)
            .is_some());
    }

    #[test]
    fn window_intersection() {
        let a = BiasWindow {
            low_v: 1.0,
            high_v: 2.0,
        };
        let b = BiasWindow {
            low_v: 1.5,
            high_v: 3.0,
        };
        let i = a.intersect(&b);
        assert_eq!(i.low_v, 1.5);
        assert_eq!(i.high_v, 2.0);
        assert!(i.is_feasible());
        let c = BiasWindow {
            low_v: 2.5,
            high_v: 3.0,
        };
        assert!(!a.intersect(&c).is_feasible());
    }

    #[test]
    fn zero_window_noise_margin_is_zero() {
        let w = BiasWindow {
            low_v: 0.0,
            high_v: 0.0,
        };
        assert_eq!(w.noise_margin(), 0.0);
    }
}
