//! Criterion micro-benchmarks of the ECC substrate: the kernels the ECiM /
//! TRiM Checkers run on every logic-level check.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nvpim_ecc::bch::BchCode;
use nvpim_ecc::gf2::BitVec;
use nvpim_ecc::hamming::HammingCode;
use nvpim_ecc::redundancy::majority_vote_words;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn random_bits(len: usize, seed: u64) -> BitVec {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_bool(0.5)).collect()
}

fn bench_hamming(c: &mut Criterion) {
    let mut group = c.benchmark_group("hamming");
    for r in [3usize, 5, 8] {
        let code = HammingCode::new_standard(r);
        let data = random_bits(code.k(), 1);
        let clean = code.encode(&data);
        group.bench_with_input(BenchmarkId::new("encode", code.n()), &code, |b, code| {
            b.iter(|| code.encode(black_box(&data)))
        });
        group.bench_with_input(BenchmarkId::new("syndrome", code.n()), &code, |b, code| {
            b.iter(|| code.syndrome(black_box(&clean)))
        });
        let mut corrupted = clean.clone();
        corrupted.flip(code.n() / 2);
        group.bench_with_input(
            BenchmarkId::new("decode_single_error", code.n()),
            &code,
            |b, code| {
                b.iter(|| {
                    let mut cw = corrupted.clone();
                    code.decode(&mut cw)
                })
            },
        );
    }
    group.finish();
}

fn bench_bch(c: &mut Criterion) {
    let mut group = c.benchmark_group("bch_255");
    group.sample_size(20);
    for t in [1usize, 2, 4] {
        let code = BchCode::new(8, t).expect("valid BCH code");
        let data = random_bits(code.k(), 2);
        let clean = code.encode(&data);
        group.bench_with_input(BenchmarkId::new("encode", t), &code, |b, code| {
            b.iter(|| code.encode(black_box(&data)))
        });
        let mut corrupted = clean.clone();
        for i in 0..t {
            corrupted.flip(i * 37 + 5);
        }
        group.bench_with_input(BenchmarkId::new("decode_t_errors", t), &code, |b, code| {
            b.iter(|| {
                let mut cw = corrupted.clone();
                code.decode(&mut cw).expect("correctable pattern")
            })
        });
    }
    group.finish();
}

fn bench_majority(c: &mut Criterion) {
    let mut group = c.benchmark_group("majority_vote");
    for bits in [64usize, 256] {
        let good = random_bits(bits, 3);
        let mut bad = good.clone();
        bad.flip(bits / 3);
        let copies = vec![good.clone(), bad, good.clone()];
        group.bench_with_input(BenchmarkId::from_parameter(bits), &copies, |b, copies| {
            let refs: Vec<&_> = copies.iter().collect();
            b.iter(|| majority_vote_words(black_box(&refs)))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(800)).sample_size(20);
    targets = bench_hamming, bench_bch, bench_majority);
criterion_main!(benches);
