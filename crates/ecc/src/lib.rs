//! # nvpim-ecc
//!
//! Error-correcting-code substrate for the `nvpim` reproduction of
//! *"On Error Correction for Nonvolatile Processing-In-Memory"* (ISCA 2024).
//!
//! This crate provides every coding-theory building block the paper's ECiM
//! and TRiM designs rest on:
//!
//! * [`gf2`] — word-packed bit vectors and matrices over GF(2),
//! * [`hamming`] — systematic Hamming codes with explicit `G`/`H` matrices,
//!   per-data-bit parity-update masks (the in-memory ECiM primitive) and the
//!   Checker's syndrome decoder,
//! * [`gf2m`] / [`bch`] — GF(2^m) arithmetic and BCH codes for the
//!   multi-error extension of Fig. 8,
//! * [`redundancy`] — DMR / TMR / N-modular majority voting (TRiM's Checker),
//! * [`design_space`] — the asymptotic SEP design space of Table II,
//! * [`homomorphic`] — column-wise (homomorphic) ECC candidates and the cost
//!   model showing why the paper adopts row-wise ECC (§III).
//!
//! # Examples
//!
//! Maintaining Hamming(255, 247) parity the way ECiM does, then letting the
//! Checker correct a computation-induced bit flip:
//!
//! ```
//! use nvpim_ecc::gf2::BitVec;
//! use nvpim_ecc::hamming::{DecodeOutcome, HammingCode};
//!
//! let code = HammingCode::new_standard(8); // Hamming(255, 247)
//! let mut data = BitVec::zeros(code.k());
//! let mut parity = BitVec::zeros(code.parity_bits());
//!
//! // A gate writes output 1 into data bit 42; ECiM toggles the affected
//! // parity bits using the per-bit update mask.
//! data.set(42, true);
//! parity.xor_assign(code.parity_update_mask(42));
//!
//! // A logic error flips data bit 100 without updating parity.
//! data.flip(100);
//!
//! // The Checker reads the row, recomputes the syndrome and corrects.
//! let mut codeword = data.concat(&parity);
//! assert_eq!(code.decode(&mut codeword), DecodeOutcome::Corrected { position: 100 });
//! assert!(code.extract_data(&codeword).get(42));
//! assert!(!code.extract_data(&codeword).get(100));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bch;
pub mod design_space;
pub mod error;
pub mod gf2;
pub mod gf2m;
pub mod hamming;
pub mod homomorphic;
pub mod redundancy;

pub use bch::BchCode;
pub use error::EccError;
pub use gf2::{BitMatrix, BitVec};
pub use hamming::{DecodeOutcome, HammingCode};
pub use redundancy::{majority3, majority_vote_words, tmr_vote, VoteOutcome};
