//! Offline stand-in for the real `criterion` crate.
//!
//! Provides the API surface the workspace's benches use (`Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros). Instead of statistical
//! sampling it runs each benchmark closure a fixed number of iterations and
//! prints mean wall-clock time per iteration — enough to compare kernels
//! and to keep `cargo bench` working offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations per benchmark (after one warm-up call).
const ITERATIONS: u32 = 10;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for compatibility; the stub has no warm-up phase to tune.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; the stub's measurement is fixed.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; the stub's sample count is fixed.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by name or [`BenchmarkId`].
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", function_name.into(), parameter))
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iterations = ITERATIONS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let per_iter = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations
    } else {
        Duration::ZERO
    };
    println!("bench {name:<60} {per_iter:>12.2?}/iter");
}

/// Declares a group of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*);
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn harness_runs_groups_and_functions() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1))
            .sample_size(5);
        sample_bench(&mut c);
        c.bench_function("top_level", |b| b.iter(|| black_box(2 + 2)));
    }
}
