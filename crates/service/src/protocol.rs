//! The newline-delimited JSON wire protocol.
//!
//! Every request is one JSON object per line carrying a `cmd` field
//! (`submit`, `status`, `result`, `cancel`, `stats`, `metrics`,
//! `shutdown`); every
//! response is one JSON object per line with an `ok` boolean. Failures are
//! *structured*: `{"ok":false,"error":{"code":...,"message":...}}` — a bad
//! request never tears down the worker pool, only (at worst) its own
//! connection. See `docs/protocol.md` for the full schema and a worked
//! session.
//!
//! [`dispatch`] is shared by the TCP server and any in-process harness: it
//! decodes one request line, calls the [`ServiceHandle`] (the same API
//! in-process users call directly), and emits one or more response lines
//! through a sink — more than one when a waiting `submit` streams progress
//! events before the final result.

use std::sync::Arc;
use std::time::Duration;

use nvpim_sweep::{CampaignControl, SweepPlan, TrialOutcome};
use serde::{Serialize, Value};

use crate::service::ServiceHandle;
use crate::ServiceError;

/// Maximum accepted request-line length in bytes; longer lines get a
/// `line_too_long` error and the connection is closed.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// What the connection loop should do after a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Keep serving this connection.
    Continue,
    /// The client asked for daemon shutdown.
    Shutdown,
}

/// Builds `{"ok":true, ...fields}`.
pub fn ok_response(fields: Vec<(String, Value)>) -> Value {
    let mut pairs = vec![("ok".to_string(), Value::Bool(true))];
    pairs.extend(fields);
    Value::Object(pairs)
}

/// Builds the structured error response `{"ok":false,"error":{...}}`.
pub fn error_response(code: &str, message: impl Into<String>) -> Value {
    Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        (
            "error".to_string(),
            Value::Object(vec![
                ("code".to_string(), Value::Str(code.to_string())),
                ("message".to_string(), Value::Str(message.into())),
            ]),
        ),
    ])
}

/// The wire code for a [`ServiceError`].
fn error_code(err: &ServiceError) -> &'static str {
    match err {
        ServiceError::Overloaded { .. } => "overloaded",
        ServiceError::ShuttingDown => "shutting_down",
        ServiceError::UnknownJob(_) => "unknown_job",
        ServiceError::InvalidPlan(_) => "invalid_plan",
        ServiceError::BadShard(_) => "bad_shard",
        ServiceError::JobFailed(_) => "job_failed",
        ServiceError::JobCancelled => "job_cancelled",
        ServiceError::NotDone => "not_done",
    }
}

fn service_error(err: &ServiceError) -> Value {
    // An overload rejection carries its machine-readable backoff hint
    // inside the error object, next to `code`/`message`.
    if let ServiceError::Overloaded { retry_after_ms } = err {
        return Value::Object(vec![
            ("ok".to_string(), Value::Bool(false)),
            (
                "error".to_string(),
                Value::Object(vec![
                    ("code".to_string(), Value::Str(error_code(err).to_string())),
                    ("message".to_string(), Value::Str(err.to_string())),
                    ("retry_after_ms".to_string(), Value::UInt(*retry_after_ms)),
                ]),
            ),
        ]);
    }
    error_response(error_code(err), err.to_string())
}

fn to_value<T: Serialize>(v: &T) -> Value {
    v.to_json()
}

/// Decodes the `plan` field: an inline plan object, or the named shorthands
/// `"quick"` / `"paper_scale"` / `"accuracy_quick"`.
fn decode_plan(value: &Value) -> Result<SweepPlan, String> {
    if let Some(name) = value.as_str() {
        return match name {
            "quick" => Ok(SweepPlan::quick()),
            "paper_scale" => Ok(SweepPlan::paper_scale()),
            "accuracy_quick" => Ok(SweepPlan::accuracy_quick()),
            other => Err(format!(
                "unknown named plan `{other}` (expected quick, paper_scale or accuracy_quick)"
            )),
        };
    }
    SweepPlan::from_json_value(value).map_err(|e| e.to_string())
}

fn u64_arg(request: &Value, key: &str) -> Result<u64, Value> {
    request
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| error_response("bad_request", format!("missing or invalid `{key}` field")))
}

/// Handles one request line, emitting every response line through `emit`.
///
/// `emit` returning an error (a dead connection) aborts the request; the
/// error is propagated so the connection loop can drop the socket. Progress
/// streaming for `{"cmd":"submit","wait":true}` emits one
/// `{"ok":true,"event":"progress",...}` line whenever the completed-trial
/// count advances, then the final `result`-shaped line.
pub fn dispatch(
    service: &ServiceHandle,
    line: &str,
    emit: &mut dyn FnMut(&Value) -> std::io::Result<()>,
) -> std::io::Result<Outcome> {
    let request = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => {
            emit(&error_response("malformed_json", e.to_string()))?;
            return Ok(Outcome::Continue);
        }
    };
    let cmd = match request.get("cmd").and_then(Value::as_str) {
        Some(c) => c,
        None => {
            emit(&error_response(
                "bad_request",
                "request must be an object with a string `cmd` field",
            ))?;
            return Ok(Outcome::Continue);
        }
    };

    match cmd {
        "submit" => {
            let plan_field = match request.get("plan") {
                Some(p) => p,
                None => {
                    emit(&error_response("bad_request", "missing `plan` field"))?;
                    return Ok(Outcome::Continue);
                }
            };
            let plan = match decode_plan(plan_field) {
                Ok(p) => p,
                Err(msg) => {
                    emit(&error_response("invalid_plan", msg))?;
                    return Ok(Outcome::Continue);
                }
            };
            let priority = request
                .get("priority")
                .and_then(Value::as_u64)
                .unwrap_or(0)
                .min(9) as u8;
            let wait = request
                .get("wait")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            let outcome = match service.submit(plan, priority) {
                Ok(o) => o,
                Err(e) => {
                    emit(&service_error(&e))?;
                    return Ok(Outcome::Continue);
                }
            };
            emit(&ok_response(vec![
                ("event".into(), Value::Str("accepted".into())),
                ("job".into(), Value::UInt(outcome.job)),
                ("digest".into(), Value::Str(outcome.digest.clone())),
                ("cached".into(), Value::Bool(outcome.cached)),
                ("coalesced".into(), Value::Bool(outcome.coalesced)),
                ("trials_total".into(), Value::UInt(outcome.trials_total)),
            ]))?;
            if wait {
                stream_until_done(service, outcome.job, emit)?;
            }
            Ok(Outcome::Continue)
        }
        "status" => {
            let job = match u64_arg(&request, "job") {
                Ok(j) => j,
                Err(resp) => {
                    emit(&resp)?;
                    return Ok(Outcome::Continue);
                }
            };
            match service.status(job) {
                Ok(status) => emit(&ok_response(vec![("status".into(), to_value(&status))]))?,
                Err(e) => emit(&service_error(&e))?,
            }
            Ok(Outcome::Continue)
        }
        "result" => {
            let job = match u64_arg(&request, "job") {
                Ok(j) => j,
                Err(resp) => {
                    emit(&resp)?;
                    return Ok(Outcome::Continue);
                }
            };
            let wait = request
                .get("wait")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            let timeout = request
                .get("timeout_ms")
                .and_then(Value::as_u64)
                .map(Duration::from_millis);
            let result = if wait {
                service.wait(job, timeout)
            } else {
                service.result(job)
            };
            emit(&result_payload(service, job, result))?;
            Ok(Outcome::Continue)
        }
        "cancel" => {
            let job = match u64_arg(&request, "job") {
                Ok(j) => j,
                Err(resp) => {
                    emit(&resp)?;
                    return Ok(Outcome::Continue);
                }
            };
            match service.cancel(job) {
                Ok(accepted) => emit(&ok_response(vec![
                    ("job".into(), Value::UInt(job)),
                    ("cancelled".into(), Value::Bool(accepted)),
                ]))?,
                Err(e) => emit(&service_error(&e))?,
            }
            Ok(Outcome::Continue)
        }
        "stats" => {
            emit(&ok_response(vec![(
                "stats".into(),
                to_value(&service.stats()),
            )]))?;
            Ok(Outcome::Continue)
        }
        "metrics" => {
            emit(&ok_response(vec![(
                "metrics".into(),
                Value::Str(service.metrics_text()),
            )]))?;
            Ok(Outcome::Continue)
        }
        "ping" => {
            // The fleet heartbeat: cheap, never queued, and it carries the
            // drain flag so a coordinator can tell "unschedulable but
            // alive" from "dead".
            emit(&ok_response(vec![
                ("event".into(), Value::Str("pong".into())),
                ("draining".into(), Value::Bool(service.is_draining())),
                (
                    "shutting_down".into(),
                    Value::Bool(service.is_shutting_down()),
                ),
            ]))?;
            Ok(Outcome::Continue)
        }
        "run_shard" => {
            let plan_field = match request.get("plan") {
                Some(p) => p,
                None => {
                    emit(&error_response("bad_request", "missing `plan` field"))?;
                    return Ok(Outcome::Continue);
                }
            };
            let plan = match decode_plan(plan_field) {
                Ok(p) => p,
                Err(msg) => {
                    emit(&error_response("invalid_plan", msg))?;
                    return Ok(Outcome::Continue);
                }
            };
            let (start, end) = match (u64_arg(&request, "start"), u64_arg(&request, "end")) {
                (Ok(s), Ok(e)) => (s, e),
                (Err(resp), _) | (_, Err(resp)) => {
                    emit(&resp)?;
                    return Ok(Outcome::Continue);
                }
            };
            let chunk_trials = request
                .get("chunk_trials")
                .and_then(Value::as_u64)
                .unwrap_or(64) as usize;
            // The shard's previously checkpointed outcome prefix, encoded
            // exactly like journal chunk records.
            let resume: Vec<TrialOutcome> = match request.get("resume") {
                None => Vec::new(),
                Some(Value::Array(items)) => {
                    match items.iter().map(TrialOutcome::from_json_value).collect() {
                        Ok(outcomes) => outcomes,
                        Err(msg) => {
                            emit(&error_response(
                                "bad_request",
                                format!("invalid `resume` outcome: {msg}"),
                            ))?;
                            return Ok(Outcome::Continue);
                        }
                    }
                }
                Some(_) => {
                    emit(&error_response(
                        "bad_request",
                        "`resume` must be an array of trial outcomes",
                    ))?;
                    return Ok(Outcome::Continue);
                }
            };
            let resumed = resume.len() as u64;
            // Structural range checks happen before acceptance; bounds
            // against the plan's trial count surface from the service as
            // a later `bad_shard` line.
            if start > end || resumed > end - start {
                emit(&service_error(&ServiceError::BadShard(format!(
                    "range {start}..{end} with {resumed} resumed outcome(s) is malformed"
                ))))?;
                return Ok(Outcome::Continue);
            }
            emit(&ok_response(vec![
                ("event".into(), Value::Str("shard_accepted".into())),
                ("start".into(), Value::UInt(start)),
                ("end".into(), Value::UInt(end)),
                ("resumed".into(), Value::UInt(resumed)),
            ]))?;
            // Stream every chunk's newly computed outcomes: the
            // coordinator's checkpoint. If the coordinator goes away the
            // failed emit cancels the shard; if this daemon starts
            // draining, the shard stops at the next chunk boundary and
            // the coordinator re-assigns the remainder elsewhere.
            let mut io_err: Option<std::io::Error> = None;
            let result = service.run_shard(&plan, start, end, chunk_trials, resume, |cp| {
                let outcomes: Vec<Value> = cp.new_outcomes.iter().map(|o| o.to_json()).collect();
                let line = ok_response(vec![
                    ("event".into(), Value::Str("shard_chunk".into())),
                    ("trials_done".into(), Value::UInt(cp.progress.trials_done)),
                    ("trials_total".into(), Value::UInt(cp.progress.trials_total)),
                    ("outcomes".into(), Value::Array(outcomes)),
                ]);
                if let Err(err) = emit(&line) {
                    io_err = Some(err);
                    return CampaignControl::Cancel;
                }
                if service.is_draining() {
                    return CampaignControl::Cancel;
                }
                CampaignControl::Continue
            });
            if let Some(err) = io_err {
                return Err(err);
            }
            match result {
                Ok(outcomes) => emit(&ok_response(vec![
                    ("event".into(), Value::Str("shard_done".into())),
                    ("start".into(), Value::UInt(start)),
                    ("end".into(), Value::UInt(end)),
                    ("trials".into(), Value::UInt(outcomes.len() as u64)),
                ]))?,
                Err(ServiceError::JobCancelled) if service.is_draining() => {
                    emit(&service_error(&ServiceError::ShuttingDown))?;
                }
                Err(e) => emit(&service_error(&e))?,
            }
            Ok(Outcome::Continue)
        }
        "shutdown" => {
            emit(&ok_response(vec![(
                "shutting_down".into(),
                Value::Bool(true),
            )]))?;
            Ok(Outcome::Shutdown)
        }
        other => {
            emit(&error_response(
                "unknown_command",
                format!("unknown command `{other}`"),
            ))?;
            Ok(Outcome::Continue)
        }
    }
}

/// Builds the `result` response: the report is embedded as a JSON value
/// (parsed from the stored byte-identical document).
fn result_payload(
    service: &ServiceHandle,
    job: u64,
    result: Result<Arc<String>, ServiceError>,
) -> Value {
    match result {
        Ok(report_json) => {
            // Stored reports are serialized by the engine and should always
            // parse; a corrupt document (bit rot the store's integrity check
            // could not catch, say) becomes a structured error for this one
            // request rather than a panic in the connection thread.
            let report = match serde_json::from_str(&report_json) {
                Ok(report) => report,
                Err(err) => {
                    return error_response(
                        "internal_error",
                        format!("stored report for job {job} is not valid JSON: {err}"),
                    );
                }
            };
            let cached = service
                .job(job)
                .map(|core| core.from_cache)
                .unwrap_or(false);
            ok_response(vec![
                ("event".into(), Value::Str("result".into())),
                ("job".into(), Value::UInt(job)),
                ("cached".into(), Value::Bool(cached)),
                ("report".into(), report),
            ])
        }
        Err(e) => service_error(&e),
    }
}

/// Streams progress events for `job` until it reaches a terminal state,
/// then emits the final result line.
fn stream_until_done(
    service: &ServiceHandle,
    job: u64,
    emit: &mut dyn FnMut(&Value) -> std::io::Result<()>,
) -> std::io::Result<()> {
    if let Some(core) = service.job(job) {
        let mut last_done = u64::MAX;
        loop {
            let state = core.wait_terminal(Some(Duration::from_millis(25)));
            let done = core.trials_done();
            if state.is_terminal() {
                break;
            }
            if done != last_done {
                last_done = done;
                let mut fields = vec![
                    ("event".into(), Value::Str("progress".into())),
                    ("job".into(), Value::UInt(job)),
                    ("state".into(), Value::Str(state.label().into())),
                    ("trials_done".into(), Value::UInt(done)),
                    ("trials_total".into(), Value::UInt(core.trials_total)),
                    ("percent".into(), Value::Float(core.percent())),
                    (
                        "trials_per_sec".into(),
                        core.trials_per_sec().map_or(Value::Null, Value::Float),
                    ),
                ];
                // Accuracy campaigns additionally stream their running
                // task-accuracy tally; error campaigns omit the keys
                // entirely, keeping their progress lines byte-stable.
                if let Some((correct, evaluated)) = core.accuracy_progress() {
                    fields.push(("correct_trials".into(), Value::UInt(correct)));
                    fields.push(("evaluated_trials".into(), Value::UInt(evaluated)));
                    fields.push((
                        "accuracy".into(),
                        Value::Float(correct as f64 / evaluated as f64),
                    ));
                }
                emit(&ok_response(fields))?;
            }
        }
    }
    emit(&result_payload(service, job, service.result(job)))
}
