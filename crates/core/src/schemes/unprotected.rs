//! The unprotected iso-area baseline: gates execute exactly as scheduled,
//! no metadata is maintained and no checks run — the demonstration of why
//! protection is needed, and the denominator of every overhead figure.

use nvpim_compiler::netlist::Netlist;
use nvpim_compiler::schedule::RowSchedule;
use nvpim_sim::array::PimArray;
use nvpim_sim::sliced::SlicedPimArray;

use crate::checker::CheckerCostModel;
use crate::config::DesignConfig;
use crate::executor::{ExecScratch, ProtectedExecError, ProtectedExecutor, ProtectedRunReport};
use crate::scheme::{CostEnv, SchemeRuntime};
use crate::sliced::{SlicedExecScratch, SlicedExecutor, SlicedRunReport};
use crate::system::CostBreakdown;

/// The unprotected baseline's runtime (registered as `"Unprotected"`).
#[derive(Debug)]
pub struct UnprotectedScheme;

impl SchemeRuntime for UnprotectedScheme {
    fn wire_name(&self) -> &'static str {
        "Unprotected"
    }

    fn display_name(&self) -> &'static str {
        "unprotected"
    }

    fn metadata_columns(&self, _config: &DesignConfig) -> usize {
        0
    }

    fn sliceable(&self) -> bool {
        true
    }

    fn checker_cost(&self, _config: &DesignConfig) -> CheckerCostModel {
        // No Checker at all: a zero-width majority voter costs nothing.
        CheckerCostModel::for_majority(0)
    }

    fn metadata_costs(
        &self,
        _schedule: &RowSchedule,
        _config: &DesignConfig,
        _env: &CostEnv,
        _breakdown: &mut CostBreakdown,
    ) -> u64 {
        0
    }

    fn run_scalar(
        &self,
        exec: &ProtectedExecutor,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
        scratch: &mut ExecScratch,
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        for sg in &schedule.gates {
            exec.materialize_inputs(netlist, sg, array, row, inputs, scratch)?;
            exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols)?;
        }
        Ok(ProtectedRunReport {
            outputs: exec.read_outputs(netlist, schedule, array, row, inputs)?,
            checks: 0,
            errors_detected: 0,
            corrections_written_back: 0,
            uncorrectable: 0,
            metadata_gate_ops: 0,
        })
    }

    fn run_sliced(
        &self,
        exec: &SlicedExecutor,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut SlicedPimArray,
        row: usize,
        inputs: &[u64],
        scratch: &mut SlicedExecScratch,
    ) -> Result<SlicedRunReport, ProtectedExecError> {
        for sg in &schedule.gates {
            exec.materialize_inputs(netlist, sg, array, row, inputs, scratch);
            exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols);
        }
        exec.read_outputs(netlist, schedule, array, row, inputs, scratch);
        Ok(SlicedRunReport::new())
    }
}
