//! Campaign-level determinism: the serialized report must be a pure
//! function of the plan — independent of thread count and repeatable
//! across runs — and distinct campaign seeds must actually change results.
//!
//! NOTE: this file must contain exactly one `#[test]`, because it mutates
//! the process-global `RAYON_NUM_THREADS` variable — sibling tests in the
//! same binary would run concurrently and race the env reads (the reason
//! `set_var` is unsafe in edition 2024). Campaign tests that don't touch
//! the environment belong in other test files (separate binaries, which
//! cargo runs sequentially).

use nvpim_sweep::{
    prepare_campaign, run_campaign, run_campaign_with_backend, CampaignControl, ScheduleCache,
    SimBackend, SweepPlan,
};

fn run_chunked_json(plan: &SweepPlan, chunk: usize) -> String {
    let mut cache = ScheduleCache::new();
    prepare_campaign(plan, &mut cache)
        .unwrap()
        .run_chunked(chunk, |_| CampaignControl::Continue)
        .unwrap()
        .to_json()
}

#[test]
fn report_json_is_byte_identical_across_thread_counts_and_runs() {
    let plan = SweepPlan::quick();

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let single_threaded = run_campaign(&plan).unwrap().to_json();
    let single_threaded_again = run_campaign(&plan).unwrap().to_json();
    let single_threaded_chunked = run_chunked_json(&plan, 5);
    let single_threaded_scalar = run_campaign_with_backend(&plan, SimBackend::Scalar)
        .unwrap()
        .to_json();

    std::env::set_var("RAYON_NUM_THREADS", "4");
    let four_threads = run_campaign(&plan).unwrap().to_json();
    let four_threads_chunked = run_chunked_json(&plan, 7);
    let four_threads_scalar = run_campaign_with_backend(&plan, SimBackend::Scalar)
        .unwrap()
        .to_json();

    std::env::remove_var("RAYON_NUM_THREADS");
    let default_threads = run_campaign(&plan).unwrap().to_json();

    assert_eq!(
        single_threaded, single_threaded_again,
        "same plan, same thread count → identical JSON"
    );
    assert_eq!(
        single_threaded, four_threads,
        "RAYON_NUM_THREADS=1 vs 4 must not change the report"
    );
    assert_eq!(
        single_threaded, default_threads,
        "default thread count must not change the report"
    );
    // The packed-arena engine hands per-thread arenas to arbitrary trial
    // subsets; neither chunking nor the thread count those chunks fan out
    // to may leak into report bytes.
    assert_eq!(
        single_threaded, single_threaded_chunked,
        "chunked single-thread run must match"
    );
    assert_eq!(
        single_threaded, four_threads_chunked,
        "chunked multi-thread run must match"
    );
    // The scalar backend is the reference semantics: the (default) sliced
    // backend must emit the same bytes at every thread count — lane
    // batching, like chunking, is pure scheduling.
    assert_eq!(
        single_threaded, single_threaded_scalar,
        "sliced vs scalar backend must agree at one thread"
    );
    assert_eq!(
        single_threaded, four_threads_scalar,
        "sliced vs scalar backend must agree at four threads"
    );

    // A different campaign seed must actually change trial outcomes
    // (otherwise the determinism above would be vacuous).
    let mut reseeded = plan.clone();
    reseeded.campaign_seed ^= 0xDEAD_BEEF;
    let other = run_campaign(&reseeded).unwrap().to_json();
    assert_ne!(single_threaded, other, "campaign seed must matter");
}
