//! Finite-field arithmetic over GF(2^m), used to construct BCH codes.
//!
//! The field is represented with log/antilog tables generated from a
//! primitive polynomial. Supported extension degrees are `2 ≤ m ≤ 16`,
//! which covers every BCH block length the paper discusses (BCH-255 uses
//! GF(2^8)).
//!
//! # Examples
//!
//! ```
//! use nvpim_ecc::gf2m::Gf2m;
//!
//! let field = Gf2m::new(8).unwrap();
//! let a = 0x57;
//! let b = 0x83;
//! let p = field.mul(a, b);
//! assert_eq!(field.div(p, b), a);
//! ```

use crate::error::EccError;

/// Default primitive polynomials (including the `x^m` term) indexed by `m`.
/// Entry `m` is a known primitive polynomial of degree `m` over GF(2).
const PRIMITIVE_POLYS: [u32; 17] = [
    0,
    0,
    0b111,               // m=2:  x^2 + x + 1
    0b1011,              // m=3:  x^3 + x + 1
    0b10011,             // m=4:  x^4 + x + 1
    0b100101,            // m=5:  x^5 + x^2 + 1
    0b1000011,           // m=6:  x^6 + x + 1
    0b10001001,          // m=7:  x^7 + x^3 + 1
    0b100011101,         // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0b1000010001,        // m=9:  x^9 + x^4 + 1
    0b10000001001,       // m=10: x^10 + x^3 + 1
    0b100000000101,      // m=11: x^11 + x^2 + 1
    0b1000001010011,     // m=12
    0b10000000011011,    // m=13
    0b100010001000011,   // m=14
    0b1000000000000011,  // m=15: x^15 + x + 1
    0b10001000000001011, // m=16
];

/// The finite field GF(2^m) with log/antilog multiplication tables.
#[derive(Clone, Debug)]
pub struct Gf2m {
    m: usize,
    size: usize,
    /// antilog[i] = α^i for i in 0..size-1
    antilog: Vec<u32>,
    /// log[x] = i such that α^i = x (log[0] unused)
    log: Vec<u32>,
    primitive_poly: u32,
}

impl Gf2m {
    /// Constructs GF(2^m) using a built-in primitive polynomial.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::InvalidParameters`] if `m` is outside `2..=16`.
    pub fn new(m: usize) -> Result<Self, EccError> {
        if !(2..=16).contains(&m) {
            return Err(EccError::InvalidParameters(format!(
                "GF(2^m) supported for 2 <= m <= 16, got m={m}"
            )));
        }
        Ok(Self::with_primitive_poly(m, PRIMITIVE_POLYS[m]))
    }

    /// Constructs GF(2^m) from an explicit primitive polynomial
    /// (bit `i` of `poly` is the coefficient of `x^i`; the `x^m` bit must be set).
    ///
    /// # Panics
    ///
    /// Panics if the polynomial does not have degree `m`.
    pub fn with_primitive_poly(m: usize, poly: u32) -> Self {
        assert!(
            poly >> m == 1,
            "primitive polynomial must have degree exactly m"
        );
        let size = 1usize << m;
        let mut antilog = vec![0u32; size - 1];
        let mut log = vec![0u32; size];
        let mut x = 1u32;
        for (i, slot) in antilog.iter_mut().enumerate() {
            *slot = x;
            log[x as usize] = i as u32;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= poly;
            }
        }
        Self {
            m,
            size,
            antilog,
            log,
            primitive_poly: poly,
        }
    }

    /// Extension degree `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of field elements, `2^m`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Multiplicative order of the field, `2^m − 1`.
    pub fn order(&self) -> usize {
        self.size - 1
    }

    /// The primitive polynomial used to build the field.
    pub fn primitive_poly(&self) -> u32 {
        self.primitive_poly
    }

    /// `α^i` for any integer exponent `i` (reduced modulo `2^m − 1`).
    pub fn alpha_pow(&self, i: i64) -> u32 {
        let order = self.order() as i64;
        let idx = i.rem_euclid(order) as usize;
        self.antilog[idx]
    }

    /// Discrete logarithm of a non-zero element.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0` or `x` is not a field element.
    pub fn log(&self, x: u32) -> u32 {
        assert!(x != 0, "log of zero is undefined");
        assert!((x as usize) < self.size, "element out of field range");
        self.log[x as usize]
    }

    /// Field addition (XOR).
    pub fn add(&self, a: u32, b: u32) -> u32 {
        a ^ b
    }

    /// Field multiplication.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not a field element.
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        assert!((a as usize) < self.size && (b as usize) < self.size);
        if a == 0 || b == 0 {
            return 0;
        }
        let idx = (self.log[a as usize] as usize + self.log[b as usize] as usize) % self.order();
        self.antilog[idx]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn inv(&self, a: u32) -> u32 {
        assert!(a != 0, "inverse of zero is undefined");
        let idx = (self.order() - self.log[a as usize] as usize) % self.order();
        self.antilog[idx]
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn div(&self, a: u32, b: u32) -> u32 {
        self.mul(a, self.inv(b))
    }

    /// Exponentiation `a^e`.
    pub fn pow(&self, a: u32, e: u64) -> u32 {
        if a == 0 {
            return u32::from(e == 0);
        }
        let idx = (self.log[a as usize] as u64 * e) % self.order() as u64;
        self.antilog[idx as usize]
    }

    /// Evaluates a polynomial (coefficients little-endian, `poly[i]` is the
    /// coefficient of `x^i`) at field element `x` using Horner's scheme.
    pub fn poly_eval(&self, poly: &[u32], x: u32) -> u32 {
        let mut acc = 0u32;
        for &coeff in poly.iter().rev() {
            acc = self.add(self.mul(acc, x), coeff);
        }
        acc
    }
}

/// Multiplies two polynomials with coefficients in GF(2) (each coefficient is
/// 0 or 1, packed little-endian into `Vec<u8>`). Used for building BCH
/// generator polynomials as products of minimal polynomials.
pub fn poly_mul_gf2(a: &[u8], b: &[u8]) -> Vec<u8> {
    if a.is_empty() || b.is_empty() {
        return vec![];
    }
    let mut out = vec![0u8; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] ^= bj;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(Gf2m::new(1).is_err());
        assert!(Gf2m::new(17).is_err());
        for m in 2..=10 {
            let f = Gf2m::new(m).unwrap();
            assert_eq!(f.size(), 1 << m);
            assert_eq!(f.order(), (1 << m) - 1);
        }
    }

    #[test]
    fn antilog_table_covers_all_nonzero_elements() {
        let f = Gf2m::new(8).unwrap();
        let mut seen = vec![false; f.size()];
        for i in 0..f.order() {
            let x = f.alpha_pow(i as i64);
            assert!(!seen[x as usize], "duplicate power of alpha");
            seen[x as usize] = true;
        }
        assert!(!seen[0]);
        assert!(seen[1..].iter().all(|&s| s));
    }

    #[test]
    fn mul_inverse_roundtrip() {
        let f = Gf2m::new(6).unwrap();
        for a in 1..f.size() as u32 {
            assert_eq!(f.mul(a, f.inv(a)), 1);
            assert_eq!(f.div(f.mul(a, 7 % f.size() as u32), a), 7 % f.size() as u32);
        }
    }

    #[test]
    fn mul_is_commutative_and_distributive() {
        let f = Gf2m::new(4).unwrap();
        for a in 0..16u32 {
            for b in 0..16u32 {
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for c in 0..16u32 {
                    assert_eq!(
                        f.mul(a, f.add(b, c)),
                        f.add(f.mul(a, b), f.mul(a, c)),
                        "distributivity failed for {a},{b},{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = Gf2m::new(5).unwrap();
        for a in 1..f.size() as u32 {
            let mut acc = 1u32;
            for e in 0..10u64 {
                assert_eq!(f.pow(a, e), acc);
                acc = f.mul(acc, a);
            }
        }
    }

    #[test]
    fn poly_eval_and_gf2_poly_mul() {
        let f = Gf2m::new(3).unwrap();
        // p(x) = x^2 + 1 evaluated at alpha
        let alpha = f.alpha_pow(1);
        let val = f.poly_eval(&[1, 0, 1], alpha);
        assert_eq!(val, f.add(f.pow(alpha, 2), 1));

        // (x+1)(x+1) = x^2 + 1 over GF(2)
        assert_eq!(poly_mul_gf2(&[1, 1], &[1, 1]), vec![1, 0, 1]);
        // (x^2+x+1)(x+1) = x^3 + 1
        assert_eq!(poly_mul_gf2(&[1, 1, 1], &[1, 1]), vec![1, 0, 0, 1]);
    }

    #[test]
    fn primitive_element_has_full_order() {
        let f = Gf2m::new(8).unwrap();
        // alpha^(2^m-1) = 1 and alpha^i != 1 for 0 < i < 2^m-1.
        assert_eq!(f.pow(2, f.order() as u64), 1);
        for i in 1..f.order() {
            assert_ne!(f.pow(2, i as u64), 1, "alpha order divides {i}");
        }
    }
}
