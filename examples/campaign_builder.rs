//! Campaign-builder quickstart: run a Monte Carlo fault-injection campaign
//! through the `nvpim` facade's one-stop entry point — no internal crate
//! imports, no hand-assembled plan.
//!
//! The scheme axis is open-ended: any scheme in the compile-time registry
//! works, including the detection-only `ParityDetect` regime that landed
//! purely through the scheme-as-plugin path.
//!
//! Run with: `cargo run --release --example campaign_builder`

use nvpim::{Campaign, ProtectionScheme, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let campaign = Campaign::builder()
        .technology(Technology::SttMram)
        .scheme(ProtectionScheme::Unprotected)
        .scheme(ProtectionScheme::Ecim)
        .scheme(ProtectionScheme::ParityDetect)
        .rate_grid([1e-4, 1e-3])
        .trials(64)
        .seed(0x5eed)
        .build()?;

    println!(
        "running {} points x {} trials on the {} backend",
        campaign.plan().point_count(),
        campaign.plan().seeds_per_point,
        campaign.backend()
    );
    let report = campaign.run()?;

    println!(
        "{:<16} {:>8} {:>9} {:>8} {:>7}",
        "protection", "rate", "detected", "failed", "silent"
    );
    for point in &report.points {
        println!(
            "{:<16} {:>8.0e} {:>9} {:>8} {:>7}",
            point.protection,
            point.gate_error_rate,
            point.errors_detected,
            point.failed_trials,
            point.silent_failures
        );
    }
    println!(
        "total: {} trials, {} failed, {} exec errors",
        report.total_trials, report.total_failed_trials, report.total_exec_errors
    );
    Ok(())
}
