//! # nvpim-repro
//!
//! Workspace umbrella of the `nvpim` reproduction of *"On Error Correction
//! for Nonvolatile Processing-In-Memory"* (Cılasun et al., ISCA 2024).
//!
//! The stable public surface lives in the [`nvpim`] **facade crate**
//! (`crates/nvpim`): layer re-exports, the scheme registry and the
//! builder-style campaign entry point
//! (`Campaign::builder().technology(..).scheme(..).rate_grid(..).trials(..).build()?.run()`).
//! This umbrella package exists to host the workspace-level integration
//! tests and examples — all of which import `nvpim::…` and therefore
//! exercise the facade exactly as an external consumer would. See
//! `docs/api.md` for the API tour and the add-a-scheme walkthrough.
//!
//! # Examples
//!
//! ```
//! use nvpim::core::config::DesignConfig;
//! use nvpim::core::system::{compare, evaluate};
//! use nvpim::sim::technology::Technology;
//! use nvpim::workloads::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = Benchmark::MatMul { dim: 8 };
//! let netlist = bench.row_netlist();
//! let shape = bench.shape();
//! let tech = Technology::SttMram;
//!
//! let baseline = evaluate(&netlist, &shape, &DesignConfig::unprotected(tech))?;
//! let ecim = evaluate(&netlist, &shape, &DesignConfig::ecim(tech))?;
//! let overhead = compare(&ecim, &baseline);
//! println!("ECiM time overhead on mm8: {:.1}%", overhead.time_overhead_pct);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use nvpim::*;
