//! Telemetry invariants: instrumentation must observe the pipeline without
//! perturbing it.
//!
//! The load-bearing guarantee is byte-identity — a campaign's report JSON
//! is the same with a live telemetry sink as with [`Telemetry::disabled`],
//! on both execution backends, for the quick plan and the paper-scale
//! plan. The remaining tests pin the counter semantics (trials executed,
//! analytic clean settles, estimator redraws, compile-vs-cache-hit
//! classification) and — opt-in via `NVPIM_BENCH_GUARD=1` — the wall-clock
//! overhead budget.

use std::time::Instant;

use nvpim_sweep::{
    prepare_campaign, prepare_campaign_with_telemetry, EstimatorMode, Phase, ScheduleCache,
    SimBackend, SweepPlan, Telemetry, TelemetryCounter, TelemetrySnapshot,
};

/// Runs `plan` on `backend` with the given sink and returns the report
/// JSON plus the sink's final snapshot.
fn run_with_sink(
    plan: &SweepPlan,
    backend: SimBackend,
    telemetry: Telemetry,
) -> (String, TelemetrySnapshot) {
    let mut cache = ScheduleCache::new();
    let report = prepare_campaign_with_telemetry(plan, &mut cache, telemetry.clone())
        .expect("plan prepares")
        .with_backend(backend)
        .run()
        .expect("campaign runs");
    (report.to_json(), telemetry.snapshot())
}

/// Runs `plan` on `backend` through the plain (telemetry-free) path.
fn run_plain(plan: &SweepPlan, backend: SimBackend) -> String {
    let mut cache = ScheduleCache::new();
    prepare_campaign(plan, &mut cache)
        .expect("plan prepares")
        .with_backend(backend)
        .run()
        .expect("campaign runs")
        .to_json()
}

fn assert_identical_with_and_without_telemetry(plan: &SweepPlan) {
    for backend in [SimBackend::Scalar, SimBackend::Sliced] {
        let plain = run_plain(plan, backend);
        let (instrumented, snap) = run_with_sink(plan, backend, Telemetry::new());
        assert_eq!(
            plain, instrumented,
            "telemetry changed report bytes on {backend:?}"
        );
        assert_eq!(
            snap.counter(TelemetryCounter::TrialsExecuted),
            plan.trial_count(),
            "every trial must be counted exactly once on {backend:?}"
        );
        // A disabled sink is also byte-identical (and records nothing).
        let (disabled_run, disabled_snap) = run_with_sink(plan, backend, Telemetry::disabled());
        assert_eq!(plain, disabled_run);
        assert_eq!(disabled_snap.counter(TelemetryCounter::TrialsExecuted), 0);
    }
}

#[test]
fn quick_plan_reports_are_byte_identical_with_telemetry() {
    let mut plan = SweepPlan::quick();
    plan.seeds_per_point = 4;
    assert_identical_with_and_without_telemetry(&plan);
}

#[test]
fn paper_scale_reports_are_byte_identical_with_telemetry() {
    // The full paper-scale grid, at a trial count that keeps debug-mode CI
    // fast; the grid shape (workloads × technologies × protections ×
    // rates) is exactly `paper_scale`'s.
    let mut plan = SweepPlan::paper_scale();
    plan.seeds_per_point = 2;
    assert_identical_with_and_without_telemetry(&plan);
}

#[test]
fn phase_spans_and_counters_match_the_campaign_shape() {
    let mut plan = SweepPlan::quick();
    plan.seeds_per_point = 8;
    let (_, snap) = run_with_sink(&plan, SimBackend::Scalar, Telemetry::new());

    assert_eq!(snap.phase_count(Phase::PlanValidation), 1);
    assert!(snap.phase_count(Phase::Aggregation) >= 1);
    // Every schedule lookup is classified as exactly one of compile/hit,
    // and the span counts agree with the first-class counters.
    assert_eq!(
        snap.phase_count(Phase::ScheduleCompile),
        snap.counter(TelemetryCounter::ScheduleCompiles)
    );
    assert_eq!(
        snap.phase_count(Phase::ScheduleCacheHit),
        snap.counter(TelemetryCounter::ScheduleCacheHits)
    );
    assert!(snap.counter(TelemetryCounter::ScheduleCompiles) >= 1);

    // On the scalar backend every trial either settles analytically or
    // runs a gate-execution span — the two partitions cover the campaign.
    let trials = snap.counter(TelemetryCounter::TrialsExecuted);
    let settled = snap.counter(TelemetryCounter::CleanSettledTrials);
    assert_eq!(trials, plan.trial_count());
    assert!(settled <= trials);
    assert_eq!(
        snap.phase_count(Phase::GateExecution) + settled,
        trials,
        "scalar trials partition into gate-executed and clean-settled"
    );
    assert_eq!(
        snap.phase_count(Phase::AnalyticCleanSettle),
        settled,
        "a clean-settle span is recorded iff the fast path settled"
    );
    // The exact estimator never redraws.
    assert_eq!(snap.counter(TelemetryCounter::EstimatorRedraws), 0);
}

#[test]
fn stratified_campaigns_count_estimator_redraws() {
    let mut plan = SweepPlan::quick();
    plan.seeds_per_point = 4;
    plan.estimator = EstimatorMode::Stratified;
    for backend in [SimBackend::Scalar, SimBackend::Sliced] {
        let (_, snap) = run_with_sink(&plan, backend, Telemetry::new());
        assert_eq!(
            snap.counter(TelemetryCounter::EstimatorRedraws),
            plan.trial_count(),
            "every stratified trial is conditioned (redrawn) exactly once on {backend:?}"
        );
        assert!(snap.phase_count(Phase::EstimatorRedraw) > 0);
        assert_eq!(
            snap.counter(TelemetryCounter::CleanSettledTrials),
            0,
            "conditioned trials can never settle clean"
        );
    }
}

/// Opt-in wall-clock overhead gate (`NVPIM_BENCH_GUARD=1`, CI perf-guard
/// lane): an instrumented quick campaign must stay within 5% of the
/// telemetry-disabled run. Byte-identity above is asserted always; only
/// the timing comparison is gated, because it is meaningless under debug
/// contention on a loaded laptop.
#[test]
fn telemetry_overhead_stays_within_budget() {
    let mut plan = SweepPlan::quick();
    plan.seeds_per_point = 16;
    // Always exercised so the instrumented path stays covered…
    let (instrumented, _) = run_with_sink(&plan, SimBackend::Sliced, Telemetry::new());
    let plain = run_plain(&plan, SimBackend::Sliced);
    assert_eq!(plain, instrumented);
    // …but the timing assertion only runs in guard mode.
    if std::env::var("NVPIM_BENCH_GUARD").map(|v| v == "1") != Ok(true) {
        return;
    }
    let best = |f: &dyn Fn()| {
        (0..5)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed()
            })
            .min()
            .expect("five samples")
    };
    let disabled = best(&|| {
        run_plain(&plan, SimBackend::Sliced);
    });
    let enabled = best(&|| {
        run_with_sink(&plan, SimBackend::Sliced, Telemetry::new());
    });
    let budget = disabled.mul_f64(1.05) + std::time::Duration::from_millis(2);
    assert!(
        enabled <= budget,
        "instrumented run {enabled:?} exceeds 105% of the plain run {disabled:?}"
    );
}
