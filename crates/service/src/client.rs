//! A minimal blocking client for the NDJSON protocol, shared by
//! `nvpim-cli`, the harness binaries' `--connect` mode and the protocol
//! tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use serde::Value;

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running `nvpim-serviced`.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send(&mut self, request: &Value) -> std::io::Result<()> {
        let mut text = serde_json::to_string(request).expect("requests serialize");
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        self.writer.flush()
    }

    /// Sends a raw, possibly malformed line (testing hook).
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives one response line; `None` on clean EOF.
    ///
    /// # Errors
    ///
    /// Socket read failures, or a response that is not valid JSON.
    pub fn recv(&mut self) -> std::io::Result<Option<Value>> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        serde_json::from_str(line.trim_end())
            .map(Some)
            .map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("invalid response JSON: {e}"),
                )
            })
    }

    /// Sends a request and returns the first response line.
    ///
    /// # Errors
    ///
    /// I/O failures or an unexpectedly closed connection.
    pub fn request(&mut self, request: &Value) -> std::io::Result<Value> {
        self.send(request)?;
        self.recv()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }
}

/// Convenience constructor for request objects.
pub fn request(cmd: &str, fields: Vec<(String, Value)>) -> Value {
    let mut pairs = vec![("cmd".to_string(), Value::Str(cmd.to_string()))];
    pairs.extend(fields);
    Value::Object(pairs)
}
