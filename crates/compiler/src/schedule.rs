//! Mapping a netlist onto a single PiM row: column allocation, area
//! reclaims, spills, and the per-logic-level operation profile that the
//! timing/energy model of `nvpim-core` consumes (§II-B step 3 and §V).
//!
//! Every row of the fleet executes the same schedule on different data
//! (row-level parallelism), so one [`RowSchedule`] fully describes the
//! computation; the full-system model multiplies by the number of active
//! rows and arrays.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::alloc::{ReclaimEvent, ScratchAllocator};
use crate::layout::RowLayout;
use crate::netlist::{LogicOp, NetId, Netlist};

/// Errors produced while mapping a netlist onto a row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The live working set exceeds the row's scratch capacity and no value
    /// can be spilled.
    RowCapacityExceeded {
        /// Gate at which mapping failed.
        at_gate: usize,
        /// The row's value capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::RowCapacityExceeded { at_gate, capacity } => write!(
                f,
                "row scratch capacity of {capacity} values exceeded at gate {at_gate}"
            ),
        }
    }
}

impl std::error::Error for MapError {}

/// One gate operation with its physical column assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledGate {
    /// Index of the gate in the netlist (schedule order).
    pub index: usize,
    /// Logic level of the gate.
    pub level: usize,
    /// Operation.
    pub op: LogicOp,
    /// Columns of the input cells (the primary copy of each operand).
    pub input_cols: Vec<usize>,
    /// Columns of the output cells (`cells_per_value` of them).
    pub output_cols: Vec<usize>,
    /// For designs keeping redundant value copies (TRiM): entry `c` holds the
    /// input columns of copy `c` (entry 0 equals `input_cols`). Always has
    /// `cells_per_value` entries.
    pub input_cols_per_copy: Vec<Vec<usize>>,
}

/// Per-logic-level operation counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LevelProfile {
    /// NOR-family operations (including NOT).
    pub nor_ops: usize,
    /// THR operations.
    pub thr_ops: usize,
    /// Copy operations (fusable into multi-output NORs when the producer is
    /// a NOR and the design uses multi-output gates).
    pub copy_ops: usize,
    /// Copy operations whose producer is a NOR in the *same or an earlier*
    /// level, i.e. copies a multi-output design gets for free.
    pub fusable_copies: usize,
}

impl LevelProfile {
    /// Total gate operations in this level.
    pub fn total_ops(&self) -> usize {
        self.nor_ops + self.thr_ops + self.copy_ops
    }
}

/// The complete mapping of a netlist onto one PiM row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RowSchedule {
    /// The layout the schedule was produced for.
    pub layout: RowLayout,
    /// Scheduled gates in execution order.
    pub gates: Vec<ScheduledGate>,
    /// Per-level operation profile (index = logic level).
    pub level_profile: Vec<LevelProfile>,
    /// Area-reclaim events (Table IV counts their number).
    pub reclaims: Vec<ReclaimEvent>,
    /// Values written to another row because the scratch was full.
    pub spill_stores: usize,
    /// Spilled values read back.
    pub spill_loads: usize,
    /// Primary-input bits written into the row.
    pub input_writes: usize,
    /// Columns of the primary outputs at the end of execution (`None` when
    /// the output ended up spilled).
    pub output_cols: Vec<Option<usize>>,
}

impl RowSchedule {
    /// Number of area reclaim events.
    pub fn reclaim_count(&self) -> usize {
        self.reclaims.len()
    }

    /// Total cells recycled across all reclaim events.
    pub fn reclaimed_cells(&self) -> usize {
        self.reclaims.iter().map(|r| r.cells_freed).sum()
    }

    /// Number of gate operations (excluding constants).
    pub fn gate_op_count(&self) -> usize {
        self.level_profile.iter().map(LevelProfile::total_ops).sum()
    }

    /// Circuit depth in logic levels.
    pub fn depth(&self) -> usize {
        self.level_profile.len()
    }

    /// Number of primary output bits.
    pub fn output_bits(&self) -> usize {
        self.output_cols.len()
    }

    /// Whether the schedule can be executed directly on an array row for
    /// functional validation (no value was ever spilled to another row).
    pub fn is_directly_executable(&self) -> bool {
        self.spill_stores == 0
    }
}

#[derive(Debug)]
struct ResidentValue {
    cols: Vec<usize>,
    spilled: bool,
    last_use: usize,
}

/// Maps `netlist` onto a row described by `layout`.
///
/// Gates are scheduled in their netlist (creation) order, which preserves the
/// producer/consumer locality the greedy allocator relies on. Check
/// boundaries — the `level` field of every [`ScheduledGate`] — are assigned
/// greedily: consecutive gates share a level as long as none of them consumes
/// a value produced *within the same level*, which is exactly the
/// data-independence property the paper's logic-level-granularity error
/// checks require (§IV-E). Primary inputs are materialized (written into
/// scratch) immediately before
/// their first consumer and released after their last use, exactly like
/// intermediate values; this models operand staging uniformly across the
/// unprotected baseline and the protected designs.
///
/// # Errors
///
/// Returns [`MapError::RowCapacityExceeded`] when the live working set cannot
/// fit even with spilling (i.e. a single gate's operands exceed capacity).
pub fn map_netlist(netlist: &Netlist, layout: RowLayout) -> Result<RowSchedule, MapError> {
    // Assign each gate an execution level (check group): walking the gates
    // in creation order, a gate joins the current group unless one of its
    // operands was produced inside that group, in which case a new group
    // starts. Gates within a group are therefore never data-dependent.
    let mut levels = vec![0usize; netlist.gates.len()];
    {
        let mut current_level = 0usize;
        let mut produced_in_level: std::collections::HashSet<NetId> =
            std::collections::HashSet::new();
        for (idx, gate) in netlist.gates.iter().enumerate() {
            if gate.inputs.iter().any(|n| produced_in_level.contains(n)) {
                current_level += 1;
                produced_in_level.clear();
            }
            levels[idx] = current_level;
            produced_in_level.insert(gate.output);
        }
    }
    let depth = levels.iter().copied().max().unwrap_or(0);
    let order: Vec<usize> = (0..netlist.gates.len()).collect();

    // Use counts per net (each occurrence counts once).
    let mut remaining_uses: HashMap<NetId, usize> = HashMap::new();
    for gate in &netlist.gates {
        for &input in &gate.inputs {
            *remaining_uses.entry(input).or_insert(0) += 1;
        }
    }
    for &output in &netlist.outputs {
        *remaining_uses.entry(output).or_insert(0) += 1;
    }
    let last_uses = netlist.last_uses();

    // Which nets are NOR outputs (for copy fusability).
    let mut nor_outputs: HashMap<NetId, ()> = HashMap::new();

    let scratch_start = layout.metadata_columns;
    let mut allocator =
        ScratchAllocator::over_range(scratch_start..scratch_start + layout.scratch_columns());
    let cells_per_value = layout.cells_per_value.max(1);
    let value_capacity = layout.value_capacity();

    let primary_inputs: HashMap<NetId, ()> = netlist.inputs.iter().map(|&n| (n, ())).collect();

    let mut resident: HashMap<NetId, ResidentValue> = HashMap::new();
    let mut scheduled = Vec::with_capacity(netlist.gates.len());
    let mut level_profile = vec![LevelProfile::default(); depth + 1];
    let mut input_writes = 0usize;
    let mut spill_stores = 0usize;
    let mut spill_loads = 0usize;

    // Allocates `cells_per_value` cells, spilling resident values if needed.
    fn allocate_value(
        allocator: &mut ScratchAllocator,
        resident: &mut HashMap<NetId, ResidentValue>,
        pinned: &[NetId],
        gate_index: usize,
        cells: usize,
        capacity: usize,
        spill_stores: &mut usize,
    ) -> Result<Vec<usize>, MapError> {
        let mut cols = Vec::with_capacity(cells);
        for _ in 0..cells {
            loop {
                if let Some(col) = allocator.allocate(gate_index) {
                    cols.push(col);
                    break;
                }
                // Spill the resident, unpinned value with the most distant
                // last use.
                let victim = resident
                    .iter()
                    .filter(|(net, v)| !v.spilled && !v.cols.is_empty() && !pinned.contains(net))
                    .max_by_key(|(_, v)| v.last_use)
                    .map(|(&net, _)| net);
                let Some(victim) = victim else {
                    return Err(MapError::RowCapacityExceeded {
                        at_gate: gate_index,
                        capacity,
                    });
                };
                let value = resident.get_mut(&victim).expect("victim is resident");
                for &c in &value.cols {
                    allocator.release(c);
                }
                value.cols.clear();
                value.spilled = true;
                *spill_stores += 1;
            }
        }
        Ok(cols)
    }

    for &gate_index in &order {
        let gate = &netlist.gates[gate_index];
        let level = levels[gate_index];
        let is_constant = matches!(gate.op, LogicOp::Zero | LogicOp::One);

        // Materialize primary inputs and reload spilled operands.
        for &input in &gate.inputs {
            let needs_materialization = match resident.get(&input) {
                None => primary_inputs.contains_key(&input),
                Some(v) => v.spilled,
            };
            if needs_materialization {
                let reload = resident.get(&input).map(|v| v.spilled).unwrap_or(false);
                let cols = allocate_value(
                    &mut allocator,
                    &mut resident,
                    &gate.inputs,
                    gate_index,
                    cells_per_value,
                    value_capacity,
                    &mut spill_stores,
                )?;
                resident.insert(
                    input,
                    ResidentValue {
                        cols,
                        spilled: false,
                        last_use: *last_uses.get(&input).unwrap_or(&gate_index),
                    },
                );
                if reload {
                    spill_loads += 1;
                } else {
                    input_writes += 1;
                }
            }
        }

        // Allocate the output value.
        let output_cols = allocate_value(
            &mut allocator,
            &mut resident,
            &gate.inputs,
            gate_index,
            cells_per_value,
            value_capacity,
            &mut spill_stores,
        )?;
        let input_cols: Vec<usize> = gate.inputs.iter().map(|n| resident[n].cols[0]).collect();
        let input_cols_per_copy: Vec<Vec<usize>> = (0..cells_per_value)
            .map(|c| {
                gate.inputs
                    .iter()
                    .map(|n| {
                        let cols = &resident[n].cols;
                        cols[c.min(cols.len() - 1)]
                    })
                    .collect()
            })
            .collect();
        resident.insert(
            gate.output,
            ResidentValue {
                cols: output_cols.clone(),
                spilled: false,
                last_use: *last_uses.get(&gate.output).unwrap_or(&gate_index),
            },
        );

        if !is_constant {
            let profile = &mut level_profile[level];
            match gate.op {
                LogicOp::Nor => {
                    profile.nor_ops += 1;
                    nor_outputs.insert(gate.output, ());
                }
                LogicOp::Thr => profile.thr_ops += 1,
                LogicOp::Copy => {
                    profile.copy_ops += 1;
                    if gate
                        .inputs
                        .first()
                        .is_some_and(|n| nor_outputs.contains_key(n))
                    {
                        profile.fusable_copies += 1;
                    }
                }
                LogicOp::Zero | LogicOp::One => {}
            }
        }

        scheduled.push(ScheduledGate {
            index: gate_index,
            level,
            op: gate.op.clone(),
            input_cols,
            output_cols,
            input_cols_per_copy,
        });

        // Release operands whose last use was this gate.
        for &input in &gate.inputs {
            if let Some(uses) = remaining_uses.get_mut(&input) {
                *uses -= 1;
                if *uses == 0 {
                    if let Some(v) = resident.get_mut(&input) {
                        for &c in &v.cols {
                            allocator.release(c);
                        }
                        v.cols.clear();
                    }
                }
            }
        }
        // A gate output that is never used (and is not a primary output)
        // dies immediately.
        if remaining_uses.get(&gate.output).copied().unwrap_or(0) == 0 {
            if let Some(v) = resident.get_mut(&gate.output) {
                for &c in &v.cols {
                    allocator.release(c);
                }
                v.cols.clear();
            }
        }
    }

    let output_cols = netlist
        .outputs
        .iter()
        .map(|n| {
            resident
                .get(n)
                .filter(|v| !v.spilled && !v.cols.is_empty())
                .map(|v| v.cols[0])
        })
        .collect();

    Ok(RowSchedule {
        layout,
        gates: scheduled,
        level_profile,
        reclaims: allocator.reclaims().to_vec(),
        spill_stores,
        spill_loads,
        input_writes,
        output_cols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    fn adder_netlist(width: usize) -> Netlist {
        let mut b = CircuitBuilder::new();
        let a = b.input_word(width);
        let c = b.input_word(width);
        let (sum, carry) = b.ripple_add(&a, &c, None);
        b.mark_output_word(&sum);
        b.mark_output(carry);
        b.finish()
    }

    #[test]
    fn maps_small_adder_without_spills() {
        let netlist = adder_netlist(8);
        let schedule = map_netlist(&netlist, RowLayout::unprotected(256)).unwrap();
        assert!(schedule.is_directly_executable());
        assert_eq!(schedule.output_bits(), 9);
        assert_eq!(schedule.gates.len(), netlist.gates.len());
        assert!(schedule.gate_op_count() > 50);
        assert!(schedule.depth() >= 8);
        assert_eq!(schedule.input_writes, 16);
        assert!(schedule.output_cols.iter().all(Option::is_some));
    }

    #[test]
    fn smaller_scratch_causes_more_reclaims() {
        let netlist = adder_netlist(16);
        let wide = map_netlist(&netlist, RowLayout::unprotected(256)).unwrap();
        let narrow = map_netlist(
            &netlist,
            RowLayout {
                total_columns: 256,
                metadata_columns: 200,
                cells_per_value: 1,
            },
        )
        .unwrap();
        assert!(narrow.reclaim_count() > wide.reclaim_count());
    }

    #[test]
    fn redundant_copies_increase_reclaims() {
        let netlist = adder_netlist(16);
        let single = map_netlist(&netlist, RowLayout::unprotected(128)).unwrap();
        let triple = map_netlist(
            &netlist,
            RowLayout {
                total_columns: 128,
                metadata_columns: 0,
                cells_per_value: 3,
            },
        )
        .unwrap();
        assert!(
            triple.reclaim_count() > single.reclaim_count(),
            "3 cells/value must reclaim more ({} vs {})",
            triple.reclaim_count(),
            single.reclaim_count()
        );
    }

    #[test]
    fn column_assignments_stay_inside_scratch_region() {
        let netlist = adder_netlist(8);
        let layout = RowLayout {
            total_columns: 256,
            metadata_columns: 40,
            cells_per_value: 1,
        };
        let schedule = map_netlist(&netlist, layout).unwrap();
        for g in &schedule.gates {
            for &c in g.input_cols.iter().chain(&g.output_cols) {
                assert!((40..256).contains(&c), "column {c} outside scratch");
            }
        }
    }

    #[test]
    fn trim_layout_assigns_three_output_cells() {
        let netlist = adder_netlist(4);
        let layout = RowLayout {
            total_columns: 256,
            metadata_columns: 0,
            cells_per_value: 3,
        };
        let schedule = map_netlist(&netlist, layout).unwrap();
        for g in &schedule.gates {
            assert_eq!(g.output_cols.len(), 3);
        }
    }

    #[test]
    fn fusable_copies_detected_for_xor() {
        // XOR = NOR + Copy(NOR) + THR: the copy is fusable.
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let out = b.xor(x, y);
        b.mark_output(out);
        let netlist = b.finish();
        let schedule = map_netlist(&netlist, RowLayout::unprotected(64)).unwrap();
        let total_copies: usize = schedule.level_profile.iter().map(|l| l.copy_ops).sum();
        let fusable: usize = schedule
            .level_profile
            .iter()
            .map(|l| l.fusable_copies)
            .sum();
        assert_eq!(total_copies, 1);
        assert_eq!(fusable, 1);
    }

    #[test]
    fn per_level_profile_sums_to_gate_count() {
        let netlist = adder_netlist(8);
        let schedule = map_netlist(&netlist, RowLayout::unprotected(256)).unwrap();
        let from_profile = schedule.gate_op_count();
        let non_constant = netlist
            .gates
            .iter()
            .filter(|g| !matches!(g.op, LogicOp::Zero | LogicOp::One))
            .count();
        assert_eq!(from_profile, non_constant);
    }

    #[test]
    fn tiny_row_spills_instead_of_failing() {
        let netlist = adder_netlist(8);
        let layout = RowLayout {
            total_columns: 12,
            metadata_columns: 0,
            cells_per_value: 1,
        };
        let schedule = map_netlist(&netlist, layout).unwrap();
        assert!(schedule.spill_stores > 0);
        assert!(!schedule.is_directly_executable());
    }

    #[test]
    fn impossible_capacity_reports_error() {
        let netlist = adder_netlist(8);
        let layout = RowLayout {
            total_columns: 3,
            metadata_columns: 0,
            cells_per_value: 1,
        };
        match map_netlist(&netlist, layout) {
            Err(MapError::RowCapacityExceeded { capacity, .. }) => assert_eq!(capacity, 3),
            other => panic!("expected capacity error, got {other:?}"),
        }
    }
}
