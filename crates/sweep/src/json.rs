//! Parsing [`SweepPlan`]s back from their canonical JSON encoding.
//!
//! The stub `serde` has no derive-based deserialization, so the wire format
//! the service accepts is decoded by hand here. The decoder accepts exactly
//! the shape [`SweepPlan::canonical_json`] emits (externally-tagged enum
//! variants, declaration-order fields — field order is *not* required on
//! input), which makes `parse(plan.canonical_json())` an identity:
//! round-tripped plans hash to the same content digest.

use std::str::FromStr;

use nvpim_core::config::{GateStyle, ProtectionScheme};
use nvpim_sim::technology::Technology;
use nvpim_workloads::Benchmark;
use serde::Value;

use crate::plan::{CampaignKind, EstimatorMode, ProtectionConfig, SweepPlan, SweepWorkload};
use crate::SweepError;

fn parse_err(context: &str, detail: impl std::fmt::Display) -> SweepError {
    SweepError::Parse(format!("{context}: {detail}"))
}

fn field<'v>(obj: &'v Value, key: &str, context: &str) -> Result<&'v Value, SweepError> {
    obj.get(key)
        .ok_or_else(|| parse_err(context, format!("missing field `{key}`")))
}

fn usize_field(obj: &Value, key: &str, context: &str) -> Result<usize, SweepError> {
    field(obj, key, context)?
        .as_u64()
        .map(|u| u as usize)
        .ok_or_else(|| {
            parse_err(
                context,
                format!("field `{key}` must be a non-negative integer"),
            )
        })
}

fn u64_field(obj: &Value, key: &str, context: &str) -> Result<u64, SweepError> {
    field(obj, key, context)?.as_u64().ok_or_else(|| {
        parse_err(
            context,
            format!("field `{key}` must be a non-negative integer"),
        )
    })
}

/// Decodes one externally-tagged enum value: either a bare string (unit
/// variant) or a single-key object `{"Variant": payload}`.
fn variant<'v>(
    value: &'v Value,
    context: &str,
) -> Result<(&'v str, Option<&'v Value>), SweepError> {
    if let Some(name) = value.as_str() {
        return Ok((name, None));
    }
    match value.as_object() {
        Some([(name, payload)]) => Ok((name.as_str(), Some(payload))),
        _ => Err(parse_err(
            context,
            "expected a variant name string or a single-key {\"Variant\": ...} object",
        )),
    }
}

fn parse_benchmark(value: &Value) -> Result<Benchmark, SweepError> {
    let ctx = "workload benchmark";
    let (name, payload) = variant(value, ctx)?;
    let payload = payload.ok_or_else(|| parse_err(ctx, "benchmark variants carry parameters"))?;
    match name {
        "MatMul" => Ok(Benchmark::MatMul {
            dim: usize_field(payload, "dim", ctx)?,
        }),
        "Mnist" => Ok(Benchmark::Mnist {
            weight_bits: usize_field(payload, "weight_bits", ctx)?,
        }),
        "Fft" => Ok(Benchmark::Fft {
            points: usize_field(payload, "points", ctx)?,
        }),
        other => Err(parse_err(ctx, format!("unknown benchmark `{other}`"))),
    }
}

fn parse_workload(value: &Value) -> Result<SweepWorkload, SweepError> {
    let ctx = "workload";
    let (name, payload) = variant(value, ctx)?;
    fn need<'v>(payload: Option<&'v Value>, name: &str) -> Result<&'v Value, SweepError> {
        payload.ok_or_else(|| parse_err("workload", format!("variant `{name}` carries parameters")))
    }
    match name {
        "Mac" => {
            let p = need(payload, name)?;
            Ok(SweepWorkload::Mac {
                acc_bits: usize_field(p, "acc_bits", ctx)?,
                mul_bits: usize_field(p, "mul_bits", ctx)?,
            })
        }
        "RippleAdd" => Ok(SweepWorkload::RippleAdd {
            bits: usize_field(need(payload, name)?, "bits", ctx)?,
        }),
        "Multiplier" => Ok(SweepWorkload::Multiplier {
            bits: usize_field(need(payload, name)?, "bits", ctx)?,
        }),
        "Benchmark" => Ok(SweepWorkload::Benchmark(parse_benchmark(need(
            payload, name,
        )?)?)),
        other => Err(parse_err(
            ctx,
            format!("unknown workload variant `{other}`"),
        )),
    }
}

fn parse_protection(value: &Value) -> Result<ProtectionConfig, SweepError> {
    let ctx = "protection";
    let scheme = field(value, "scheme", ctx)?
        .as_str()
        .ok_or_else(|| parse_err(ctx, "field `scheme` must be a string"))?;
    let gate_style = field(value, "gate_style", ctx)?
        .as_str()
        .ok_or_else(|| parse_err(ctx, "field `gate_style` must be a string"))?;
    Ok(ProtectionConfig {
        scheme: ProtectionScheme::from_str(scheme).map_err(|e| parse_err(ctx, e))?,
        gate_style: GateStyle::from_str(gate_style).map_err(|e| parse_err(ctx, e))?,
    })
}

impl SweepPlan {
    /// Decodes a plan from a parsed JSON [`Value`].
    ///
    /// # Errors
    ///
    /// [`SweepError::Parse`] naming the offending field. The decoded plan is
    /// **not** validated — call [`SweepPlan::validate`] before running it.
    pub fn from_json_value(value: &Value) -> Result<Self, SweepError> {
        let ctx = "plan";
        let workloads = field(value, "workloads", ctx)?
            .as_array()
            .ok_or_else(|| parse_err(ctx, "`workloads` must be an array"))?
            .iter()
            .map(parse_workload)
            .collect::<Result<Vec<_>, _>>()?;
        let technologies = field(value, "technologies", ctx)?
            .as_array()
            .ok_or_else(|| parse_err(ctx, "`technologies` must be an array"))?
            .iter()
            .map(|v| {
                v.as_str()
                    .ok_or_else(|| parse_err("technology", "expected a string"))
                    .and_then(|s| Technology::from_str(s).map_err(|e| parse_err("technology", e)))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let protections = field(value, "protections", ctx)?
            .as_array()
            .ok_or_else(|| parse_err(ctx, "`protections` must be an array"))?
            .iter()
            .map(parse_protection)
            .collect::<Result<Vec<_>, _>>()?;
        let gate_error_rates = field(value, "gate_error_rates", ctx)?
            .as_array()
            .ok_or_else(|| parse_err(ctx, "`gate_error_rates` must be an array"))?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| parse_err(ctx, "`gate_error_rates` entries must be numbers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        // Optional: pre-estimator plans (and every Exact-mode plan, which
        // omits the key to keep content digests stable) default to Exact.
        let estimator = match value.get("estimator") {
            None => EstimatorMode::default(),
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| parse_err(ctx, "`estimator` must be a string"))?;
                EstimatorMode::from_str(name).map_err(|e| parse_err(ctx, e))?
            }
        };
        // Optional: pre-accuracy plans (and every error-kind plan, which
        // omits the key) default to the error campaign type.
        let kind = match value.get("kind") {
            None => CampaignKind::default(),
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| parse_err(ctx, "`kind` must be a string"))?;
                CampaignKind::from_str(name).map_err(|e| parse_err(ctx, e))?
            }
        };
        // Optional: omitted (the canonical encoding of 0.0) means no
        // permanent defects.
        let stuck_at_rate = match value.get("stuck_at_rate") {
            None => 0.0,
            Some(v) => v
                .as_f64()
                .ok_or_else(|| parse_err(ctx, "`stuck_at_rate` must be a number"))?,
        };
        Ok(SweepPlan {
            workloads,
            technologies,
            protections,
            gate_error_rates,
            seeds_per_point: u64_field(value, "seeds_per_point", ctx)?,
            campaign_seed: u64_field(value, "campaign_seed", ctx)?,
            estimator,
            kind,
            stuck_at_rate,
        })
    }

    /// Decodes a plan from JSON text.
    ///
    /// # Errors
    ///
    /// [`SweepError::Parse`] on malformed JSON or an unrecognized shape.
    pub fn from_json_str(text: &str) -> Result<Self, SweepError> {
        let value = serde_json::from_str(text).map_err(|e| parse_err("plan JSON", e))?;
        Self::from_json_value(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(plan: &SweepPlan) {
        let parsed = SweepPlan::from_json_str(&plan.canonical_json()).unwrap();
        assert_eq!(parsed.canonical_json(), plan.canonical_json());
        assert_eq!(parsed.content_digest(), plan.content_digest());
    }

    #[test]
    fn canonical_json_roundtrips_through_the_parser() {
        roundtrip(&SweepPlan::quick());
        roundtrip(&SweepPlan::paper_scale());
        let mut exotic = SweepPlan::quick();
        exotic.workloads = vec![
            SweepWorkload::Multiplier { bits: 4 },
            SweepWorkload::Benchmark(Benchmark::MatMul { dim: 8 }),
            SweepWorkload::Benchmark(Benchmark::Mnist { weight_bits: 2 }),
            SweepWorkload::Benchmark(Benchmark::Fft { points: 16 }),
        ];
        exotic.protections = vec![ProtectionConfig::TRIM_SINGLE_OUTPUT];
        roundtrip(&exotic);
        let mut stratified = SweepPlan::quick();
        stratified.estimator = EstimatorMode::Stratified;
        roundtrip(&stratified);
        roundtrip(&SweepPlan::accuracy_quick());
    }

    #[test]
    fn kind_and_stuck_at_fields_parse_and_default() {
        let plan = SweepPlan::from_json_str(&SweepPlan::quick().canonical_json()).unwrap();
        assert_eq!(plan.kind, CampaignKind::Error);
        assert_eq!(plan.stuck_at_rate, 0.0);

        let accuracy = SweepPlan::accuracy_quick();
        let parsed = SweepPlan::from_json_str(&accuracy.canonical_json()).unwrap();
        assert_eq!(parsed.kind, CampaignKind::Accuracy);
        assert_eq!(parsed.stuck_at_rate, accuracy.stuck_at_rate);

        let bad = accuracy.canonical_json().replace("accuracy", "fidelity");
        assert!(SweepPlan::from_json_str(&bad)
            .unwrap_err()
            .to_string()
            .contains("unknown campaign kind"));
    }

    #[test]
    fn estimator_field_parses_and_defaults_to_exact() {
        let base = SweepPlan::quick().canonical_json();
        let plan = SweepPlan::from_json_str(&base).unwrap();
        assert_eq!(plan.estimator, EstimatorMode::Exact);
        let mut stratified = SweepPlan::quick();
        stratified.estimator = EstimatorMode::Stratified;
        let text = stratified.canonical_json();
        assert!(text.contains("\"estimator\""));
        let parsed = SweepPlan::from_json_str(&text).unwrap();
        assert_eq!(parsed.estimator, EstimatorMode::Stratified);
        let bad = text.replace("stratified", "importance");
        assert!(SweepPlan::from_json_str(&bad)
            .unwrap_err()
            .to_string()
            .contains("unknown estimator mode"));
    }

    #[test]
    fn display_labels_parse_too() {
        let text = r#"{
            "workloads": [{"RippleAdd": {"bits": 8}}],
            "technologies": ["STT-MRAM", "ReRAM"],
            "protections": [{"scheme": "ECiM", "gate_style": "m-o"}],
            "gate_error_rates": [0.001, 1],
            "seeds_per_point": 4,
            "campaign_seed": 7
        }"#;
        let plan = SweepPlan::from_json_str(text).unwrap();
        assert_eq!(
            plan.technologies,
            vec![Technology::SttMram, Technology::ReRam]
        );
        assert_eq!(plan.protections, vec![ProtectionConfig::ECIM]);
        assert_eq!(plan.gate_error_rates, vec![0.001, 1.0]);
        plan.validate().unwrap();
    }

    #[test]
    fn malformed_plans_are_rejected_with_context() {
        let cases: &[(&str, &str)] = &[
            ("not json at all", "plan JSON"),
            (r#"{"workloads": 3}"#, "`workloads` must be an array"),
            (
                r#"{"workloads": [{"Mac": {"acc_bits": 8}}]}"#,
                "missing field `mul_bits`",
            ),
            (
                r#"{"workloads": [{"Warp": {}}]}"#,
                "unknown workload variant",
            ),
            (
                concat!(
                    r#"{"workloads": [], "technologies": ["Optane"], "protections": [],"#,
                    r#" "gate_error_rates": [], "seeds_per_point": 1, "campaign_seed": 1}"#
                ),
                "unknown technology",
            ),
        ];
        for (text, needle) in cases {
            let err = SweepPlan::from_json_str(text).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "error for {text:?} should mention {needle:?}, got: {msg}"
            );
        }
    }
}
