//! Full-table coverage for `sep::figure6_cases`: every injection site of
//! the paper's Fig. 6 example, in order, with its exact error counts and
//! correction outcome — plus a semantic cross-check of the A-matrix
//! assignment the redundant-output rows encode.

use nvpim_core::sep::{figure6_cases, Figure6Site};

/// The expected table: (site, errors in level, errors at end w/o checks,
/// corrected by logic-level checks).
fn expected_table() -> Vec<(Figure6Site, usize, usize, bool)> {
    vec![
        // Main-computation outputs o1..o3. A level-1 error propagates into
        // the final output and leaves two parity bits stale if unchecked
        // (3 visible errors); an error in o3 is already the final output.
        (Figure6Site::MainOutput(1), 1, 3, true),
        (Figure6Site::MainOutput(2), 1, 3, true),
        (Figure6Site::MainOutput(3), 1, 1, true),
        // Redundant outputs r_{parity,gate}: each feeds exactly one parity
        // bit, so a single error corrupts that parity bit and nothing else.
        (
            Figure6Site::RedundantOutput { parity: 1, gate: 1 },
            1,
            1,
            true,
        ),
        (
            Figure6Site::RedundantOutput { parity: 1, gate: 2 },
            1,
            1,
            true,
        ),
        (
            Figure6Site::RedundantOutput { parity: 2, gate: 1 },
            1,
            1,
            true,
        ),
        (
            Figure6Site::RedundantOutput { parity: 2, gate: 3 },
            1,
            1,
            true,
        ),
        (
            Figure6Site::RedundantOutput { parity: 3, gate: 2 },
            1,
            1,
            true,
        ),
        (
            Figure6Site::RedundantOutput { parity: 3, gate: 3 },
            1,
            1,
            true,
        ),
    ]
}

#[test]
fn figure6_case_table_matches_the_paper_exactly() {
    let cases = figure6_cases();
    let expected = expected_table();
    assert_eq!(cases.len(), expected.len(), "one row per injection site");
    for (case, (site, in_level, at_end, corrected)) in cases.iter().zip(expected) {
        assert_eq!(case.site, site, "site order must match the paper's table");
        assert_eq!(
            case.errors_in_level, in_level,
            "{site:?}: errors visible at the error's own level"
        );
        assert_eq!(
            case.errors_at_end_without_checks, at_end,
            "{site:?}: errors at circuit end without checks"
        );
        assert_eq!(
            case.corrected_by_level_checks, corrected,
            "{site:?}: logic-level checking verdict"
        );
    }
}

#[test]
fn figure6_outcome_strings_describe_each_site() {
    let cases = figure6_cases();
    for case in &cases {
        match case.site {
            Figure6Site::MainOutput(3) => assert_eq!(case.outcome, "error in out"),
            Figure6Site::MainOutput(gate) => {
                assert!(
                    case.outcome.contains(&format!("(o{gate})")),
                    "o{gate} outcome names its gate: {}",
                    case.outcome
                );
                assert!(
                    case.outcome.contains("two parity bits"),
                    "level-1 outcomes mention the stale parity bits: {}",
                    case.outcome
                );
            }
            Figure6Site::RedundantOutput { parity, .. } => {
                assert_eq!(case.outcome, format!("error in p{parity}"));
            }
        }
    }
}

#[test]
fn figure6_redundant_sites_encode_the_a_matrix_assignment() {
    // Fig. 6's Hamming(7, 4)-style assignment: p1 protects {o1, o2},
    // p2 protects {o1, o3}, p3 protects {o2, o3}. The redundant-output
    // sites r_{ij} must enumerate exactly those (parity, gate) pairs —
    // i.e. each parity bit receives redundant copies from exactly the two
    // gates it protects, and each gate feeds exactly two parity bits (the
    // reason a single gate error can never corrupt more than one copy of
    // any protected value).
    let assignment: &[(usize, [usize; 2])] = &[(1, [1, 2]), (2, [1, 3]), (3, [2, 3])];
    let sites: Vec<(usize, usize)> = figure6_cases()
        .iter()
        .filter_map(|c| match c.site {
            Figure6Site::RedundantOutput { parity, gate } => Some((parity, gate)),
            Figure6Site::MainOutput(_) => None,
        })
        .collect();
    assert_eq!(sites.len(), 6, "three parity bits x two protected gates");
    for &(parity, gates) in assignment {
        for gate in gates {
            assert!(
                sites.contains(&(parity, gate)),
                "missing redundant site r_{{{parity},{gate}}}"
            );
        }
    }
    // Every gate feeds exactly two parity bits.
    for gate in 1..=3usize {
        let fan_out = sites.iter().filter(|&&(_, g)| g == gate).count();
        assert_eq!(fan_out, 2, "gate o{gate} must feed exactly two parity bits");
    }
}
