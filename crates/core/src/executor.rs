//! Functional execution of protected PiM computation (the behavioral
//! simulator of §V, extended with the ECiM / TRiM protocols of §IV).
//!
//! [`ProtectedExecutor`] drives a compiled [`RowSchedule`] on a simulated
//! [`PimArray`] row while maintaining the scheme's metadata *in memory*:
//!
//! * **ECiM** — every gate produces a redundant second output (multi-output
//!   gates) or an explicit copy (single-output gates) in the parity region,
//!   which is folded into the running parity bits of the current logic level
//!   by in-array two-step XORs. At every logic-level boundary the external
//!   [`EcimChecker`] reads the level's outputs plus the parity bits,
//!   computes the syndrome, and writes corrections back.
//! * **TRiM** — every gate drives three output cells (or three single-output
//!   gates execute in different partitions); at every logic-level boundary
//!   the [`TrimChecker`] majority-votes the copies and writes corrections
//!   back.
//! * **Unprotected** — gates execute as scheduled with no checks (the
//!   baseline, and the demonstration of why protection is needed).
//!
//! Because the metadata operations are real in-array gate operations on the
//! same simulated array, injected faults can strike the main computation,
//! the parity pipeline, the redundant copies *or* idle cells — and the
//! executor's reports show whether the final outputs survived, which is how
//! the SEP guarantee is validated end to end.
//!
//! # Hot-path design
//!
//! The Monte Carlo sweep runs this executor millions of times, so the
//! steady state must not allocate: gate operations go through
//! [`PimArray::execute_gate_with`] with column slices (no per-gate `GateOp`
//! construction), and all per-run working memory lives in a caller-owned
//! [`ExecScratch`] that [`ProtectedExecutor::run_with_scratch`] reuses
//! across trials. [`ProtectedExecutor::run`] is the convenience wrapper
//! that allocates a fresh scratch per call.

use nvpim_compiler::netlist::{LogicOp, Netlist};
use nvpim_compiler::schedule::{RowSchedule, ScheduledGate};
use nvpim_ecc::gf2::BitVec;
use nvpim_ecc::hamming::HammingCode;
use nvpim_sim::array::{ArrayError, PimArray};
use nvpim_sim::gates::GateKind;
use serde::{Deserialize, Serialize};

use crate::checker::{EcimChecker, LevelDecode, TrimChecker};
use crate::config::{DesignConfig, GateStyle, ProtectionScheme};

/// Errors raised by protected execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtectedExecError {
    /// The schedule was produced for a different layout than the config's.
    LayoutMismatch,
    /// The schedule contains spills and cannot run on a single row.
    NotDirectlyExecutable,
    /// The input value count does not match the netlist.
    InputArityMismatch {
        /// Inputs expected.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// The array is too small for the configured layout.
    ArrayTooSmall,
    /// An array-level error occurred.
    Array(ArrayError),
}

impl std::fmt::Display for ProtectedExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtectedExecError::LayoutMismatch => {
                write!(f, "schedule layout does not match the design configuration")
            }
            ProtectedExecError::NotDirectlyExecutable => {
                write!(f, "schedule spilled values and cannot run on a single row")
            }
            ProtectedExecError::InputArityMismatch { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            ProtectedExecError::ArrayTooSmall => write!(f, "array is smaller than the layout"),
            ProtectedExecError::Array(e) => write!(f, "array error: {e}"),
        }
    }
}

impl std::error::Error for ProtectedExecError {}

impl From<ArrayError> for ProtectedExecError {
    fn from(e: ArrayError) -> Self {
        ProtectedExecError::Array(e)
    }
}

/// Outcome of one protected run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectedRunReport {
    /// Primary output values read back from the array.
    pub outputs: Vec<bool>,
    /// Number of Checker invocations (one per logic level / codeword chunk).
    pub checks: u64,
    /// Checks in which an error was detected.
    pub errors_detected: u64,
    /// Data bits corrected and written back to the array.
    pub corrections_written_back: u64,
    /// Checks whose error pattern exceeded the correction capability.
    pub uncorrectable: u64,
    /// In-array gate operations spent on metadata (parity copies, XOR
    /// updates, redundant computation) rather than main computation.
    pub metadata_gate_ops: u64,
}

/// Reusable per-run working memory for [`ProtectedExecutor::run_with_scratch`].
///
/// Every collection is cleared (never shrunk) at the start of a run, so a
/// scratch held by a trial arena reaches a steady state where protected
/// execution performs no heap allocation at all. One scratch serves runs of
/// different netlists, schedules and protection schemes back to back.
#[derive(Debug, Default)]
pub struct ExecScratch {
    /// Net id → primary-input position (dense, `u32::MAX` = not an input),
    /// rebuilt per run. Dense vectors instead of hash maps: the per-gate
    /// lookups in the trial hot path become plain indexed loads.
    input_positions: Vec<u32>,
    /// Primary inputs already written into the array this run (by net id).
    materialized: Vec<bool>,
    /// Nets consumed by at least one gate or marked as primary outputs.
    used_nets: Vec<bool>,
    /// Output-column assembly buffer for one gate operation.
    out_cols: Vec<usize>,
    /// Extra (metadata) output columns for one gate operation.
    extra_cols: Vec<usize>,
    /// ECiM: data column of each codeword position in the current chunk.
    chunk_cols: Vec<usize>,
    /// ECiM: which of ping/pong holds each running parity bit.
    parity_in_pong: Vec<bool>,
    /// Column lists for Checker transfers (data/parity or copy planes).
    cols_a: Vec<usize>,
    cols_b: Vec<usize>,
    cols_c: Vec<usize>,
    /// Bit buffers for Checker transfers.
    bits_a: BitVec,
    bits_b: BitVec,
    bits_c: BitVec,
    /// TRiM: majority-vote result buffer.
    bits_vote: BitVec,
    /// TRiM: the three copy columns of every gate in the current level.
    level_outputs: Vec<[usize; 3]>,
}

impl ExecScratch {
    /// Creates an empty scratch (equivalent to `ExecScratch::default()`).
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, netlist: &Netlist) {
        let nets = netlist.net_count;
        self.input_positions.clear();
        self.input_positions.resize(nets, u32::MAX);
        for (pos, &net) in netlist.inputs.iter().enumerate() {
            self.input_positions[net] = pos as u32;
        }
        self.materialized.clear();
        self.materialized.resize(nets, false);
        self.used_nets.clear();
        self.used_nets.resize(nets, false);
        for gate in &netlist.gates {
            for &input in &gate.inputs {
                self.used_nets[input] = true;
            }
        }
        for &output in &netlist.outputs {
            self.used_nets[output] = true;
        }
    }
}

/// Executes schedules under a [`DesignConfig`]'s protection scheme.
#[derive(Debug, Clone)]
pub struct ProtectedExecutor {
    config: DesignConfig,
    code: HammingCode,
}

impl ProtectedExecutor {
    /// Creates an executor for the given design point.
    pub fn new(config: DesignConfig) -> Self {
        let code = config.hamming_code();
        Self { config, code }
    }

    /// The design configuration.
    pub fn config(&self) -> &DesignConfig {
        &self.config
    }

    /// The Hamming code used for ECiM parity.
    pub fn code(&self) -> &HammingCode {
        &self.code
    }

    /// Runs `schedule` (compiled from `netlist` with `config.row_layout()`)
    /// in row `row` of `array` on the given primary inputs, with a fresh
    /// scratch allocation. Hot loops should prefer
    /// [`Self::run_with_scratch`].
    ///
    /// # Errors
    ///
    /// See [`ProtectedExecError`].
    pub fn run(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        let mut scratch = ExecScratch::default();
        self.run_with_scratch(netlist, schedule, array, row, inputs, &mut scratch)
    }

    /// [`Self::run`] with caller-owned working memory: the steady-state
    /// Monte Carlo path, allocation-free once `scratch` has warmed up.
    ///
    /// # Errors
    ///
    /// See [`ProtectedExecError`].
    pub fn run_with_scratch(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
        scratch: &mut ExecScratch,
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        if schedule.layout != self.config.row_layout() {
            return Err(ProtectedExecError::LayoutMismatch);
        }
        if !schedule.is_directly_executable() {
            return Err(ProtectedExecError::NotDirectlyExecutable);
        }
        if inputs.len() != netlist.inputs.len() {
            return Err(ProtectedExecError::InputArityMismatch {
                expected: netlist.inputs.len(),
                got: inputs.len(),
            });
        }
        if array.cols() < self.config.array_columns || row >= array.rows() {
            return Err(ProtectedExecError::ArrayTooSmall);
        }
        scratch.prepare(netlist);
        match self.config.scheme {
            ProtectionScheme::Unprotected => {
                self.run_unprotected(netlist, schedule, array, row, inputs, scratch)
            }
            ProtectionScheme::Ecim => self.run_ecim(netlist, schedule, array, row, inputs, scratch),
            ProtectionScheme::Trim => self.run_trim(netlist, schedule, array, row, inputs, scratch),
        }
    }

    /// Convenience wrapper: compiles `netlist` for this design's layout and
    /// runs it on a fresh standard array, returning the report.
    ///
    /// # Errors
    ///
    /// Propagates mapping and execution errors as `ProtectedExecError`
    /// (mapping failures surface as [`ProtectedExecError::ArrayTooSmall`]).
    pub fn compile_and_run(
        &self,
        netlist: &Netlist,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        let schedule = nvpim_compiler::schedule::map_netlist(netlist, self.config.row_layout())
            .map_err(|_| ProtectedExecError::ArrayTooSmall)?;
        self.run(netlist, &schedule, array, row, inputs)
    }

    // ------------------------------------------------------------------

    fn materialize_inputs(
        &self,
        netlist: &Netlist,
        sg: &ScheduledGate,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
        scratch: &mut ExecScratch,
    ) -> Result<(), ProtectedExecError> {
        let gate_inputs = &netlist.gates[sg.index].inputs;
        for (i, &net) in gate_inputs.iter().enumerate() {
            let pos = scratch.input_positions[net];
            if pos != u32::MAX && !scratch.materialized[net] {
                scratch.materialized[net] = true;
                // Write the value into every copy this design keeps.
                for copy in 0..self.config.cells_per_value() {
                    let col = sg.input_cols_per_copy[copy.min(sg.input_cols_per_copy.len() - 1)][i];
                    array.write_cell(row, col, inputs[pos as usize])?;
                }
            }
        }
        Ok(())
    }

    fn read_outputs(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
    ) -> Result<Vec<bool>, ProtectedExecError> {
        let mut outputs = Vec::with_capacity(schedule.output_cols.len());
        for (i, col) in schedule.output_cols.iter().enumerate() {
            match col {
                Some(c) => outputs.push(array.read_cell(row, *c)?),
                None => {
                    let net = netlist.outputs[i];
                    let pos = netlist
                        .inputs
                        .iter()
                        .position(|&n| n == net)
                        .expect("non-resident output must be a primary input");
                    outputs.push(inputs[pos]);
                }
            }
        }
        Ok(outputs)
    }

    /// Executes one scheduled gate into its primary output columns plus
    /// `extra` metadata columns, assembling the output list in `out_buf`
    /// (no per-gate allocation).
    fn execute_plain_gate(
        &self,
        sg: &ScheduledGate,
        array: &mut PimArray,
        row: usize,
        extra: &[usize],
        out_buf: &mut Vec<usize>,
    ) -> Result<(), ProtectedExecError> {
        let outputs: &[usize] = if extra.is_empty() {
            // Common case: the schedule's own columns, no assembly needed.
            &sg.output_cols
        } else {
            out_buf.clear();
            out_buf.extend_from_slice(&sg.output_cols);
            out_buf.extend_from_slice(extra);
            out_buf
        };
        match sg.op {
            LogicOp::Zero | LogicOp::One => {
                let value = sg.op == LogicOp::One;
                for &col in outputs {
                    array.write_cell(row, col, value)?;
                }
            }
            LogicOp::Nor => {
                let kind = GateKind::Nor {
                    outputs: outputs.len() as u8,
                };
                array.execute_gate_with(kind, row, &sg.input_cols, outputs)?;
            }
            LogicOp::Copy => {
                // A copy drives each destination with a separate single-output
                // operation (there is no multi-output copy primitive).
                for &col in outputs {
                    array.execute_gate_with(GateKind::Copy, row, &sg.input_cols, &[col])?;
                }
            }
            LogicOp::Thr => {
                for &col in outputs {
                    array.execute_gate_with(GateKind::THR, row, &sg.input_cols, &[col])?;
                }
            }
        }
        Ok(())
    }

    fn run_unprotected(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
        scratch: &mut ExecScratch,
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        for sg in &schedule.gates {
            self.materialize_inputs(netlist, sg, array, row, inputs, scratch)?;
            self.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols)?;
        }
        Ok(ProtectedRunReport {
            outputs: self.read_outputs(netlist, schedule, array, row, inputs)?,
            checks: 0,
            errors_detected: 0,
            corrections_written_back: 0,
            uncorrectable: 0,
            metadata_gate_ops: 0,
        })
    }

    // ------------------------------------------------------------------
    // ECiM
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn ecim_flush_chunk(
        array: &mut PimArray,
        row: usize,
        checker: &mut EcimChecker<'_>,
        scratch: &mut ExecScratch,
        ping_base: usize,
        pong_base: usize,
        errors_detected: &mut u64,
        corrections_written_back: &mut u64,
        uncorrectable: &mut u64,
    ) -> Result<(), ProtectedExecError> {
        if scratch.chunk_cols.is_empty() {
            return Ok(());
        }
        // Conventional memory read of the level outputs and parity bits.
        scratch.cols_b.clear();
        scratch.cols_b.extend(
            scratch
                .parity_in_pong
                .iter()
                .enumerate()
                .map(|(i, &in_pong)| {
                    if in_pong {
                        pong_base + i
                    } else {
                        ping_base + i
                    }
                }),
        );
        array.read_bits_into(row, &scratch.chunk_cols, &mut scratch.bits_a)?;
        array.read_bits_into(row, &scratch.cols_b, &mut scratch.bits_b)?;
        match checker.decode_level(&scratch.bits_a, &scratch.bits_b) {
            LevelDecode::Clean => {}
            LevelDecode::CorrectedData { position } => {
                *errors_detected += 1;
                // A single-error code flips exactly one data bit.
                let col = scratch.chunk_cols[position];
                array.write_cell(row, col, !scratch.bits_a.get(position))?;
                *corrections_written_back += 1;
            }
            LevelDecode::CorrectedMeta => {
                *errors_detected += 1;
            }
            LevelDecode::Uncorrectable => {
                *errors_detected += 1;
                *uncorrectable += 1;
            }
        }
        scratch.chunk_cols.clear();
        Ok(())
    }

    /// Resets the running parity cells at the start of a level chunk: one
    /// row-parallel preset over the contiguous ping+pong region instead of
    /// `2 × parity_bits` individual writes.
    fn ecim_reset_parity(
        array: &mut PimArray,
        row: usize,
        scratch: &mut ExecScratch,
        ping_base: usize,
        pong_base: usize,
    ) -> Result<(), ProtectedExecError> {
        let parity_bits = scratch.parity_in_pong.len();
        debug_assert_eq!(pong_base, ping_base + parity_bits);
        array.preset_cells(row, ping_base..pong_base + parity_bits, false)?;
        scratch.parity_in_pong.iter_mut().for_each(|p| *p = false);
        Ok(())
    }

    fn run_ecim(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
        scratch: &mut ExecScratch,
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        let parity_bits = self.code.parity_bits();
        let k = self.code.k();
        // Metadata region layout (columns 0..metadata_columns):
        //   [0, parity_bits)                ping parity cells
        //   [parity_bits, 2*parity)         pong parity cells
        //   [2*parity, 2*parity + 2)        XOR working cells (s1, s2)
        //   [2*parity + 2, 3*parity + 2)    independent redundant-copy cells
        //                                   (one r_i per parity bit, §IV-E:
        //                                   an error in a given r may affect
        //                                   only a single parity bit)
        let ping_base = 0usize;
        let pong_base = parity_bits;
        let work_s1 = 2 * parity_bits;
        let work_s2 = 2 * parity_bits + 1;
        let r_base = 2 * parity_bits + 2;
        assert!(
            self.config.metadata_columns() >= r_base + parity_bits,
            "ECiM metadata region too small for the parity pipeline"
        );
        scratch.parity_in_pong.clear();
        scratch.parity_in_pong.resize(parity_bits, false);
        scratch.chunk_cols.clear();

        let mut checker = EcimChecker::new(&self.code);
        let mut metadata_gate_ops = 0u64;
        let mut corrections_written_back = 0u64;
        let mut errors_detected = 0u64;
        let mut uncorrectable = 0u64;

        Self::ecim_reset_parity(array, row, scratch, ping_base, pong_base)?;

        let mut current_level = schedule.gates.first().map(|g| g.level).unwrap_or(0);

        for sg in &schedule.gates {
            let gate = &netlist.gates[sg.index];
            if sg.level != current_level {
                Self::ecim_flush_chunk(
                    array,
                    row,
                    &mut checker,
                    scratch,
                    ping_base,
                    pong_base,
                    &mut errors_detected,
                    &mut corrections_written_back,
                    &mut uncorrectable,
                )?;
                Self::ecim_reset_parity(array, row, scratch, ping_base, pong_base)?;
                current_level = sg.level;
            }
            self.materialize_inputs(netlist, sg, array, row, inputs, scratch)?;

            let is_constant = matches!(sg.op, LogicOp::Zero | LogicOp::One);
            if is_constant || !scratch.used_nets[gate.output] {
                self.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols)?;
                continue;
            }

            // Codeword position of this gate output within the current chunk.
            let position = scratch.chunk_cols.len();

            // Parity bits this codeword position participates in.
            let mask = self.code.parity_update_mask(position.min(k - 1));

            // Execute the gate, producing one *independent* redundant copy
            // r_i per touched parity bit (Fig. 6: each XOR processes its own
            // r input, so a single error in any r corrupts only one parity
            // bit). Multi-output designs drive all copies from the same gate
            // in one step; single-output designs use explicit copy
            // operations.
            match self.config.gate_style {
                GateStyle::MultiOutput => {
                    scratch.extra_cols.clear();
                    scratch
                        .extra_cols
                        .extend(mask.iter_ones().map(|bit| r_base + bit));
                    let touched = scratch.extra_cols.len() as u64;
                    self.execute_plain_gate(
                        sg,
                        array,
                        row,
                        &scratch.extra_cols,
                        &mut scratch.out_cols,
                    )?;
                    metadata_gate_ops += touched;
                }
                GateStyle::SingleOutput => {
                    self.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols)?;
                    // Each r_i is produced by re-executing the gate into its
                    // own cell (a separate single-output operation), so an
                    // error in the primary output never leaks into the parity
                    // metadata and vice versa.
                    for bit in mask.iter_ones() {
                        let kind = match sg.op {
                            LogicOp::Nor => GateKind::NOR2,
                            LogicOp::Thr => GateKind::THR,
                            LogicOp::Copy => GateKind::Copy,
                            LogicOp::Zero | LogicOp::One => unreachable!("constants handled above"),
                        };
                        array.execute_gate_with(kind, row, &sg.input_cols, &[r_base + bit])?;
                        metadata_gate_ops += 1;
                    }
                }
            }

            // Fold each r_i into its parity bit with the in-memory two-step
            // XOR (NOR22 then THR).
            for bit in mask.iter_ones() {
                let r_cell = r_base + bit;
                let src = if scratch.parity_in_pong[bit] {
                    pong_base + bit
                } else {
                    ping_base + bit
                };
                let dst = if scratch.parity_in_pong[bit] {
                    ping_base + bit
                } else {
                    pong_base + bit
                };
                // s1 = s2 = NOR(p, r); p' = THR(p, r, s1, s2) = p XOR r —
                // the fused two-step XOR primitive (identical fault sites
                // and cost accounting to the two separate gate calls).
                array.execute_xor2_step(row, src, r_cell, work_s1, work_s2, dst)?;
                scratch.parity_in_pong[bit] = !scratch.parity_in_pong[bit];
                metadata_gate_ops += 2;
            }

            scratch.chunk_cols.push(sg.output_cols[0]);
            if scratch.chunk_cols.len() == k {
                Self::ecim_flush_chunk(
                    array,
                    row,
                    &mut checker,
                    scratch,
                    ping_base,
                    pong_base,
                    &mut errors_detected,
                    &mut corrections_written_back,
                    &mut uncorrectable,
                )?;
                Self::ecim_reset_parity(array, row, scratch, ping_base, pong_base)?;
            }
        }
        Self::ecim_flush_chunk(
            array,
            row,
            &mut checker,
            scratch,
            ping_base,
            pong_base,
            &mut errors_detected,
            &mut corrections_written_back,
            &mut uncorrectable,
        )?;

        Ok(ProtectedRunReport {
            outputs: self.read_outputs(netlist, schedule, array, row, inputs)?,
            checks: checker.checks(),
            errors_detected,
            corrections_written_back,
            uncorrectable,
            metadata_gate_ops,
        })
    }

    // ------------------------------------------------------------------
    // TRiM
    // ------------------------------------------------------------------

    fn trim_flush_level(
        array: &mut PimArray,
        row: usize,
        checker: &mut TrimChecker,
        scratch: &mut ExecScratch,
        errors_detected: &mut u64,
        corrections_written_back: &mut u64,
    ) -> Result<(), ProtectedExecError> {
        if scratch.level_outputs.is_empty() {
            return Ok(());
        }
        scratch.cols_a.clear();
        scratch.cols_b.clear();
        scratch.cols_c.clear();
        for cols in &scratch.level_outputs {
            scratch.cols_a.push(cols[0]);
            scratch.cols_b.push(cols[1]);
            scratch.cols_c.push(cols[2]);
        }
        array.read_bits_into(row, &scratch.cols_a, &mut scratch.bits_a)?;
        array.read_bits_into(row, &scratch.cols_b, &mut scratch.bits_b)?;
        array.read_bits_into(row, &scratch.cols_c, &mut scratch.bits_c)?;
        let dissent = checker.vote_level_into(
            &scratch.bits_a,
            &scratch.bits_b,
            &scratch.bits_c,
            &mut scratch.bits_vote,
        );
        if dissent {
            *errors_detected += 1;
            // Write the voted value back into every copy that disagreed —
            // word-parallel diff scans, touching only mismatching bits.
            let voted = &scratch.bits_vote;
            for (copy_idx, bits) in [&scratch.bits_a, &scratch.bits_b, &scratch.bits_c]
                .into_iter()
                .enumerate()
            {
                for i in bits.diff_ones(voted) {
                    let col = scratch.level_outputs[i][copy_idx];
                    array.write_cell(row, col, voted.get(i))?;
                    *corrections_written_back += 1;
                }
            }
        }
        scratch.level_outputs.clear();
        Ok(())
    }

    fn run_trim(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
        scratch: &mut ExecScratch,
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        let mut checker = TrimChecker::new(self.config.data_bits());
        let mut metadata_gate_ops = 0u64;
        let mut corrections_written_back = 0u64;
        let mut errors_detected = 0u64;

        scratch.level_outputs.clear();
        let mut current_level = schedule.gates.first().map(|g| g.level).unwrap_or(0);

        for sg in &schedule.gates {
            let gate = &netlist.gates[sg.index];
            if sg.level != current_level {
                Self::trim_flush_level(
                    array,
                    row,
                    &mut checker,
                    scratch,
                    &mut errors_detected,
                    &mut corrections_written_back,
                )?;
                current_level = sg.level;
            }
            self.materialize_inputs(netlist, sg, array, row, inputs, scratch)?;

            let is_constant = matches!(sg.op, LogicOp::Zero | LogicOp::One);
            if is_constant || !scratch.used_nets[gate.output] {
                self.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols)?;
                continue;
            }

            match self.config.gate_style {
                GateStyle::MultiOutput => {
                    // One 3-output gate produces the value and both copies.
                    self.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols)?;
                    metadata_gate_ops += 2;
                }
                GateStyle::SingleOutput => {
                    // Three independent single-output gates, each reading its
                    // own copy of the operands (separate partitions).
                    for copy in 0..3 {
                        let inputs_for_copy =
                            &sg.input_cols_per_copy[copy.min(sg.input_cols_per_copy.len() - 1)];
                        let kind = match sg.op {
                            LogicOp::Nor => GateKind::NOR2,
                            LogicOp::Thr => GateKind::THR,
                            LogicOp::Copy => GateKind::Copy,
                            LogicOp::Zero | LogicOp::One => unreachable!("constants handled above"),
                        };
                        array.execute_gate_with(
                            kind,
                            row,
                            inputs_for_copy,
                            &[sg.output_cols[copy]],
                        )?;
                        if copy > 0 {
                            metadata_gate_ops += 1;
                        }
                    }
                }
            }
            scratch
                .level_outputs
                .push([sg.output_cols[0], sg.output_cols[1], sg.output_cols[2]]);
        }
        Self::trim_flush_level(
            array,
            row,
            &mut checker,
            scratch,
            &mut errors_detected,
            &mut corrections_written_back,
        )?;

        Ok(ProtectedRunReport {
            outputs: self.read_outputs(netlist, schedule, array, row, inputs)?,
            checks: checker.checks(),
            errors_detected,
            corrections_written_back,
            uncorrectable: 0,
            metadata_gate_ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvpim_compiler::builder::CircuitBuilder;
    use nvpim_compiler::schedule::map_netlist;
    use nvpim_sim::fault::{ErrorRates, FaultInjector};
    use nvpim_sim::technology::Technology;

    fn to_bits(value: u64, width: usize) -> Vec<bool> {
        (0..width).map(|i| (value >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    fn mac_netlist() -> Netlist {
        let mut b = CircuitBuilder::new();
        let acc = b.input_word(8);
        let x = b.input_word(4);
        let y = b.input_word(4);
        let out = b.mac(&acc, &x, &y);
        b.mark_output_word(&out);
        b.finish()
    }

    fn run_clean(config: DesignConfig) -> (ProtectedRunReport, u64) {
        let netlist = mac_netlist();
        let executor = ProtectedExecutor::new(config.clone());
        let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
        let mut array = PimArray::standard(config.technology);
        let mut inputs = to_bits(100, 8);
        inputs.extend(to_bits(9, 4));
        inputs.extend(to_bits(13, 4));
        let report = executor
            .run(&netlist, &schedule, &mut array, 0, &inputs)
            .unwrap();
        let expected = 100 + 9 * 13;
        (report, expected)
    }

    #[test]
    fn unprotected_execution_is_functionally_correct_without_faults() {
        let (report, expected) = run_clean(DesignConfig::unprotected(Technology::SttMram));
        assert_eq!(from_bits(&report.outputs), expected);
        assert_eq!(report.checks, 0);
        assert_eq!(report.metadata_gate_ops, 0);
    }

    #[test]
    fn ecim_execution_is_functionally_correct_without_faults() {
        let (report, expected) = run_clean(DesignConfig::ecim(Technology::SttMram));
        assert_eq!(from_bits(&report.outputs), expected);
        assert!(report.checks > 0);
        assert_eq!(report.errors_detected, 0);
        assert_eq!(report.corrections_written_back, 0);
        assert!(report.metadata_gate_ops > 0);
    }

    #[test]
    fn ecim_single_output_style_also_correct() {
        let (report, expected) =
            run_clean(DesignConfig::ecim(Technology::ReRam).with_single_output_gates());
        assert_eq!(from_bits(&report.outputs), expected);
        assert_eq!(report.errors_detected, 0);
    }

    #[test]
    fn trim_execution_is_functionally_correct_without_faults() {
        for style in [GateStyle::MultiOutput, GateStyle::SingleOutput] {
            let mut config = DesignConfig::trim(Technology::SotSheMram);
            config.gate_style = style;
            let (report, expected) = run_clean(config);
            assert_eq!(from_bits(&report.outputs), expected, "{style}");
            assert!(report.checks > 0);
            assert_eq!(report.errors_detected, 0);
        }
    }

    #[test]
    fn shortened_hamming_design_is_functionally_correct() {
        // The Hamming(71, 64) design point used by the trial-throughput
        // benchmark must execute cleanly end to end.
        let config = DesignConfig::ecim(Technology::SttMram).with_hamming_data_bits(64);
        let executor = ProtectedExecutor::new(config.clone());
        assert_eq!(executor.code().n(), 71);
        assert_eq!(executor.code().k(), 64);
        let (report, expected) = run_clean(config);
        assert_eq!(from_bits(&report.outputs), expected);
        assert!(report.checks > 0);
        assert_eq!(report.errors_detected, 0);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_runs() {
        // One warmed-up scratch running back-to-back trials must produce
        // exactly the reports that fresh per-run scratches produce, for
        // every scheme — the arena-reset purity contract.
        let netlist = mac_netlist();
        let mut inputs = to_bits(33, 8);
        inputs.extend(to_bits(14, 4));
        inputs.extend(to_bits(6, 4));
        let rates = ErrorRates {
            gate: 0.002,
            ..ErrorRates::NONE
        };
        for config in [
            DesignConfig::unprotected(Technology::SttMram),
            DesignConfig::ecim(Technology::SttMram),
            DesignConfig::trim(Technology::SttMram),
        ] {
            let executor = ProtectedExecutor::new(config.clone());
            let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
            let mut scratch = ExecScratch::new();
            let mut reused_array = PimArray::standard(config.technology);
            for seed in 0..6u64 {
                reused_array.reset_for_trial(config.technology, rates, seed);
                let reused = executor
                    .run_with_scratch(
                        &netlist,
                        &schedule,
                        &mut reused_array,
                        0,
                        &inputs,
                        &mut scratch,
                    )
                    .unwrap();
                let mut fresh_array = PimArray::standard(config.technology)
                    .with_fault_injector(FaultInjector::new(rates, seed));
                let fresh = executor
                    .run(&netlist, &schedule, &mut fresh_array, 0, &inputs)
                    .unwrap();
                assert_eq!(reused, fresh, "{} seed {seed}", config.label());
                assert_eq!(
                    reused_array.fault_injector().log(),
                    fresh_array.fault_injector().log(),
                    "{} seed {seed}: fault logs must match",
                    config.label()
                );
            }
        }
    }

    #[test]
    fn ecim_corrects_computation_errors_that_corrupt_the_unprotected_run() {
        // A modest gate error rate corrupts unprotected results but ECiM's
        // logic-level checks repair them. We pick a rate low enough that at
        // most one error lands per logic level (the SEP operating regime).
        let netlist = mac_netlist();
        let mut inputs = to_bits(77, 8);
        inputs.extend(to_bits(11, 4));
        inputs.extend(to_bits(7, 4));
        let expected = 77 + 11 * 7;
        // Low enough that (with these fixed seeds) at most one error lands in
        // any logic level — the SEP operating regime.
        let rates = ErrorRates {
            gate: 0.0003,
            ..ErrorRates::NONE
        };

        let mut ecim_failures = 0;
        let mut detections = 0;
        for seed in 0..20u64 {
            let config = DesignConfig::ecim(Technology::SttMram);
            let executor = ProtectedExecutor::new(config.clone());
            let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
            let mut array = PimArray::standard(config.technology)
                .with_fault_injector(FaultInjector::new(rates, seed));
            let report = executor
                .run(&netlist, &schedule, &mut array, 0, &inputs)
                .unwrap();
            detections += report.errors_detected;
            if from_bits(&report.outputs) != expected {
                ecim_failures += 1;
            }
        }
        assert!(detections > 0, "fault injection should trigger detections");
        assert_eq!(
            ecim_failures, 0,
            "ECiM must correct single errors per level"
        );
    }

    #[test]
    fn trim_corrects_computation_errors() {
        let netlist = mac_netlist();
        let mut inputs = to_bits(5, 8);
        inputs.extend(to_bits(15, 4));
        inputs.extend(to_bits(15, 4));
        let expected = 5 + 15 * 15;
        let rates = ErrorRates {
            gate: 0.002,
            ..ErrorRates::NONE
        };
        let mut failures = 0;
        let mut detections = 0;
        for seed in 100..120u64 {
            let config = DesignConfig::trim(Technology::SttMram).with_single_output_gates();
            let executor = ProtectedExecutor::new(config.clone());
            let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
            let mut array = PimArray::standard(config.technology)
                .with_fault_injector(FaultInjector::new(rates, seed));
            let report = executor
                .run(&netlist, &schedule, &mut array, 0, &inputs)
                .unwrap();
            detections += report.errors_detected;
            if from_bits(&report.outputs) != expected {
                failures += 1;
            }
        }
        assert!(detections > 0);
        assert_eq!(failures, 0, "TRiM must correct single errors per level");
    }

    #[test]
    fn unprotected_execution_is_corrupted_by_the_same_error_regime() {
        let netlist = mac_netlist();
        let mut inputs = to_bits(200, 8);
        inputs.extend(to_bits(12, 4));
        inputs.extend(to_bits(3, 4));
        let expected = 200 + 12 * 3;
        let rates = ErrorRates {
            gate: 0.002,
            ..ErrorRates::NONE
        };
        let mut failures = 0;
        for seed in 0..20u64 {
            let config = DesignConfig::unprotected(Technology::SttMram);
            let executor = ProtectedExecutor::new(config.clone());
            let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
            let mut array = PimArray::standard(config.technology)
                .with_fault_injector(FaultInjector::new(rates, seed));
            let report = executor
                .run(&netlist, &schedule, &mut array, 0, &inputs)
                .unwrap();
            if from_bits(&report.outputs) != expected {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "the unprotected baseline should be corrupted at least once over 20 seeds"
        );
    }

    #[test]
    fn layout_mismatch_is_rejected() {
        let netlist = mac_netlist();
        let config = DesignConfig::ecim(Technology::SttMram);
        let executor = ProtectedExecutor::new(config);
        // Schedule compiled for the *unprotected* layout.
        let schedule = map_netlist(
            &netlist,
            DesignConfig::unprotected(Technology::SttMram).row_layout(),
        )
        .unwrap();
        let mut array = PimArray::standard(Technology::SttMram);
        let err = executor.run(&netlist, &schedule, &mut array, 0, &[false; 16]);
        assert_eq!(err, Err(ProtectedExecError::LayoutMismatch));
    }

    #[test]
    fn wrong_input_count_is_rejected() {
        let netlist = mac_netlist();
        let config = DesignConfig::unprotected(Technology::ReRam);
        let executor = ProtectedExecutor::new(config.clone());
        let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
        let mut array = PimArray::standard(Technology::ReRam);
        let err = executor.run(&netlist, &schedule, &mut array, 0, &[true; 2]);
        assert!(matches!(
            err,
            Err(ProtectedExecError::InputArityMismatch {
                expected: 16,
                got: 2
            })
        ));
    }
}
