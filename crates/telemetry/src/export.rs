//! Prometheus-style text exposition for telemetry snapshots.
//!
//! The output is the classic text format (`# HELP` / `# TYPE` headers,
//! one `name{labels} value` sample per line) rendered with a stable,
//! deterministic ordering: fixed phase/counter enumeration order first,
//! then labeled counters and histograms in lexicographic key order.
//! Histograms export as Prometheus *summaries* (deterministic
//! p50/p95/p99 quantiles plus `_sum`/`_count`), which keeps scrape
//! payloads small while preserving the numbers operators actually read.

use crate::phase::{Counter, Phase};
use crate::TelemetrySnapshot;
use std::fmt::Write as _;

/// Metric-name prefix for every exported series.
const PREFIX: &str = "nvpim";

/// Renders a snapshot as Prometheus-style text exposition.
#[must_use]
pub fn render_prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();

    let _ = writeln!(
        out,
        "# HELP {PREFIX}_phase_spans_total Completed span count per pipeline phase."
    );
    let _ = writeln!(out, "# TYPE {PREFIX}_phase_spans_total counter");
    for phase in Phase::ALL {
        let _ = writeln!(
            out,
            "{PREFIX}_phase_spans_total{{phase=\"{}\"}} {}",
            phase.name(),
            snapshot.phase_count(phase)
        );
    }

    let _ = writeln!(
        out,
        "# HELP {PREFIX}_phase_nanos_total Accumulated wall-clock nanoseconds per pipeline phase."
    );
    let _ = writeln!(out, "# TYPE {PREFIX}_phase_nanos_total counter");
    for phase in Phase::ALL {
        let _ = writeln!(
            out,
            "{PREFIX}_phase_nanos_total{{phase=\"{}\"}} {}",
            phase.name(),
            snapshot.phase_nanos(phase)
        );
    }

    for counter in Counter::ALL {
        let name = counter.name();
        let _ = writeln!(out, "# HELP {PREFIX}_{name}_total Event counter.");
        let _ = writeln!(out, "# TYPE {PREFIX}_{name}_total counter");
        let _ = writeln!(out, "{PREFIX}_{name}_total {}", snapshot.counter(counter));
    }

    if !snapshot.labeled.is_empty() {
        let _ = writeln!(out, "# HELP {PREFIX}_labeled_total Labeled event counters.");
        let _ = writeln!(out, "# TYPE {PREFIX}_labeled_total counter");
        for (key, value) in &snapshot.labeled {
            let _ = writeln!(out, "{PREFIX}_{key} {value}");
        }
    }

    for (name, hist) in &snapshot.histograms {
        let _ = writeln!(
            out,
            "# HELP {PREFIX}_{name} Latency summary (log2-bucketed; quantiles are bucket upper bounds)."
        );
        let _ = writeln!(out, "# TYPE {PREFIX}_{name} summary");
        for (label, q) in [("0.5", 0.50f64), ("0.95", 0.95), ("0.99", 0.99)] {
            let _ = writeln!(
                out,
                "{PREFIX}_{name}{{quantile=\"{label}\"}} {}",
                hist.quantile(q).unwrap_or(0)
            );
        }
        let _ = writeln!(out, "{PREFIX}_{name}_sum {}", hist.sum());
        let _ = writeln!(out, "{PREFIX}_{name}_count {}", hist.count());
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn exposition_contains_core_series_and_is_deterministic() {
        let tel = Telemetry::new();
        tel.record_span(Phase::GateExecution, 4, 4000);
        tel.add(Counter::CleanSettledTrials, 9);
        tel.add_labeled("trials_by_scheme", "scheme", "trim", 12);
        tel.record_histogram("queue_wait_ns", 900);
        let text = tel.render_prometheus();

        assert!(text.contains("# TYPE nvpim_phase_spans_total counter"));
        assert!(text.contains("nvpim_phase_spans_total{phase=\"gate_execution\"} 4"));
        assert!(text.contains("nvpim_phase_nanos_total{phase=\"gate_execution\"} 4000"));
        assert!(text.contains("nvpim_clean_settled_trials_total 9"));
        assert!(text.contains("nvpim_trials_by_scheme{scheme=\"trim\"} 12"));
        assert!(text.contains("nvpim_queue_wait_ns{quantile=\"0.5\"} 1023"));
        assert!(text.contains("nvpim_queue_wait_ns_count 1"));
        // Deterministic: rendering twice yields identical bytes.
        assert_eq!(text, tel.render_prometheus());
    }

    #[test]
    fn empty_snapshot_still_exports_all_fixed_series() {
        let text = Telemetry::new().render_prometheus();
        for phase in Phase::ALL {
            assert!(text.contains(&format!("phase=\"{}\"", phase.name())));
        }
        for counter in Counter::ALL {
            assert!(text.contains(&format!("nvpim_{}_total 0", counter.name())));
        }
    }
}
