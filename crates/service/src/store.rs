//! Content-addressed report store.
//!
//! Reports are keyed by the submitted plan's [content digest] — the SHA-256
//! of its canonical JSON. Because a campaign report is a pure function of
//! its plan (the engine's determinism guarantee), a digest hit can be
//! served *byte-identically* with zero recompute: no schedule compilation,
//! no trials, not even re-serialization (the stored JSON string itself is
//! shared out behind an `Arc`).
//!
//! With a persistence directory ([`ReportStore::persistent`]) the store
//! gains a durable tier: every insert also lands on disk as
//! `<digest>.json` (temp-file write + atomic rename; content is a 64-hex
//! SHA-256 header line followed by the report bytes), and a memory miss
//! falls through to disk, where the header is re-verified against a fresh
//! hash of the body before the bytes are trusted. A file that fails
//! verification — bit rot, a torn write that somehow survived the rename
//! discipline, or deliberate corruption — is deleted and counted, and the
//! lookup misses: determinism means the recomputed report is
//! byte-identical anyway. Memory capacity bounds only the RAM tier; the
//! disk tier keeps everything.
//!
//! [content digest]: nvpim_sweep::SweepPlan::content_digest

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nvpim_sweep::digest::{sha256, to_hex};

/// Default report-count cap used by [`ReportStore::new`].
pub const DEFAULT_REPORT_CAPACITY: usize = 1024;

/// In-memory content-addressed store of finished report JSON documents,
/// bounded to `capacity` reports: beyond the cap the oldest-inserted
/// report is evicted (reports dominate daemon memory — job records are
/// bounded separately by `ServiceConfig::max_tracked_jobs`). An evicted
/// plan simply recomputes on resubmission; determinism guarantees the
/// recomputed bytes are identical.
#[derive(Debug)]
pub struct ReportStore {
    entries: HashMap<String, Arc<String>>,
    /// Digests in insertion order, for FIFO eviction.
    order: VecDeque<String>,
    capacity: usize,
    /// Durable tier directory; `None` keeps the store purely in memory.
    dir: Option<PathBuf>,
    hits: u64,
    misses: u64,
    corrupt_discarded: u64,
}

impl Default for ReportStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ReportStore {
    /// An empty store with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_REPORT_CAPACITY)
    }

    /// An empty store evicting beyond `capacity` reports.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            dir: None,
            hits: 0,
            misses: 0,
            corrupt_discarded: 0,
        }
    }

    /// A store backed by a durable on-disk tier under `dir` (created if
    /// absent). Memory capacity bounds only the RAM tier; inserts also
    /// land on disk and memory misses fall through to disk.
    pub fn persistent(capacity: usize, dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut store = Self::with_capacity(capacity);
        store.dir = Some(dir);
        Ok(store)
    }

    /// The durable tier directory, when persistence is enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Looks up the report for a plan digest, counting a hit or miss.
    /// On a memory miss a persistent store consults the disk tier,
    /// integrity-verifying the file before trusting (and re-caching) it.
    pub fn get(&mut self, digest: &str) -> Option<Arc<String>> {
        if let Some(report) = self.entries.get(digest) {
            self.hits += 1;
            return Some(Arc::clone(report));
        }
        if let Some(report) = self.load_from_disk(digest) {
            self.hits += 1;
            let report = Arc::new(report);
            self.cache_in_memory(digest.to_string(), Arc::clone(&report));
            return Some(report);
        }
        self.misses += 1;
        None
    }

    /// Stores a finished report under its plan digest, evicting the
    /// oldest-inserted report when the memory tier is at capacity and
    /// writing through to the disk tier when one is configured.
    ///
    /// Determinism makes double-insertion benign (both writers hold the
    /// same bytes), so last-write-wins needs no further coordination.
    pub fn insert(&mut self, digest: String, report: Arc<String>) {
        if let Err(err) = self.write_to_disk(&digest, &report) {
            // Degrade to memory-only for this entry: the journal's `done`
            // record is written after this, so on replay the job simply
            // resumes/recomputes.
            eprintln!("nvpim-serviced: report store write for {digest} failed: {err}");
        }
        self.cache_in_memory(digest, report);
    }

    fn cache_in_memory(&mut self, digest: String, report: Arc<String>) {
        if self.entries.insert(digest.clone(), report).is_none() {
            self.order.push_back(digest);
            while self.entries.len() > self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.entries.remove(&oldest);
                } else {
                    break;
                }
            }
        }
    }

    /// Durable-tier file for a digest: `<digest>.json`.
    fn disk_path(&self, digest: &str) -> Option<PathBuf> {
        // Reject digests that are not plain lowercase hex so a hostile
        // digest string can never traverse outside the store directory.
        if digest.is_empty() || !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        self.dir
            .as_ref()
            .map(|dir| dir.join(format!("{digest}.json")))
    }

    /// Writes `<sha256-of-body>\n<body>` to a temp file, fsyncs, and
    /// atomically renames it into place.
    fn write_to_disk(&self, digest: &str, report: &str) -> io::Result<()> {
        let Some(path) = self.disk_path(digest) else {
            return Ok(());
        };
        let tmp = path.with_extension("json.tmp");
        let mut file = fs::File::create(&tmp)?;
        file.write_all(to_hex(&sha256(report.as_bytes())).as_bytes())?;
        file.write_all(b"\n")?;
        file.write_all(report.as_bytes())?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, &path)
    }

    /// Reads and verifies a durable-tier entry. Corrupt entries (header
    /// hash does not match a fresh hash of the body) are deleted and
    /// counted; the caller sees a plain miss.
    fn load_from_disk(&mut self, digest: &str) -> Option<String> {
        let path = self.disk_path(digest)?;
        let raw = fs::read_to_string(&path).ok()?;
        match raw.split_once('\n') {
            Some((header, body)) if header == to_hex(&sha256(body.as_bytes())) => {
                Some(body.to_string())
            }
            _ => {
                self.corrupt_discarded += 1;
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Number of distinct reports stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no reports.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime lookup hits (submissions served without recompute).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Durable-tier entries deleted because their contents no longer
    /// hashed to their header (detected on read).
    pub fn corrupt_discarded(&self) -> u64 {
        self.corrupt_discarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut store = ReportStore::with_capacity(2);
        for (d, r) in [
            ("d1", "{\"a\":1}"),
            ("d2", "{\"a\":2}"),
            ("d3", "{\"a\":3}"),
        ] {
            store.insert(d.into(), Arc::new(r.into()));
        }
        assert_eq!(store.len(), 2);
        assert!(store.get("d1").is_none(), "oldest evicted");
        assert!(store.get("d2").is_some());
        assert!(store.get("d3").is_some());
        // Re-inserting an existing digest neither duplicates nor evicts.
        store.insert("d3".into(), Arc::new("{\"a\":3}".into()));
        assert_eq!(store.len(), 2);
        assert!(store.get("d2").is_some());
    }

    #[test]
    fn persistent_store_survives_reopen_and_detects_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "nvpim-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let digest = "ab".repeat(32);
        let report = Arc::new(String::from("{\"schema_version\":1}"));
        {
            let mut store = ReportStore::persistent(4, &dir).unwrap();
            store.insert(digest.clone(), Arc::clone(&report));
        }
        // A fresh handle over the same directory serves the bytes back.
        let mut reopened = ReportStore::persistent(4, &dir).unwrap();
        assert_eq!(
            reopened.get(&digest).as_deref().map(String::as_str),
            Some(report.as_str())
        );
        assert_eq!(reopened.hits(), 1);
        // Corrupt the file body: the header hash no longer matches, so the
        // entry is discarded and the lookup misses.
        let path = dir.join(format!("{digest}.json"));
        fs::write(&path, "deadbeef\n{\"schema_version\":1}").unwrap();
        let mut tampered = ReportStore::persistent(4, &dir).unwrap();
        assert!(tampered.get(&digest).is_none());
        assert_eq!(tampered.corrupt_discarded(), 1);
        assert!(!path.exists(), "corrupt entry deleted");
        // Hostile digests never touch the filesystem.
        let mut hostile = ReportStore::persistent(4, &dir).unwrap();
        assert!(hostile.get("../../etc/passwd").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hit_returns_the_exact_stored_bytes() {
        let mut store = ReportStore::new();
        assert!(store.get("d1").is_none());
        let report = Arc::new(String::from("{\"x\":1}"));
        store.insert("d1".into(), Arc::clone(&report));
        let back = store.get("d1").unwrap();
        assert!(Arc::ptr_eq(&back, &report));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.len(), 1);
    }
}
