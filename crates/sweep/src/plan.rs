//! Campaign plans: the cartesian product of workload × technology ×
//! protection × error rate, expanded into deterministic Monte Carlo trials.

use nvpim_compiler::builder::CircuitBuilder;
use nvpim_compiler::netlist::Netlist;
use nvpim_core::config::{DesignConfig, GateStyle, ProtectionScheme};
use nvpim_sim::technology::Technology;
use nvpim_workloads::Benchmark;
use serde::{Serialize, Value};

/// A protection design point: scheme plus gate style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct ProtectionConfig {
    /// Protection scheme (unprotected baseline, ECiM or TRiM).
    pub scheme: ProtectionScheme,
    /// Multi- or single-output metadata generation.
    pub gate_style: GateStyle,
}

impl ProtectionConfig {
    /// The unprotected iso-area baseline.
    pub const UNPROTECTED: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::Unprotected,
        gate_style: GateStyle::MultiOutput,
    };
    /// ECiM with multi-output gates (the paper's primary design point).
    pub const ECIM: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::Ecim,
        gate_style: GateStyle::MultiOutput,
    };
    /// ECiM with single-output gates.
    pub const ECIM_SINGLE_OUTPUT: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::Ecim,
        gate_style: GateStyle::SingleOutput,
    };
    /// TRiM with multi-output gates.
    pub const TRIM: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::Trim,
        gate_style: GateStyle::MultiOutput,
    };
    /// TRiM with single-output gates.
    pub const TRIM_SINGLE_OUTPUT: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::Trim,
        gate_style: GateStyle::SingleOutput,
    };
    /// Detection-only even parity with multi-output gates (lands through
    /// the scheme registry's plugin path — no engine dispatch knows it).
    pub const PARITY_DETECT: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::ParityDetect,
        gate_style: GateStyle::MultiOutput,
    };
    /// Detection-only even parity with single-output gates.
    pub const PARITY_DETECT_SINGLE_OUTPUT: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::ParityDetect,
        gate_style: GateStyle::SingleOutput,
    };
    /// Detect-and-recompute with multi-output gates: parity detection plus
    /// bounded periphery recompute of the affected level (registry plugin,
    /// like [`Self::PARITY_DETECT`]).
    pub const DETECT_RECOMPUTE: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::DetectRecompute,
        gate_style: GateStyle::MultiOutput,
    };
    /// Detect-and-recompute with single-output gates.
    pub const DETECT_RECOMPUTE_SINGLE_OUTPUT: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::DetectRecompute,
        gate_style: GateStyle::SingleOutput,
    };

    /// The three multi-output design points of the paper's evaluation.
    pub fn paper_trio() -> Vec<ProtectionConfig> {
        vec![Self::UNPROTECTED, Self::ECIM, Self::TRIM]
    }

    /// One multi-output design point per registered scheme, in registry
    /// order — automatically includes schemes added after this crate
    /// shipped.
    pub fn registry_sweep() -> Vec<ProtectionConfig> {
        ProtectionScheme::all()
            .map(|scheme| ProtectionConfig {
                scheme,
                gate_style: GateStyle::MultiOutput,
            })
            .collect()
    }

    /// The full design configuration for a technology — scheme-agnostic:
    /// any registered scheme resolves through
    /// [`DesignConfig::for_scheme`], never through a per-scheme match.
    pub fn design_config(&self, technology: Technology) -> DesignConfig {
        let base = DesignConfig::for_scheme(self.scheme, technology);
        match self.gate_style {
            GateStyle::MultiOutput => base,
            GateStyle::SingleOutput => base.with_single_output_gates(),
        }
    }

    /// Short label, e.g. `"ECiM/m-o"`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.scheme, self.gate_style)
    }
}

/// The per-row program a trial executes functionally on the simulated array.
///
/// Kernels are synthesized on the fly with [`CircuitBuilder`]; `Benchmark`
/// workloads reuse the paper suite's row netlists (they must fit a single
/// row without spilling — the engine validates this when the campaign
/// compiles its schedules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum SweepWorkload {
    /// Multiply-accumulate: `acc + x * y` with an `acc_bits`-bit accumulator
    /// and `mul_bits`-bit operands (the executor test workload family).
    Mac {
        /// Accumulator width in bits.
        acc_bits: usize,
        /// Multiplier operand width in bits.
        mul_bits: usize,
    },
    /// Ripple-carry addition of two `bits`-bit words.
    RippleAdd {
        /// Operand width in bits.
        bits: usize,
    },
    /// Unsigned multiplication of two `bits`-bit words.
    Multiplier {
        /// Operand width in bits.
        bits: usize,
    },
    /// A paper-suite benchmark's per-row netlist.
    Benchmark(Benchmark),
}

impl SweepWorkload {
    /// Stable workload name (doubles as the schedule-cache key component).
    pub fn name(&self) -> String {
        match self {
            SweepWorkload::Mac { acc_bits, mul_bits } => format!("mac{acc_bits}x{mul_bits}"),
            SweepWorkload::RippleAdd { bits } => format!("add{bits}"),
            SweepWorkload::Multiplier { bits } => format!("mul{bits}"),
            SweepWorkload::Benchmark(b) => b.name(),
        }
    }

    /// Whether the workload carries a labelled task an accuracy campaign
    /// can evaluate (a dataset with per-sample references, not just random
    /// operand vectors). Only the MNIST benchmark qualifies today; plan
    /// validation rejects [`CampaignKind::Accuracy`] on anything else.
    pub fn supports_labels(&self) -> bool {
        matches!(self, SweepWorkload::Benchmark(Benchmark::Mnist { .. }))
    }

    /// Synthesizes the workload's row netlist.
    pub fn netlist(&self) -> Netlist {
        match self {
            SweepWorkload::Mac { acc_bits, mul_bits } => {
                let mut b = CircuitBuilder::new();
                let acc = b.input_word(*acc_bits);
                let x = b.input_word(*mul_bits);
                let y = b.input_word(*mul_bits);
                let out = b.mac(&acc, &x, &y);
                b.mark_output_word(&out);
                b.finish()
            }
            SweepWorkload::RippleAdd { bits } => {
                let mut b = CircuitBuilder::new();
                let x = b.input_word(*bits);
                let y = b.input_word(*bits);
                let (sum, carry) = b.ripple_add(&x, &y, None);
                b.mark_output_word(&sum);
                b.mark_output(carry);
                b.finish()
            }
            SweepWorkload::Multiplier { bits } => {
                let mut b = CircuitBuilder::new();
                let x = b.input_word(*bits);
                let y = b.input_word(*bits);
                let p = b.mul_unsigned(&x, &y);
                b.mark_output_word(&p);
                b.finish()
            }
            SweepWorkload::Benchmark(bench) => bench.row_netlist(),
        }
    }
}

/// How a campaign turns trial outcomes into point statistics.
///
/// [`Exact`](EstimatorMode::Exact) is the historical behaviour: every trial
/// executes in full and the report is byte-identical to plans that predate
/// this enum (the field is omitted from serialized plans when `Exact`, so
/// plan content digests are unchanged too).
///
/// [`Stratified`](EstimatorMode::Stratified) conditions every trial on
/// "at least one gate fault lands inside the trial's decision window" and
/// reweights the measured failure rates by that window's analytic fault
/// probability `P1` — an exactly unbiased rare-event estimator (see
/// `docs/performance.md`). Reports gain per-point confidence intervals and
/// bump `schema_version`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimatorMode {
    /// Plain Monte Carlo: run every trial in full (byte-identical to plans
    /// that predate estimator modes).
    #[default]
    Exact,
    /// Rare-event mode: condition trials on at-least-one-fault and reweight
    /// by the analytic fault probability; reports carry Wilson confidence
    /// intervals.
    Stratified,
}

impl EstimatorMode {
    /// Stable serialized name (`"exact"` / `"stratified"`).
    pub fn wire_name(self) -> &'static str {
        match self {
            EstimatorMode::Exact => "exact",
            EstimatorMode::Stratified => "stratified",
        }
    }
}

impl std::fmt::Display for EstimatorMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.wire_name())
    }
}

impl std::str::FromStr for EstimatorMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "exact" => Ok(EstimatorMode::Exact),
            "stratified" => Ok(EstimatorMode::Stratified),
            other => Err(format!(
                "unknown estimator mode `{other}` (expected `exact` or `stratified`)"
            )),
        }
    }
}

/// What a campaign's trials measure.
///
/// [`Error`](CampaignKind::Error) is the historical campaign type: trials
/// execute random operand vectors and the report carries error counters and
/// output-error rates. The `kind` key is omitted from serialized plans when
/// `Error`, so pre-existing plan digests and exact-mode report bytes are
/// unchanged.
///
/// [`Accuracy`](CampaignKind::Accuracy) promotes a labelled workload (the
/// MNIST benchmark) into an inference-accuracy evaluation: each trial runs
/// one image through the reduced PiM MLP under fault injection and records
/// whether the faulty top-1 prediction still matches the clean model's
/// prediction. Per-point reports gain an `accuracy` block (task accuracy,
/// top-1 delta vs the clean baseline, Wilson interval) next to the error
/// counters, and `schema_version` bumps to 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CampaignKind {
    /// Fault/error-counter campaign over random operand vectors (the
    /// historical behaviour; serialized plans omit the key).
    #[default]
    Error,
    /// Inference-accuracy-under-fault campaign over a labelled workload.
    Accuracy,
}

impl CampaignKind {
    /// Stable serialized name (`"error"` / `"accuracy"`).
    pub fn wire_name(self) -> &'static str {
        match self {
            CampaignKind::Error => "error",
            CampaignKind::Accuracy => "accuracy",
        }
    }
}

impl std::fmt::Display for CampaignKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.wire_name())
    }
}

impl std::str::FromStr for CampaignKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(CampaignKind::Error),
            "accuracy" => Ok(CampaignKind::Accuracy),
            other => Err(format!(
                "unknown campaign kind `{other}` (expected `error` or `accuracy`)"
            )),
        }
    }
}

/// A full Monte Carlo campaign description.
///
/// The campaign expands into `workloads × technologies × protections ×
/// gate_error_rates` *points*, each executed for [`seeds_per_point`] trials
/// whose RNG seeds derive deterministically from [`campaign_seed`] — so a
/// campaign is reproducible byte-for-byte no matter how it is scheduled
/// across threads.
///
/// [`seeds_per_point`]: SweepPlan::seeds_per_point
/// [`campaign_seed`]: SweepPlan::campaign_seed
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Workloads to execute.
    pub workloads: Vec<SweepWorkload>,
    /// Technologies to simulate.
    pub technologies: Vec<Technology>,
    /// Protection design points.
    pub protections: Vec<ProtectionConfig>,
    /// Gate-output bit-flip probabilities to sweep.
    pub gate_error_rates: Vec<f64>,
    /// Monte Carlo trials per point.
    pub seeds_per_point: u64,
    /// Root seed every per-trial seed derives from.
    pub campaign_seed: u64,
    /// How trial outcomes become point statistics ([`EstimatorMode::Exact`]
    /// by default, which reproduces historical report bytes).
    pub estimator: EstimatorMode,
    /// What trials measure ([`CampaignKind::Error`] by default, which
    /// reproduces historical report bytes).
    pub kind: CampaignKind,
    /// Permanent stuck-at defect density in `[0, 1]`: the probability each
    /// array cell is fabricated stuck (at 0 or 1, equiprobable). Per-trial
    /// defect maps derive from the same deterministic seed discipline as
    /// transient faults, so reports stay byte-reproducible. `0.0` (the
    /// default, omitted from serialized plans) means no permanent defects.
    pub stuck_at_rate: f64,
}

// Hand-rolled so the `estimator` key is *omitted* when `Exact`: serialized
// plans (and therefore plan content digests and exact-mode report bytes)
// stay byte-identical to versions that predate estimator modes.
impl Serialize for SweepPlan {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("workloads".to_string(), self.workloads.to_json()),
            ("technologies".to_string(), self.technologies.to_json()),
            ("protections".to_string(), self.protections.to_json()),
            (
                "gate_error_rates".to_string(),
                self.gate_error_rates.to_json(),
            ),
            (
                "seeds_per_point".to_string(),
                self.seeds_per_point.to_json(),
            ),
            ("campaign_seed".to_string(), self.campaign_seed.to_json()),
        ];
        if self.estimator != EstimatorMode::Exact {
            fields.push((
                "estimator".to_string(),
                Value::Str(self.estimator.wire_name().to_string()),
            ));
        }
        if self.kind != CampaignKind::Error {
            fields.push((
                "kind".to_string(),
                Value::Str(self.kind.wire_name().to_string()),
            ));
        }
        if self.stuck_at_rate != 0.0 {
            fields.push(("stuck_at_rate".to_string(), self.stuck_at_rate.to_json()));
        }
        Value::Object(fields)
    }
}

impl SweepPlan {
    /// A small smoke campaign (single workload/technology, the paper trio,
    /// three error rates, a handful of seeds) for quick runs and tests.
    pub fn quick() -> Self {
        Self {
            workloads: vec![SweepWorkload::Mac {
                acc_bits: 8,
                mul_bits: 4,
            }],
            technologies: vec![Technology::SttMram],
            protections: ProtectionConfig::paper_trio(),
            gate_error_rates: vec![1e-4, 3e-4, 1e-3],
            seeds_per_point: 8,
            campaign_seed: 0x5eed_cafe,
            estimator: EstimatorMode::Exact,
            kind: CampaignKind::Error,
            stuck_at_rate: 0.0,
        }
    }

    /// A small inference-accuracy smoke campaign: the 1-bit MNIST benchmark
    /// on the ReRAM crossbar, the unprotected baseline against
    /// detect-and-recompute, a fault-rate ramp including the clean point,
    /// and a light permanent-defect density.
    pub fn accuracy_quick() -> Self {
        Self {
            workloads: vec![SweepWorkload::Benchmark(Benchmark::Mnist {
                weight_bits: 1,
            })],
            technologies: vec![Technology::ReramCrossbar],
            protections: vec![
                ProtectionConfig::UNPROTECTED,
                ProtectionConfig::DETECT_RECOMPUTE,
            ],
            gate_error_rates: vec![0.0, 1e-3, 3e-3],
            seeds_per_point: 8,
            campaign_seed: 0xacc0_cafe,
            estimator: EstimatorMode::Exact,
            kind: CampaignKind::Accuracy,
            stuck_at_rate: 1e-4,
        }
    }

    /// The paper-scale campaign behind the harness binaries' `--sweep`
    /// mode: two kernels, all three technologies, all five protection
    /// design points, a four-decade error-rate grid.
    pub fn paper_scale() -> Self {
        Self {
            workloads: vec![
                SweepWorkload::Mac {
                    acc_bits: 8,
                    mul_bits: 4,
                },
                SweepWorkload::RippleAdd { bits: 8 },
            ],
            technologies: Technology::ALL.to_vec(),
            protections: vec![
                ProtectionConfig::UNPROTECTED,
                ProtectionConfig::ECIM,
                ProtectionConfig::ECIM_SINGLE_OUTPUT,
                ProtectionConfig::TRIM,
                ProtectionConfig::TRIM_SINGLE_OUTPUT,
            ],
            gate_error_rates: vec![1e-5, 1e-4, 3e-4, 1e-3],
            seeds_per_point: 25,
            campaign_seed: 0x15ca_2024,
            estimator: EstimatorMode::Exact,
            kind: CampaignKind::Error,
            stuck_at_rate: 0.0,
        }
    }

    /// Number of campaign points (workload × technology × protection × rate).
    pub fn point_count(&self) -> usize {
        self.workloads.len()
            * self.technologies.len()
            * self.protections.len()
            * self.gate_error_rates.len()
    }

    /// Total number of Monte Carlo trials the campaign will run.
    pub fn trial_count(&self) -> u64 {
        self.point_count() as u64 * self.seeds_per_point
    }

    /// Checks the plan is non-degenerate.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SweepError::EmptyPlan`] naming the empty axis.
    pub fn validate(&self) -> Result<(), crate::SweepError> {
        if self.workloads.is_empty() {
            return Err(crate::SweepError::EmptyPlan("workloads"));
        }
        if self.technologies.is_empty() {
            return Err(crate::SweepError::EmptyPlan("technologies"));
        }
        if self.protections.is_empty() {
            return Err(crate::SweepError::EmptyPlan("protections"));
        }
        if self.gate_error_rates.is_empty() {
            return Err(crate::SweepError::EmptyPlan("gate_error_rates"));
        }
        if self.seeds_per_point == 0 {
            return Err(crate::SweepError::EmptyPlan("seeds_per_point"));
        }
        for &rate in &self.gate_error_rates {
            // The explicit finiteness test matters: `contains` happens to
            // reject NaN today, but a non-finite rate must fail loudly as an
            // invalid rate, not ride on a comparison side effect.
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(crate::SweepError::InvalidErrorRate(rate));
            }
        }
        if !self.stuck_at_rate.is_finite() || !(0.0..=1.0).contains(&self.stuck_at_rate) {
            return Err(crate::SweepError::InvalidErrorRate(self.stuck_at_rate));
        }
        if self.kind == CampaignKind::Accuracy {
            // Accuracy fidelity is a per-trial Bernoulli against the clean
            // prediction; the stratified estimator's zero-fault stratum is
            // defined over error counters, not task metrics.
            if self.estimator == EstimatorMode::Stratified {
                return Err(crate::SweepError::UnsupportedCampaign(
                    "accuracy campaigns run the exact estimator only".to_string(),
                ));
            }
            for workload in &self.workloads {
                if !workload.supports_labels() {
                    return Err(crate::SweepError::UnsupportedCampaign(format!(
                        "workload `{}` carries no labels; accuracy campaigns \
                         need a labelled workload (the MNIST benchmark)",
                        workload.name()
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_the_cartesian_product() {
        let plan = SweepPlan::quick();
        assert_eq!(plan.point_count(), 3 * 3);
        assert_eq!(plan.trial_count(), 9 * 8);
        plan.validate().unwrap();
    }

    #[test]
    fn degenerate_plans_are_rejected() {
        let mut plan = SweepPlan::quick();
        plan.gate_error_rates.clear();
        assert!(plan.validate().is_err());
        let mut plan = SweepPlan::quick();
        plan.gate_error_rates = vec![1.5];
        assert!(plan.validate().is_err());
        let mut plan = SweepPlan::quick();
        plan.seeds_per_point = 0;
        assert!(plan.validate().is_err());
    }

    #[test]
    fn non_finite_rates_are_explicitly_invalid() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut plan = SweepPlan::quick();
            plan.gate_error_rates = vec![bad];
            match plan.validate() {
                Err(crate::SweepError::InvalidErrorRate(r)) => {
                    assert!(r.is_nan() == bad.is_nan() && (r.is_nan() || r == bad));
                }
                other => panic!("expected InvalidErrorRate for {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn estimator_mode_parses_and_displays() {
        use std::str::FromStr;
        assert_eq!(
            EstimatorMode::from_str("exact").unwrap(),
            EstimatorMode::Exact
        );
        assert_eq!(
            EstimatorMode::from_str("Stratified").unwrap(),
            EstimatorMode::Stratified
        );
        assert!(EstimatorMode::from_str("importance").is_err());
        assert_eq!(EstimatorMode::default(), EstimatorMode::Exact);
        assert_eq!(EstimatorMode::Stratified.to_string(), "stratified");
    }

    #[test]
    fn exact_plans_serialize_without_the_estimator_key() {
        let exact = serde_json::to_string(&SweepPlan::quick()).unwrap();
        assert!(!exact.contains("estimator"));
        let mut plan = SweepPlan::quick();
        plan.estimator = EstimatorMode::Stratified;
        let stratified = serde_json::to_string(&plan).unwrap();
        assert!(stratified.contains("\"estimator\":\"stratified\""));
    }

    #[test]
    fn error_plans_serialize_without_the_kind_or_stuck_at_keys() {
        // Historical plan bytes (and therefore content digests) must be
        // unchanged by the accuracy-campaign fields.
        let error = serde_json::to_string(&SweepPlan::quick()).unwrap();
        assert!(!error.contains("\"kind\""));
        assert!(!error.contains("stuck_at_rate"));
        let accuracy = serde_json::to_string(&SweepPlan::accuracy_quick()).unwrap();
        assert!(accuracy.contains("\"kind\":\"accuracy\""));
        assert!(accuracy.contains("\"stuck_at_rate\":"));
    }

    #[test]
    fn campaign_kind_parses_and_displays() {
        use std::str::FromStr;
        assert_eq!(
            CampaignKind::from_str("error").unwrap(),
            CampaignKind::Error
        );
        assert_eq!(
            CampaignKind::from_str("Accuracy").unwrap(),
            CampaignKind::Accuracy
        );
        assert!(CampaignKind::from_str("fidelity").is_err());
        assert_eq!(CampaignKind::default(), CampaignKind::Error);
        assert_eq!(CampaignKind::Accuracy.to_string(), "accuracy");
    }

    #[test]
    fn accuracy_plans_require_labelled_workloads() {
        let plan = SweepPlan::accuracy_quick();
        plan.validate().unwrap();
        assert!(plan.workloads.iter().all(SweepWorkload::supports_labels));

        // Accuracy on an unlabelled workload is rejected by name.
        let mut unlabelled = SweepPlan::accuracy_quick();
        unlabelled.workloads = vec![SweepWorkload::Mac {
            acc_bits: 8,
            mul_bits: 4,
        }];
        match unlabelled.validate() {
            Err(crate::SweepError::UnsupportedCampaign(msg)) => {
                assert!(msg.contains("mac8x4"), "{msg}")
            }
            other => panic!("expected UnsupportedCampaign, got {other:?}"),
        }

        // The stratified estimator cannot drive an accuracy campaign.
        let mut stratified = SweepPlan::accuracy_quick();
        stratified.estimator = EstimatorMode::Stratified;
        assert!(matches!(
            stratified.validate(),
            Err(crate::SweepError::UnsupportedCampaign(_))
        ));

        // Stuck-at densities outside [0, 1] are invalid rates.
        for bad in [-0.1, 1.5, f64::NAN] {
            let mut plan = SweepPlan::quick();
            plan.stuck_at_rate = bad;
            assert!(matches!(
                plan.validate(),
                Err(crate::SweepError::InvalidErrorRate(_))
            ));
        }
    }

    #[test]
    fn workload_netlists_have_inputs_and_outputs() {
        for w in [
            SweepWorkload::Mac {
                acc_bits: 8,
                mul_bits: 4,
            },
            SweepWorkload::RippleAdd { bits: 8 },
            SweepWorkload::Multiplier { bits: 4 },
        ] {
            let n = w.netlist();
            assert!(!n.inputs.is_empty(), "{}", w.name());
            assert!(!n.outputs.is_empty(), "{}", w.name());
        }
    }

    #[test]
    fn protection_labels_and_configs_line_up() {
        let p = ProtectionConfig::ECIM_SINGLE_OUTPUT;
        assert_eq!(p.label(), "ECiM/s-o");
        let cfg = p.design_config(Technology::ReRam);
        assert_eq!(cfg.scheme, ProtectionScheme::Ecim);
        assert_eq!(cfg.gate_style, GateStyle::SingleOutput);
    }
}
