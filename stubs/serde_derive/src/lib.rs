//! Offline stand-in for the real `serde_derive` crate.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! crate re-implements `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! against the stub `serde` crate in this workspace, using only the
//! built-in `proc_macro` API (no `syn` / `quote`).
//!
//! Supported shapes — everything the workspace derives on:
//! * structs with named fields, tuple structs, unit structs,
//! * enums with unit, named-field and tuple variants,
//! * simple generics (type parameters gain a `serde` bound).
//!
//! `Serialize` expands to an implementation of the stub trait's
//! `to_json(&self) -> serde::Value`; `Deserialize` expands to a marker
//! implementation (nothing in the workspace deserializes at run time).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    /// Raw generic parameter segments, e.g. `["T: Clone", "const N: usize"]`.
    generic_segments: Vec<String>,
    /// Just the parameter names for the type position, e.g. `["T", "N"]`.
    generic_names: Vec<String>,
    shape: Shape,
}

enum Shape {
    UnitStruct,
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives the stub `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub: generated Serialize impl must parse")
}

/// Derives the stub `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = expect_ident(&tokens, &mut i);
    assert!(
        kind == "struct" || kind == "enum",
        "serde_derive stub: expected struct or enum, found `{kind}`"
    );
    let name = expect_ident(&tokens, &mut i);

    // Generics.
    let mut generic_segments = Vec::new();
    let mut generic_names = Vec::new();
    if matches_punct(tokens.get(i), '<') {
        i += 1;
        let mut depth = 1usize;
        let mut seg: Vec<TokenTree> = Vec::new();
        let mut segs: Vec<Vec<TokenTree>> = Vec::new();
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    seg.push(tokens[i].clone());
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                    seg.push(tokens[i].clone());
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    if !seg.is_empty() {
                        segs.push(std::mem::take(&mut seg));
                    }
                }
                t => seg.push(t.clone()),
            }
            i += 1;
        }
        if !seg.is_empty() {
            segs.push(seg);
        }
        for seg in segs {
            // Drop any default (`= ...`) from the declaration segment.
            let mut decl: Vec<TokenTree> = Vec::new();
            for t in &seg {
                if matches_punct(Some(t), '=') {
                    break;
                }
                decl.push(t.clone());
            }
            generic_segments.push(tokens_to_string(&decl));
            generic_names.push(param_name(&seg));
        }
    }

    // Skip a `where` clause if present (scan forward to the body).
    let shape = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                if kind == "struct" {
                    break Shape::NamedStruct(parse_named_fields(&body));
                }
                break Shape::Enum(parse_variants(&body));
            }
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
            {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                break Shape::TupleStruct(count_top_level_fields(&body));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break Shape::UnitStruct,
            Some(_) => i += 1, // inside a where clause
            None => break Shape::UnitStruct,
        }
    };

    Item {
        name,
        generic_segments,
        generic_names,
        shape,
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive stub: expected identifier, found {other:?}"),
    }
}

fn matches_punct(token: Option<&TokenTree>, ch: char) -> bool {
    matches!(token, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// The name of a generic parameter from its declaration segment.
fn param_name(seg: &[TokenTree]) -> String {
    let mut iter = seg.iter().peekable();
    while let Some(t) = iter.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                if let Some(TokenTree::Ident(id)) = iter.next() {
                    return format!("'{id}");
                }
            }
            TokenTree::Ident(id) if id.to_string() == "const" => {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
            }
            TokenTree::Ident(id) => return id.to_string(),
            _ => {}
        }
    }
    panic!("serde_derive stub: could not find generic parameter name in `{seg:?}`")
}

/// Parses `name: Type, ...` sequences, tracking `<...>` depth so commas
/// inside generic arguments do not split fields.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = expect_ident(body, &mut i);
        assert!(
            matches_punct(body.get(i), ':'),
            "serde_derive stub: expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: consume until a comma at angle-depth 0.
        let mut depth = 0isize;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Number of fields in a tuple-struct / tuple-variant body.
fn count_top_level_fields(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut depth = 0isize;
    let mut saw_trailing_comma = false;
    for (idx, t) in body.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if idx + 1 == body.len() {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = expect_ident(body, &mut i);
        let shape = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantShape::Named(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantShape::Tuple(count_top_level_fields(&inner))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant and the trailing comma.
        while i < body.len() && !matches_punct(body.get(i), ',') {
            i += 1;
        }
        i += 1; // the comma
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_path: &str, bound: &str) -> String {
    if item.generic_segments.is_empty() {
        format!("impl {trait_path} for {} ", item.name)
    } else {
        let params: Vec<String> = item
            .generic_segments
            .iter()
            .map(|seg| {
                let is_type_param = !seg.starts_with('\'') && !seg.starts_with("const ");
                if !is_type_param {
                    seg.clone()
                } else if seg.contains(':') {
                    format!("{seg} + {bound}")
                } else {
                    format!("{seg}: {bound}")
                }
            })
            .collect();
        format!(
            "impl<{}> {trait_path} for {}<{}> ",
            params.join(", "),
            item.name,
            item.generic_names.join(", ")
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                s.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_json(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__fields)");
            s
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let mut s = String::from(
                "let mut __items: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n",
            );
            for idx in 0..*n {
                s.push_str(&format!(
                    "__items.push(::serde::Serialize::to_json(&self.{idx}));\n"
                ));
            }
            s.push_str("::serde::Value::Array(__items)");
            s
        }
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vname = &v.name;
                let ty = &item.name;
                match &v.shape {
                    VariantShape::Unit => {
                        s.push_str(&format!(
                            "{ty}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),\n"
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binders = fields.join(", ");
                        let mut arm = format!("{ty}::{vname} {{ {binders} }} => {{\n");
                        arm.push_str(
                            "let mut __inner: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "__inner.push((::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_json({f})));\n"
                            ));
                        }
                        arm.push_str(&format!(
                            "::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Object(__inner))])\n}}\n"
                        ));
                        s.push_str(&arm);
                        s.push(',');
                        s.push('\n');
                    }
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let pattern = binders.join(", ");
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_json(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        s.push_str(&format!(
                            "{ty}::{vname}({pattern}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), {inner})]),\n"
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "{}{{\n fn to_json(&self) -> ::serde::Value {{\n{body}\n}}\n}}",
        impl_header(item, "::serde::Serialize", "::serde::Serialize")
    )
}

fn gen_deserialize(item: &Item) -> String {
    format!(
        "{}{{}}",
        impl_header(item, "::serde::Deserialize", "::serde::Deserialize")
    )
}
