//! Modular redundancy primitives: DMR detection, TMR / N-modular majority
//! voting (§II-C of the paper). TRiM's external Checker is built on
//! [`majority_vote_words`].

use crate::error::EccError;
use crate::gf2::BitVec;

/// Outcome of comparing redundant copies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VoteOutcome {
    /// All copies agreed.
    Unanimous(BitVec),
    /// A strict majority agreed; `dissenting` lists the indices of copies
    /// that disagreed with the majority value in at least one bit.
    Majority {
        /// The bitwise-majority value.
        value: BitVec,
        /// Copies that differed from the majority value.
        dissenting: Vec<usize>,
    },
}

impl VoteOutcome {
    /// The voted value, regardless of whether it was unanimous.
    pub fn value(&self) -> &BitVec {
        match self {
            VoteOutcome::Unanimous(v) => v,
            VoteOutcome::Majority { value, .. } => value,
        }
    }

    /// Whether any copy disagreed (i.e. an error was detected).
    pub fn error_detected(&self) -> bool {
        matches!(self, VoteOutcome::Majority { .. })
    }
}

/// Dual modular redundancy: detects (but cannot correct) a mismatch.
///
/// Returns `true` when the two copies agree.
///
/// # Panics
///
/// Panics if the copies have different lengths.
pub fn dmr_check(a: &BitVec, b: &BitVec) -> bool {
    assert_eq!(a.len(), b.len(), "DMR copies must have equal length");
    a == b
}

/// Bitwise majority vote over exactly three copies (classic TMR).
///
/// # Panics
///
/// Panics if the copies have different lengths.
pub fn tmr_vote(a: &BitVec, b: &BitVec, c: &BitVec) -> VoteOutcome {
    majority_vote_words(&[a.clone(), b.clone(), c.clone()])
        .expect("three copies always have a bitwise majority")
}

/// Bitwise majority vote over `N` copies (N-modular redundancy).
///
/// For each bit position the value held by more than half of the copies wins;
/// with an even number of copies a tie is reported as [`EccError::NoMajority`].
///
/// # Errors
///
/// Returns [`EccError::NoMajority`] if fewer than two copies are supplied or
/// any bit position ties.
///
/// # Panics
///
/// Panics if the copies have different lengths.
pub fn majority_vote_words(copies: &[BitVec]) -> Result<VoteOutcome, EccError> {
    if copies.len() < 2 {
        return Err(EccError::NoMajority);
    }
    let len = copies[0].len();
    assert!(
        copies.iter().all(|c| c.len() == len),
        "all redundant copies must have equal length"
    );
    let mut value = BitVec::zeros(len);
    for bit in 0..len {
        let ones = copies.iter().filter(|c| c.get(bit)).count();
        let zeros = copies.len() - ones;
        if ones == zeros {
            return Err(EccError::NoMajority);
        }
        value.set(bit, ones > zeros);
    }
    let dissenting: Vec<usize> = copies
        .iter()
        .enumerate()
        .filter(|(_, c)| *c != &value)
        .map(|(i, _)| i)
        .collect();
    Ok(if dissenting.is_empty() {
        VoteOutcome::Unanimous(value)
    } else {
        VoteOutcome::Majority { value, dissenting }
    })
}

/// Majority vote over three booleans (single-bit TMR), the primitive the
/// TRiM Checker applies per gate output.
pub fn majority3(a: bool, b: bool, c: bool) -> bool {
    (a & b) | (a & c) | (b & c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(bits: &[u8]) -> BitVec {
        bits.iter().map(|&b| b == 1).collect()
    }

    #[test]
    fn majority3_truth_table() {
        assert!(!majority3(false, false, false));
        assert!(!majority3(true, false, false));
        assert!(majority3(true, true, false));
        assert!(majority3(true, true, true));
        assert!(majority3(false, true, true));
    }

    #[test]
    fn dmr_detects_mismatch() {
        assert!(dmr_check(&bv(&[1, 0, 1]), &bv(&[1, 0, 1])));
        assert!(!dmr_check(&bv(&[1, 0, 1]), &bv(&[1, 1, 1])));
    }

    #[test]
    fn tmr_corrects_single_corrupted_copy() {
        let good = bv(&[1, 0, 1, 1, 0]);
        let mut bad = good.clone();
        bad.flip(2);
        let outcome = tmr_vote(&good, &bad, &good);
        assert!(outcome.error_detected());
        assert_eq!(outcome.value(), &good);
        if let VoteOutcome::Majority { dissenting, .. } = outcome {
            assert_eq!(dissenting, vec![1]);
        }
    }

    #[test]
    fn tmr_unanimous() {
        let v = bv(&[0, 1, 1]);
        let outcome = tmr_vote(&v, &v, &v);
        assert!(!outcome.error_detected());
        assert_eq!(outcome.value(), &v);
    }

    #[test]
    fn nmr_five_copies_two_corrupt() {
        let good = bv(&[1, 1, 0, 0, 1, 0]);
        let mut bad1 = good.clone();
        bad1.flip(0);
        let mut bad2 = good.clone();
        bad2.flip(5);
        let outcome =
            majority_vote_words(&[good.clone(), bad1, good.clone(), bad2, good.clone()]).unwrap();
        assert_eq!(outcome.value(), &good);
    }

    #[test]
    fn even_copies_can_tie() {
        let a = bv(&[1, 0]);
        let b = bv(&[0, 0]);
        assert_eq!(
            majority_vote_words(&[a.clone(), b.clone()]),
            Err(EccError::NoMajority)
        );
        // But two identical copies are fine.
        assert!(majority_vote_words(&[a.clone(), a]).is_ok());
    }

    #[test]
    fn single_copy_rejected() {
        assert_eq!(majority_vote_words(&[bv(&[1])]), Err(EccError::NoMajority));
    }
}
