//! Offline stand-in for the real `serde_json` crate.
//!
//! Renders the stub `serde::Value` tree as JSON text. Output is fully
//! deterministic: object keys keep insertion order (struct declaration
//! order), floats render via Rust's shortest-roundtrip formatting, and
//! non-finite floats render as `null` (matching serde_json's lossy modes).

use serde::Serialize;
pub use serde::Value;

/// Error type for serialization (the stub never actually fails).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stub error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_json(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent, like the
/// real serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_json(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON into an `io::Write` sink.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(e.to_string()))
}

/// Serializes `value` as pretty JSON into an `io::Write` sink.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string_pretty(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(e.to_string()))
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: always include a decimal point or
                // exponent so the token reads back as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_rendering() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".to_string(), Value::Float(0.5)),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null],"c":0.5}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
    }
}
