//! Operation, energy and latency accounting for PiM arrays.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`crate::array::PimArray`] as it executes
/// gates, reads and writes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ArrayStats {
    /// Total in-array gate operations executed (NOR of any output count,
    /// THR, NOT, copy, preset).
    pub gate_ops: u64,
    /// Subset of `gate_ops` that were thresholding (THR) gates.
    pub thr_ops: u64,
    /// Cells written through the write path.
    pub bits_written: u64,
    /// Cells read through the read path (sense amplifier activations).
    pub bits_read: u64,
    /// Total in-array energy (fJ): gate operations + writes. Peripheral
    /// (sensing / decoding) energy is accounted by the periphery model on
    /// top of this.
    pub energy_fj: f64,
    /// Total serialized latency (ns) of the operations recorded so far.
    pub latency_ns: f64,
}

impl ArrayStats {
    /// Records a gate operation.
    pub fn record_gate(&mut self, is_thr: bool, energy_fj: f64, delay_ns: f64) {
        self.gate_ops += 1;
        if is_thr {
            self.thr_ops += 1;
        }
        self.energy_fj += energy_fj;
        self.latency_ns += delay_ns;
    }

    /// Records a write of `bits` cells.
    pub fn record_write(&mut self, bits: usize, energy_fj: f64, delay_ns: f64) {
        self.bits_written += bits as u64;
        self.energy_fj += energy_fj;
        self.latency_ns += delay_ns;
    }

    /// Records a read of `bits` cells (sensing energy is added by the
    /// periphery model, so only the count is tracked here).
    pub fn record_read(&mut self, bits: usize) {
        self.bits_read += bits as u64;
    }

    /// Removes the serial latency double-counted when `extra_ops` operations
    /// actually executed in parallel within one gate delay.
    pub fn absorb_parallel_latency(&mut self, extra_ops: usize, delay_ns: f64) {
        self.latency_ns -= extra_ops as f64 * delay_ns;
        if self.latency_ns < 0.0 {
            self.latency_ns = 0.0;
        }
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &ArrayStats) {
        self.gate_ops += other.gate_ops;
        self.thr_ops += other.thr_ops;
        self.bits_written += other.bits_written;
        self.bits_read += other.bits_read;
        self.energy_fj += other.energy_fj;
        self.latency_ns += other.latency_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = ArrayStats::default();
        a.record_gate(false, 10.0, 1.0);
        a.record_gate(true, 11.0, 1.0);
        a.record_write(4, 4.0, 1.0);
        a.record_read(8);
        assert_eq!(a.gate_ops, 2);
        assert_eq!(a.thr_ops, 1);
        assert_eq!(a.bits_written, 4);
        assert_eq!(a.bits_read, 8);
        assert!((a.energy_fj - 25.0).abs() < 1e-12);
        assert!((a.latency_ns - 3.0).abs() < 1e-12);

        let mut b = ArrayStats::default();
        b.record_gate(false, 1.0, 1.0);
        b.merge(&a);
        assert_eq!(b.gate_ops, 3);
        assert!((b.energy_fj - 26.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_latency_absorption_clamps_at_zero() {
        let mut s = ArrayStats::default();
        s.record_gate(false, 1.0, 1.0);
        s.absorb_parallel_latency(5, 1.0);
        assert_eq!(s.latency_ns, 0.0);
    }
}
