//! The PiM memory array: a grid of nonvolatile cells that stores data *and*
//! executes Boolean gates in place (§II-A, Fig. 1).
//!
//! Each gate operation names a row, a set of input columns and one or more
//! output columns within that row. Execution follows the hardware semantics:
//! the output cells are preset, the control lines are biased, and the outputs
//! switch according to the gate's thresholding function of the input cells'
//! resistance states. Reads and writes go through the array interface (one
//! row-interface transaction at a time), which is what the paper's Checker
//! communication competes with.

use nvpim_ecc::gf2::BitVec;
use serde::{Deserialize, Serialize};

use crate::fault::{FaultInjector, FaultSite};
use crate::gates::GateKind;
use crate::partition::PartitionConfig;
use crate::stats::ArrayStats;
use crate::technology::{Technology, TechnologyParams};

/// A single in-array gate operation: inputs and outputs are columns of `row`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateOp {
    /// The gate to execute.
    pub kind: GateKind,
    /// Row in which the gate fires.
    pub row: usize,
    /// Input cell columns.
    pub inputs: Vec<usize>,
    /// Output cell columns (all receive the same value for multi-output NOR).
    pub outputs: Vec<usize>,
}

impl GateOp {
    /// Convenience constructor.
    pub fn new(kind: GateKind, row: usize, inputs: Vec<usize>, outputs: Vec<usize>) -> Self {
        Self {
            kind,
            row,
            inputs,
            outputs,
        }
    }
}

/// Errors raised by array operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayError {
    /// A row or column index exceeded the array dimensions.
    OutOfBounds {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
    },
    /// The number of output columns does not match the gate kind.
    OutputArityMismatch {
        /// Outputs the gate kind drives.
        expected: usize,
        /// Outputs supplied.
        got: usize,
    },
    /// Two concurrent gate operations overlap in a partition.
    PartitionConflict {
        /// The partition where the conflict occurred.
        partition: usize,
    },
}

impl std::fmt::Display for ArrayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrayError::OutOfBounds { row, col } => {
                write!(f, "cell ({row}, {col}) is outside the array")
            }
            ArrayError::OutputArityMismatch { expected, got } => {
                write!(f, "gate drives {expected} outputs but {got} were supplied")
            }
            ArrayError::PartitionConflict { partition } => {
                write!(
                    f,
                    "concurrent gate operations overlap in partition {partition}"
                )
            }
        }
    }
}

impl std::error::Error for ArrayError {}

/// A nonvolatile PiM array of `rows × cols` cells.
///
/// Cell logic values are bit-packed into `u64` words, row-major
/// (`cols.div_ceil(64)` words per row): a 256×256 array is 8 KiB of words
/// instead of 64 KiB of `bool`s, resets with a `fill(0)` memset, and exposes
/// word-level row read/write/compare paths for the ECC layer's word-parallel
/// kernels. Bits beyond `cols` in each row's last word are always zero.
#[derive(Debug, Clone)]
pub struct PimArray {
    technology: Technology,
    params: TechnologyParams,
    rows: usize,
    cols: usize,
    words_per_row: usize,
    /// Packed logic values of the cells, row-major.
    words: Vec<u64>,
    partitions: PartitionConfig,
    stats: ArrayStats,
    injector: FaultInjector,
}

impl PimArray {
    /// Creates an array with all cells holding logic 0 and fault injection
    /// disabled.
    pub fn new(technology: Technology, rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        Self {
            technology,
            params: technology.parameters(),
            rows,
            cols,
            words_per_row,
            words: vec![0; rows * words_per_row],
            partitions: PartitionConfig::single(cols),
            stats: ArrayStats::default(),
            injector: FaultInjector::disabled(),
        }
    }

    /// The 256×256 array used throughout the paper's evaluation.
    pub fn standard(technology: Technology) -> Self {
        Self::new(technology, 256, 256)
    }

    /// Replaces the fault injector.
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = injector;
        self
    }

    /// Replaces the partition configuration.
    pub fn with_partitions(mut self, partitions: PartitionConfig) -> Self {
        assert_eq!(
            partitions.total_columns(),
            self.cols,
            "partition configuration must cover every column"
        );
        self.partitions = partitions;
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The array's technology.
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// The technology parameters in use.
    pub fn params(&self) -> &TechnologyParams {
        &self.params
    }

    /// The partition configuration.
    pub fn partitions(&self) -> &PartitionConfig {
        &self.partitions
    }

    /// Accumulated operation statistics.
    pub fn stats(&self) -> &ArrayStats {
        &self.stats
    }

    /// Resets the statistics counters (cell contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = ArrayStats::default();
    }

    /// Access to the fault injector (e.g. to read the fault log).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Mutable access to the fault injector.
    pub fn fault_injector_mut(&mut self) -> &mut FaultInjector {
        &mut self.injector
    }

    /// Word index and bit mask of cell (`row`, `col`), bounds-checked.
    #[inline]
    fn locate(&self, row: usize, col: usize) -> Result<(usize, u64), ArrayError> {
        if row >= self.rows || col >= self.cols {
            Err(ArrayError::OutOfBounds { row, col })
        } else {
            Ok((row * self.words_per_row + col / 64, 1u64 << (col % 64)))
        }
    }

    #[inline]
    fn store(&mut self, word: usize, mask: u64, value: bool) {
        if value {
            self.words[word] |= mask;
        } else {
            self.words[word] &= !mask;
        }
    }

    /// Reads a cell's logic value *without* going through the array interface
    /// (no sensing cost) — used internally by gate execution and by tests.
    pub fn peek(&self, row: usize, col: usize) -> Result<bool, ArrayError> {
        let (word, mask) = self.locate(row, col)?;
        Ok(self.words[word] & mask != 0)
    }

    /// Writes a cell's logic value without cost accounting or fault
    /// injection. Used to initialize test fixtures and load input data that
    /// is assumed already resident (the paper's inputs live in the array).
    pub fn poke(&mut self, row: usize, col: usize, value: bool) -> Result<(), ArrayError> {
        let (word, mask) = self.locate(row, col)?;
        self.store(word, mask, value);
        Ok(())
    }

    /// Loads a whole row of logic values without cost accounting — a
    /// word-level copy, not a per-bit loop.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != cols`.
    pub fn load_row(&mut self, row: usize, values: &BitVec) -> Result<(), ArrayError> {
        assert_eq!(values.len(), self.cols, "row load must cover every column");
        if row >= self.rows {
            return Err(ArrayError::OutOfBounds { row, col: 0 });
        }
        let base = row * self.words_per_row;
        self.words[base..base + self.words_per_row].copy_from_slice(values.words());
        Ok(())
    }

    /// The packed words backing one row (bit `c` of the row is word `c / 64`,
    /// bit `c % 64`; bits beyond `cols` are zero).
    pub fn row_words(&self, row: usize) -> Result<&[u64], ArrayError> {
        if row >= self.rows {
            return Err(ArrayError::OutOfBounds { row, col: 0 });
        }
        let base = row * self.words_per_row;
        Ok(&self.words[base..base + self.words_per_row])
    }

    /// Word-level row compare: whether rows `a` and `b` hold identical bits.
    pub fn rows_equal(&self, a: usize, b: usize) -> Result<bool, ArrayError> {
        Ok(self.row_words(a)? == self.row_words(b)?)
    }

    /// Reads a cell through the read path (sense amplifier): costs read
    /// energy/latency and is subject to read-disturb faults.
    pub fn read_cell(&mut self, row: usize, col: usize) -> Result<bool, ArrayError> {
        let (word, mask) = self.locate(row, col)?;
        let value = self.words[word] & mask != 0;
        let sensed = self.injector.apply(FaultSite::Read, row, col, value);
        self.stats.record_read(1);
        Ok(sensed)
    }

    /// Writes a cell through the write path: costs write energy/latency and
    /// is subject to write faults.
    pub fn write_cell(&mut self, row: usize, col: usize, value: bool) -> Result<(), ArrayError> {
        let (word, mask) = self.locate(row, col)?;
        let stored = self.injector.apply(FaultSite::Write, row, col, value);
        self.store(word, mask, stored);
        self.stats
            .record_write(1, self.params.write_energy(1), self.params.gate_delay_ns());
        Ok(())
    }

    /// Reads `cols.len()` cells of a row through the interface as one
    /// transaction (what a Checker transfer uses).
    pub fn read_bits(&mut self, row: usize, cols: &[usize]) -> Result<BitVec, ArrayError> {
        let mut out = BitVec::zeros(cols.len());
        self.read_bits_into(row, cols, &mut out)?;
        Ok(out)
    }

    /// [`Self::read_bits`] into a caller-owned buffer (resized in place), so
    /// steady-state Checker transfers allocate nothing.
    pub fn read_bits_into(
        &mut self,
        row: usize,
        cols: &[usize],
        out: &mut BitVec,
    ) -> Result<(), ArrayError> {
        out.clear_resize(cols.len());
        // Accumulate sensed bits 64 at a time instead of per-bit set calls.
        // With a zero read-fault rate the injector is bypassed entirely
        // (consulting it would neither flip bits nor consume RNG state).
        let faulty_reads = self.injector.rates().for_site(FaultSite::Read) > 0.0;
        let mut acc = 0u64;
        for (i, &col) in cols.iter().enumerate() {
            let (word, mask) = self.locate(row, col)?;
            let stored = self.words[word] & mask != 0;
            let sensed = if faulty_reads {
                self.injector.apply(FaultSite::Read, row, col, stored)
            } else {
                stored
            };
            acc |= u64::from(sensed) << (i % 64);
            if i % 64 == 63 {
                out.set_word(i / 64, acc);
                acc = 0;
            }
        }
        if !cols.len().is_multiple_of(64) {
            out.set_word(cols.len() / 64, acc);
        }
        self.stats.record_read(cols.len());
        Ok(())
    }

    /// Presets a contiguous range of columns in `row` to `value` as one
    /// row-parallel write transaction (the partition-parallel preset the
    /// paper's metadata pipeline and area-reclaim paths use). Energy is
    /// identical to per-cell writes (`write_energy` is linear in bits);
    /// latency is one write step for the whole range.
    ///
    /// When the write-fault rate is zero this is a pure word-mask
    /// operation; otherwise each cell passes through the fault injector
    /// like an ordinary write.
    pub fn preset_cells(
        &mut self,
        row: usize,
        cols: std::ops::Range<usize>,
        value: bool,
    ) -> Result<(), ArrayError> {
        if cols.is_empty() {
            return Ok(());
        }
        // Validate both endpoints up front.
        let (first_word, _) = self.locate(row, cols.start)?;
        let (last_word, _) = self.locate(row, cols.end - 1)?;
        let count = cols.len();
        // Permanent defects force the per-cell path too: a stuck cell must
        // keep its pinned value through a preset (per-cell applies at a
        // zero write rate consume no RNG, so transient-only trials keep the
        // word-mask fast path and its byte-identical stream).
        if self.injector.rates().for_site(FaultSite::Write) > 0.0 || self.injector.has_defects() {
            for col in cols {
                let (word, mask) = self.locate(row, col)?;
                let stored = self.injector.apply(FaultSite::Write, row, col, value);
                self.store(word, mask, stored);
            }
        } else {
            let start_bit = cols.start % 64;
            let end_bit = (cols.end - 1) % 64 + 1;
            for word in first_word..=last_word {
                let lo = if word == first_word { start_bit } else { 0 };
                let hi = if word == last_word { end_bit } else { 64 };
                let mask = (u64::MAX >> (64 - (hi - lo))) << lo;
                if value {
                    self.words[word] |= mask;
                } else {
                    self.words[word] &= !mask;
                }
            }
        }
        self.stats.record_write(
            count,
            self.params.write_energy(count),
            self.params.gate_delay_ns(),
        );
        Ok(())
    }

    /// Writes a cell through the *verified periphery* write path: the
    /// Checker's write-and-read-back loop guarantees the intended value
    /// lands, so no transient write fault applies and no RNG state is
    /// consumed — but a permanent stuck-at defect still pins the cell (no
    /// amount of rewriting fixes broken hardware). Costs one ordinary
    /// write. This is the write-back primitive of recompute-style schemes.
    pub fn write_verified(
        &mut self,
        row: usize,
        col: usize,
        value: bool,
    ) -> Result<(), ArrayError> {
        let (word, mask) = self.locate(row, col)?;
        let stored = self.injector.stuck_value(row, col).unwrap_or(value);
        self.store(word, mask, stored);
        self.stats
            .record_write(1, self.params.write_energy(1), self.params.gate_delay_ns());
        Ok(())
    }

    /// Writes `values.len()` cells of a row through the interface as one
    /// transaction (what a Checker correction write-back uses).
    pub fn write_bits(
        &mut self,
        row: usize,
        cols: &[usize],
        values: &BitVec,
    ) -> Result<(), ArrayError> {
        assert_eq!(cols.len(), values.len(), "column/value count mismatch");
        for (i, &col) in cols.iter().enumerate() {
            let (word, mask) = self.locate(row, col)?;
            let stored = self
                .injector
                .apply(FaultSite::Write, row, col, values.get(i));
            self.store(word, mask, stored);
        }
        self.stats.record_write(
            cols.len(),
            self.params.write_energy(cols.len()),
            self.params.gate_delay_ns(),
        );
        Ok(())
    }

    /// Executes one in-array gate operation, returning the value the output
    /// cells ended up holding (after any injected fault).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::OutputArityMismatch`] if the number of output
    /// columns disagrees with the gate kind, or [`ArrayError::OutOfBounds`]
    /// for invalid cell coordinates.
    pub fn execute_gate(&mut self, op: &GateOp) -> Result<bool, ArrayError> {
        self.execute_gate_with(op.kind, op.row, &op.inputs, &op.outputs)
    }

    /// Executes one in-array gate operation given as raw parts. This is the
    /// allocation-free hot path behind [`Self::execute_gate`]: executors can
    /// pass column slices (or stack arrays) directly instead of assembling a
    /// [`GateOp`] with owned `Vec`s per operation.
    ///
    /// # Errors
    ///
    /// As [`Self::execute_gate`].
    pub fn execute_gate_with(
        &mut self,
        kind: GateKind,
        row: usize,
        inputs: &[usize],
        outputs: &[usize],
    ) -> Result<bool, ArrayError> {
        if outputs.len() != kind.output_count() {
            return Err(ArrayError::OutputArityMismatch {
                expected: kind.output_count(),
                got: outputs.len(),
            });
        }
        // Gather input logic values (in-array: no sensing cost) into a stack
        // buffer — gates have at most 4 inputs in practice, so the heap
        // fallback is effectively dead code kept for safety.
        let mut input_buf = [false; 8];
        let mut input_overflow;
        let input_values: &[bool] = if inputs.len() <= input_buf.len() {
            for (slot, &col) in input_buf.iter_mut().zip(inputs) {
                *slot = self.peek(row, col)?;
            }
            &input_buf[..inputs.len()]
        } else {
            input_overflow = Vec::with_capacity(inputs.len());
            for &col in inputs {
                input_overflow.push(self.peek(row, col)?);
            }
            &input_overflow
        };
        let ideal = kind.evaluate(input_values);
        let preset = kind.preset_value();
        // Preset, then switch each output cell independently; faults are per
        // output.
        let mut first_output_value = ideal;
        for (i, &col) in outputs.iter().enumerate() {
            let (word, mask) = self.locate(row, col)?;
            self.store(word, mask, preset);
            let value = self.injector.apply(FaultSite::GateOutput, row, col, ideal);
            self.store(word, mask, value);
            if i == 0 {
                first_output_value = value;
            }
        }
        self.record_gate_cost(kind, outputs.len());
        Ok(first_output_value)
    }

    /// Executes the paper's two-step in-array XOR (`NOR22` then `THR`,
    /// Table I) as one fused call: `s1 = s2 = NOR(a, b)` followed by
    /// `dst = THR(a, b, s1, s2) = a XOR b`.
    ///
    /// Semantically identical to two [`Self::execute_gate_with`] calls —
    /// same fault-injection sites in the same order (s1, s2, then dst),
    /// same cost accounting — but without re-sensing `s1`/`s2` for the THR
    /// step, since their post-fault values are already in hand. This is
    /// ECiM's parity-fold primitive and dominates the Monte Carlo gate-op
    /// count, hence the dedicated path.
    pub fn execute_xor2_step(
        &mut self,
        row: usize,
        a_col: usize,
        b_col: usize,
        s1_col: usize,
        s2_col: usize,
        dst_col: usize,
    ) -> Result<bool, ArrayError> {
        let a = self.peek(row, a_col)?;
        let b = self.peek(row, b_col)?;
        // Step 1: NOR22 into the working cells.
        let nor = !(a | b);
        let (s1_word, s1_mask) = self.locate(row, s1_col)?;
        let s1 = self.injector.apply(FaultSite::GateOutput, row, s1_col, nor);
        self.store(s1_word, s1_mask, s1);
        let (s2_word, s2_mask) = self.locate(row, s2_col)?;
        let s2 = self.injector.apply(FaultSite::GateOutput, row, s2_col, nor);
        self.store(s2_word, s2_mask, s2);
        self.record_gate_cost(GateKind::NOR22, 2);
        // Step 2: THR over (a, b, s1, s2).
        let zeros = u32::from(!a) + u32::from(!b) + u32::from(!s1) + u32::from(!s2);
        let thr = zeros >= 3;
        let (dst_word, dst_mask) = self.locate(row, dst_col)?;
        let out = self
            .injector
            .apply(FaultSite::GateOutput, row, dst_col, thr);
        self.store(dst_word, dst_mask, out);
        self.record_gate_cost(GateKind::THR, 1);
        Ok(out)
    }

    fn record_gate_cost(&mut self, kind: GateKind, output_count: usize) {
        let (energy, is_thr) = match kind {
            GateKind::Nor { outputs } => (self.params.nor_energy(outputs as usize), false),
            GateKind::Not | GateKind::Copy => (self.params.nor_energy(1), false),
            GateKind::Thr { .. } => (self.params.thr_energy(), true),
            GateKind::Preset { .. } => (self.params.write_energy(output_count), false),
        };
        self.stats
            .record_gate(is_thr, energy, self.params.gate_delay_ns());
    }

    /// Executes a batch of gate operations that fire *simultaneously*
    /// (same time step, different rows and/or different partitions),
    /// enforcing the partition rule: no more than one gate operation may be
    /// in progress in one partition of one row at a time (§IV-C).
    ///
    /// Returns the output value of each operation, in order.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::PartitionConflict`] if two operations in the
    /// same row touch the same partition, plus any per-operation error.
    pub fn execute_simultaneous(&mut self, ops: &[GateOp]) -> Result<Vec<bool>, ArrayError> {
        self.partitions.validate_concurrent(ops)?;
        let mut results = Vec::with_capacity(ops.len());
        for op in ops {
            results.push(self.execute_gate(op)?);
        }
        // A simultaneous batch advances logical time by a single gate delay;
        // the per-op accounting above accumulated serial latency, so adjust.
        if ops.len() > 1 {
            self.stats
                .absorb_parallel_latency(ops.len() - 1, self.params.gate_delay_ns());
        }
        self.injector.advance_step();
        Ok(results)
    }

    /// Returns a whole row's logic values (no cost; debugging/validation).
    /// A word-level copy of the packed row.
    pub fn snapshot_row(&self, row: usize) -> Result<BitVec, ArrayError> {
        Ok(BitVec::from_words(self.row_words(row)?.to_vec(), self.cols))
    }

    /// Resets the array in place for a fresh Monte Carlo trial: every cell
    /// back to logic 0 (one memset over the packed words), statistics
    /// cleared, and the fault injector re-seeded with `rates`/`seed`.
    ///
    /// Steady-state trial loops call this instead of allocating a new array;
    /// a reset array is observationally identical to a freshly constructed
    /// one (the arena-purity tests in `nvpim-sweep` assert this bit for
    /// bit). The technology is switched too, so one arena serves campaign
    /// points of different technologies.
    pub fn reset_for_trial(
        &mut self,
        technology: Technology,
        rates: crate::fault::ErrorRates,
        seed: u64,
    ) {
        if self.technology != technology {
            self.technology = technology;
            self.params = technology.parameters();
        }
        self.words.fill(0);
        self.stats = ArrayStats::default();
        self.injector.reset(rates, seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ErrorRates;

    #[test]
    fn poke_peek_roundtrip_and_bounds() {
        let mut a = PimArray::new(Technology::SttMram, 4, 8);
        a.poke(2, 3, true).unwrap();
        assert!(a.peek(2, 3).unwrap());
        assert!(!a.peek(0, 0).unwrap());
        assert_eq!(
            a.poke(4, 0, true),
            Err(ArrayError::OutOfBounds { row: 4, col: 0 })
        );
        assert_eq!(
            a.peek(0, 8),
            Err(ArrayError::OutOfBounds { row: 0, col: 8 })
        );
    }

    #[test]
    fn standard_array_is_256x256() {
        let a = PimArray::standard(Technology::ReRam);
        assert_eq!((a.rows(), a.cols()), (256, 256));
    }

    #[test]
    fn nor_gate_executes_truth_table_in_array() {
        let mut a = PimArray::new(Technology::SttMram, 1, 8);
        for (x, y, expected) in [
            (false, false, true),
            (false, true, false),
            (true, false, false),
            (true, true, false),
        ] {
            a.poke(0, 0, x).unwrap();
            a.poke(0, 1, y).unwrap();
            let op = GateOp::new(GateKind::NOR2, 0, vec![0, 1], vec![2]);
            let out = a.execute_gate(&op).unwrap();
            assert_eq!(out, expected);
            assert_eq!(a.peek(0, 2).unwrap(), expected);
        }
    }

    #[test]
    fn nor22_writes_both_outputs() {
        let mut a = PimArray::new(Technology::SotSheMram, 1, 8);
        a.poke(0, 0, false).unwrap();
        a.poke(0, 1, false).unwrap();
        let op = GateOp::new(GateKind::NOR22, 0, vec![0, 1], vec![3, 6]);
        assert!(a.execute_gate(&op).unwrap());
        assert!(a.peek(0, 3).unwrap());
        assert!(a.peek(0, 6).unwrap());
    }

    #[test]
    fn output_arity_mismatch_detected() {
        let mut a = PimArray::new(Technology::SttMram, 1, 8);
        let op = GateOp::new(GateKind::NOR22, 0, vec![0, 1], vec![2]);
        assert_eq!(
            a.execute_gate(&op),
            Err(ArrayError::OutputArityMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn two_step_xor_in_array_matches_boolean_xor() {
        for x in [false, true] {
            for y in [false, true] {
                let mut a = PimArray::new(Technology::SttMram, 1, 8);
                a.poke(0, 0, x).unwrap();
                a.poke(0, 1, y).unwrap();
                // s1 = s2 = NOR22(a, b) into cols 2 and 3
                a.execute_gate(&GateOp::new(GateKind::NOR22, 0, vec![0, 1], vec![2, 3]))
                    .unwrap();
                // out = THR(a, b, s1, s2) into col 4
                let out = a
                    .execute_gate(&GateOp::new(GateKind::THR, 0, vec![0, 1, 2, 3], vec![4]))
                    .unwrap();
                assert_eq!(out, x ^ y, "({x}, {y})");
            }
        }
    }

    #[test]
    fn gate_energy_and_counts_accumulate() {
        let mut a = PimArray::new(Technology::SttMram, 1, 8);
        a.execute_gate(&GateOp::new(GateKind::NOR2, 0, vec![0, 1], vec![2]))
            .unwrap();
        a.execute_gate(&GateOp::new(GateKind::THR, 0, vec![0, 1, 2, 2], vec![3]))
            .unwrap();
        let p = Technology::SttMram.parameters();
        let stats = a.stats();
        assert_eq!(stats.gate_ops, 2);
        assert_eq!(stats.thr_ops, 1);
        assert!((stats.energy_fj - (p.nor_energy(1) + p.thr_energy())).abs() < 1e-9);
        assert!(stats.latency_ns >= 2.0 * p.gate_delay_ns());
    }

    #[test]
    fn reads_and_writes_are_metered() {
        let mut a = PimArray::new(Technology::ReRam, 2, 16);
        let cols: Vec<usize> = (0..8).collect();
        a.write_bits(0, &cols, &BitVec::from_u64(0xA5, 8)).unwrap();
        let read = a.read_bits(0, &cols).unwrap();
        assert_eq!(read.to_u64(), 0xA5);
        assert_eq!(a.stats().bits_written, 8);
        assert_eq!(a.stats().bits_read, 8);
        assert!(a.stats().energy_fj > 0.0);
    }

    #[test]
    fn write_faults_corrupt_stored_value() {
        let mut a =
            PimArray::new(Technology::SttMram, 1, 4).with_fault_injector(FaultInjector::new(
                ErrorRates {
                    write: 1.0,
                    ..ErrorRates::NONE
                },
                9,
            ));
        a.write_cell(0, 0, true).unwrap();
        assert!(!a.peek(0, 0).unwrap());
        assert_eq!(a.fault_injector().fault_count(), 1);
    }

    #[test]
    fn gate_faults_flip_output() {
        let mut a =
            PimArray::new(Technology::SttMram, 1, 4).with_fault_injector(FaultInjector::new(
                ErrorRates {
                    gate: 1.0,
                    ..ErrorRates::NONE
                },
                11,
            ));
        a.poke(0, 0, false).unwrap();
        a.poke(0, 1, false).unwrap();
        let out = a
            .execute_gate(&GateOp::new(GateKind::NOR2, 0, vec![0, 1], vec![2]))
            .unwrap();
        assert!(
            !out,
            "NOR(0,0)=1 must be flipped to 0 by the injected fault"
        );
    }

    #[test]
    fn simultaneous_ops_in_different_rows_advance_time_once() {
        let mut a = PimArray::new(Technology::SttMram, 4, 8);
        let ops: Vec<GateOp> = (0..4)
            .map(|r| GateOp::new(GateKind::NOR2, r, vec![0, 1], vec![2]))
            .collect();
        a.execute_simultaneous(&ops).unwrap();
        let delay = Technology::SttMram.parameters().gate_delay_ns();
        assert!((a.stats().latency_ns - delay).abs() < 1e-9);
        assert_eq!(a.stats().gate_ops, 4);
    }

    #[test]
    fn snapshot_row_reflects_loads() {
        let mut a = PimArray::new(Technology::ReRam, 2, 8);
        let row: BitVec = (0..8).map(|i| i % 2 == 0).collect();
        a.load_row(1, &row).unwrap();
        assert_eq!(a.snapshot_row(1).unwrap(), row);
    }

    #[test]
    fn packed_rows_expose_word_level_read_write_compare() {
        let mut a = PimArray::new(Technology::SttMram, 3, 200);
        let pattern: BitVec = (0..200).map(|i| (i * 13) % 7 < 3).collect();
        a.load_row(0, &pattern).unwrap();
        a.load_row(2, &pattern).unwrap();
        // Word-level row access matches the BitVec's packed words exactly.
        assert_eq!(a.row_words(0).unwrap(), pattern.words());
        assert!(a.rows_equal(0, 2).unwrap());
        assert!(!a.rows_equal(0, 1).unwrap());
        a.poke(2, 199, !pattern.get(199)).unwrap();
        assert!(!a.rows_equal(0, 2).unwrap());
        assert!(a.row_words(3).is_err());
    }

    #[test]
    fn preset_cells_is_equivalent_to_per_cell_writes() {
        let mut a = PimArray::new(Technology::ReRam, 1, 130);
        for col in 0..130 {
            a.poke(0, col, true).unwrap();
        }
        a.preset_cells(0, 3..97, false).unwrap();
        let mut b = PimArray::new(Technology::ReRam, 1, 130);
        for col in 0..130 {
            b.poke(0, col, true).unwrap();
        }
        for col in 3..97 {
            b.write_cell(0, col, false).unwrap();
        }
        assert_eq!(a.snapshot_row(0).unwrap(), b.snapshot_row(0).unwrap());
        // Same bit count and energy; one transaction instead of 94.
        assert_eq!(a.stats().bits_written, b.stats().bits_written);
        assert!((a.stats().energy_fj - b.stats().energy_fj).abs() < 1e-9);
        assert!(a.stats().latency_ns < b.stats().latency_ns);
    }

    #[test]
    fn preset_cells_passes_through_the_fault_injector() {
        let mut a =
            PimArray::new(Technology::SttMram, 1, 64).with_fault_injector(FaultInjector::new(
                ErrorRates {
                    write: 1.0,
                    ..ErrorRates::NONE
                },
                3,
            ));
        a.preset_cells(0, 0..64, false).unwrap();
        // write rate 1.0 flips every preset: all cells end up 1.
        assert_eq!(a.snapshot_row(0).unwrap().count_ones(), 64);
        assert_eq!(a.fault_injector().fault_count(), 64);
    }

    #[test]
    fn fused_xor_step_matches_two_gate_calls() {
        for x in [false, true] {
            for y in [false, true] {
                let mut fused = PimArray::new(Technology::SttMram, 1, 8);
                fused.poke(0, 0, x).unwrap();
                fused.poke(0, 1, y).unwrap();
                let out = fused.execute_xor2_step(0, 0, 1, 2, 3, 4).unwrap();
                assert_eq!(out, x ^ y, "({x}, {y})");

                let mut generic = PimArray::new(Technology::SttMram, 1, 8);
                generic.poke(0, 0, x).unwrap();
                generic.poke(0, 1, y).unwrap();
                generic
                    .execute_gate_with(GateKind::NOR22, 0, &[0, 1], &[2, 3])
                    .unwrap();
                generic
                    .execute_gate_with(GateKind::THR, 0, &[0, 1, 2, 3], &[4])
                    .unwrap();
                assert_eq!(
                    fused.snapshot_row(0).unwrap(),
                    generic.snapshot_row(0).unwrap()
                );
                assert_eq!(fused.stats().gate_ops, generic.stats().gate_ops);
                assert!(
                    (fused.stats().energy_fj - generic.stats().energy_fj).abs() < 1e-12,
                    "fused XOR must cost exactly what the two gates cost"
                );
            }
        }
    }

    #[test]
    fn fused_xor_step_consumes_the_same_fault_stream_as_two_gate_calls() {
        // With gate faults enabled, the fused path must draw the injector
        // in the same order (s1, s2, dst) as the two-gate sequence.
        let rates = ErrorRates {
            gate: 0.5,
            ..ErrorRates::NONE
        };
        for seed in 0..20u64 {
            let mut fused = PimArray::new(Technology::SttMram, 1, 8)
                .with_fault_injector(FaultInjector::new(rates, seed));
            fused.poke(0, 0, true).unwrap();
            fused.execute_xor2_step(0, 0, 1, 2, 3, 4).unwrap();

            let mut generic = PimArray::new(Technology::SttMram, 1, 8)
                .with_fault_injector(FaultInjector::new(rates, seed));
            generic.poke(0, 0, true).unwrap();
            generic
                .execute_gate_with(GateKind::NOR22, 0, &[0, 1], &[2, 3])
                .unwrap();
            generic
                .execute_gate_with(GateKind::THR, 0, &[0, 1, 2, 3], &[4])
                .unwrap();

            assert_eq!(
                fused.snapshot_row(0).unwrap(),
                generic.snapshot_row(0).unwrap(),
                "seed {seed}"
            );
            assert_eq!(
                fused.fault_injector().log(),
                generic.fault_injector().log(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn stuck_cells_pin_every_store_path_but_not_pokes() {
        let rates = ErrorRates::NONE.with_stuck_at(0.15);
        let mut a = PimArray::new(Technology::ReramCrossbar, 2, 128)
            .with_fault_injector(FaultInjector::new(rates, 0xABCD));
        let mut checked_defect = false;
        for col in 0..128 {
            let stuck = a.fault_injector().stuck_value(0, col);
            a.write_cell(0, col, true).unwrap();
            assert_eq!(a.peek(0, col).unwrap(), stuck.unwrap_or(true), "col {col}");
            // The verified periphery path also cannot repair broken cells.
            a.write_verified(0, col, false).unwrap();
            assert_eq!(a.peek(0, col).unwrap(), stuck.unwrap_or(false), "col {col}");
            checked_defect |= stuck.is_some();
        }
        assert!(
            checked_defect,
            "density 0.15 over 128 cells must hit defects"
        );
        // Presets take the per-cell path and respect the defect map.
        a.preset_cells(0, 0..128, true).unwrap();
        for col in 0..128 {
            let stuck = a.fault_injector().stuck_value(0, col);
            assert_eq!(a.peek(0, col).unwrap(), stuck.unwrap_or(true));
        }
        // Raw pokes bypass the defect model (test-fixture loads).
        let defect_col = (0..128)
            .find(|&c| a.fault_injector().stuck_value(0, c) == Some(false))
            .expect("an SA0 cell exists at this density");
        a.poke(0, defect_col, true).unwrap();
        assert!(a.peek(0, defect_col).unwrap());
    }

    #[test]
    fn gate_outputs_land_on_stuck_cells_pinned() {
        let rates = ErrorRates::NONE.with_stuck_at(1.0);
        let mut a = PimArray::new(Technology::ReramCrossbar, 1, 8)
            .with_fault_injector(FaultInjector::new(rates, 7));
        let stuck = a.fault_injector().stuck_value(0, 2).unwrap();
        a.execute_gate_with(GateKind::NOR2, 0, &[0, 1], &[2])
            .unwrap();
        assert_eq!(a.peek(0, 2).unwrap(), stuck);
    }

    #[test]
    fn reset_for_trial_restores_a_pristine_array() {
        let rates = ErrorRates {
            gate: 0.1,
            ..ErrorRates::NONE
        };
        let mut reused = PimArray::new(Technology::SttMram, 4, 64)
            .with_fault_injector(FaultInjector::new(rates, 1));
        // Dirty it thoroughly.
        for col in 0..64 {
            reused.write_cell(2, col, true).unwrap();
        }
        reused
            .execute_gate_with(GateKind::NOR2, 1, &[0, 1], &[2])
            .unwrap();
        // Reset must match a freshly built array in contents, stats and
        // fault stream — including a switch to another technology.
        reused.reset_for_trial(Technology::ReRam, rates, 42);
        let mut fresh = PimArray::new(Technology::ReRam, 4, 64)
            .with_fault_injector(FaultInjector::new(rates, 42));
        assert_eq!(reused.technology(), Technology::ReRam);
        for row in 0..4 {
            assert_eq!(
                reused.snapshot_row(row).unwrap(),
                fresh.snapshot_row(row).unwrap()
            );
        }
        assert_eq!(reused.stats().gate_ops, 0);
        assert_eq!(reused.stats().bits_written, 0);
        for i in 0..200 {
            assert_eq!(
                reused
                    .execute_gate_with(GateKind::NOR2, 0, &[0, 1], &[2])
                    .unwrap(),
                fresh
                    .execute_gate_with(GateKind::NOR2, 0, &[0, 1], &[2])
                    .unwrap(),
                "op {i}"
            );
        }
        assert_eq!(reused.fault_injector().log(), fresh.fault_injector().log());
    }
}
