//! Statistical validation of the stratified rare-event estimator.
//!
//! Three claims are tested, per the estimator's contract:
//!
//! 1. **Coverage** — over a grid of (scheme × rate) points, the stratified
//!    estimate's 95% Wilson interval covers the exact-mode observed rate
//!    (up to the exact mode's own sampling noise, since both estimates are
//!    finite-sample).
//! 2. **Unbiasedness** — the window-truncated geometric redraw plus `P1`
//!    reweighting is *exactly* unbiased: analytically (the reweighted pmf
//!    mass below any threshold is identically the unconditional
//!    probability) and empirically on a synthetic known-probability
//!    workload.
//! 3. **Byte stability** — exact-mode reports keep `schema_version` 1 and
//!    carry no `estimator` key, and every registered scheme passes the
//!    analytic-clean cross-check the fast path's legality rests on.

use nvpim_sim::fault::FaultInjector;
use nvpim_sim::technology::Technology;
use nvpim_sweep::{
    run_campaign, EstimatorMode, ProtectionConfig, SweepPlan, SweepWorkload, TrialHarness,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn grid_plan(estimator: EstimatorMode, seeds_per_point: u64) -> SweepPlan {
    SweepPlan {
        workloads: vec![SweepWorkload::Mac {
            acc_bits: 8,
            mul_bits: 4,
        }],
        technologies: vec![Technology::SttMram],
        protections: vec![
            ProtectionConfig::UNPROTECTED,
            ProtectionConfig::ECIM,
            ProtectionConfig::TRIM,
            ProtectionConfig::PARITY_DETECT,
        ],
        gate_error_rates: vec![3e-4, 1e-3],
        seeds_per_point,
        campaign_seed: 0xE571_3A7E,
        estimator,
        kind: nvpim_sweep::CampaignKind::Error,
        stuck_at_rate: 0.0,
    }
}

#[test]
fn stratified_cis_cover_exact_mode_rates_across_schemes_and_rates() {
    let exact = run_campaign(&grid_plan(EstimatorMode::Exact, 128)).unwrap();
    let stratified = run_campaign(&grid_plan(EstimatorMode::Stratified, 64)).unwrap();
    assert_eq!(exact.schema_version, 1);
    assert_eq!(stratified.schema_version, 2);
    assert_eq!(exact.points.len(), stratified.points.len());

    for (e, s) in exact.points.iter().zip(&stratified.points) {
        assert_eq!(
            (e.protection.as_str(), e.gate_error_rate),
            (s.protection.as_str(), s.gate_error_rate)
        );
        assert!(e.estimator.is_none(), "exact points carry no estimator");
        let est = s
            .estimator
            .as_ref()
            .unwrap_or_else(|| panic!("stratified point {} lacks an estimator", s.protection));
        assert!(est.stratified, "grid rates lie in (0, 1): must condition");
        assert!(est.decisions_per_trial > 0);
        assert!(est.fault_probability > 0.0 && est.fault_probability < 1.0);
        // Every conditioned trial carries at least one injected fault.
        assert!(
            s.faults_injected >= s.trials,
            "{} @ {}: {} faults over {} conditioned trials",
            s.protection,
            s.gate_error_rate,
            s.faults_injected,
            s.trials
        );

        // Coverage up to the exact mode's own binomial noise: the exact
        // observed rate is itself ±2σ off the true rate the CI targets.
        let n_exact = (e.trials - e.exec_errors) as f64;
        for (label, exact_rate, lo, hi) in [
            (
                "output_error_rate",
                e.output_error_rate,
                est.output_error_ci_low,
                est.output_error_ci_high,
            ),
            (
                "silent_failure_rate",
                e.silent_failures as f64 / n_exact,
                est.silent_failure_ci_low,
                est.silent_failure_ci_high,
            ),
        ] {
            let slack = 2.0 * (hi.max(exact_rate) / n_exact).sqrt();
            assert!(
                exact_rate >= lo - slack && exact_rate <= hi + slack,
                "{} @ {}: {label} {exact_rate:.4e} outside CI [{lo:.4e}, {hi:.4e}] ± {slack:.4e}",
                s.protection,
                s.gate_error_rate,
            );
        }
    }
}

#[test]
fn rare_rates_become_tractable_with_guaranteed_conditional_samples() {
    // The point of the estimator: at a gate rate of 1e-6, eight exact
    // trials would essentially never observe a fault; eight conditioned
    // trials all do, and stand for hundreds to thousands of effective
    // plain trials (1/P1, which depends on each scheme's decision window).
    let mut plan = grid_plan(EstimatorMode::Stratified, 8);
    plan.gate_error_rates = vec![1e-6];
    let report = run_campaign(&plan).unwrap();
    for p in &report.points {
        let est = p.estimator.as_ref().expect("estimator present");
        assert!(est.stratified);
        assert!(
            p.faults_injected >= p.trials,
            "conditioning guarantees faults"
        );
        assert!(
            est.effective_trials > 100.0 * p.trials as f64,
            "{}: {} conditioned trials must stand for >100x effective ones, got {}",
            p.protection,
            p.trials,
            est.effective_trials
        );
        assert!(est.output_error_ci_high < 1.0, "CI reflects the tiny P1");
    }
}

#[test]
fn exact_mode_reports_keep_schema_version_one_and_no_estimator_key() {
    let mut plan = SweepPlan::quick();
    plan.seeds_per_point = 2;
    let json = run_campaign(&plan).unwrap().to_json();
    assert!(json.contains("\"schema_version\": 1"));
    assert!(
        !json.contains("estimator"),
        "exact-mode bytes must be schema-1 stable"
    );
}

#[test]
fn every_registered_scheme_passes_the_analytic_clean_cross_check() {
    // The fast path's legality check: two clean probes with different
    // inputs must agree on the decision window and the clean outcome for
    // every registered scheme (each declares `analytic_clean`).
    for protection in ProtectionConfig::registry_sweep() {
        let harness = TrialHarness::new(
            SweepWorkload::Mac {
                acc_bits: 8,
                mul_bits: 4,
            },
            protection,
            protection.design_config(Technology::SttMram),
            1e-4,
        )
        .unwrap();
        let decisions = harness.clean_decisions().unwrap_or_else(|| {
            panic!(
                "{} failed the clean-profile cross-check",
                protection.label()
            )
        });
        assert!(
            decisions > 0,
            "{} must make gate decisions",
            protection.label()
        );
    }
}

/// `P(first fault among the first t decisions)` for per-decision rate `p`.
fn unconditional_threshold_probability(p: f64, t: u64) -> f64 {
    1.0 - (1.0 - p).powi(t as i32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Analytic unbiasedness: the truncated-geometric pmf, reweighted by
    /// `P1`, puts *exactly* the unconditional probability mass below every
    /// threshold — reweighting introduces no bias at any (p, window, t).
    #[test]
    fn reweighted_truncated_mass_matches_the_unconditional_probability(
        p in 1e-4f64..0.2,
        window in 1u64..1500,
        t_frac in 0.0f64..1.0,
    ) {
        let t = 1 + (t_frac * (window - 1) as f64) as u64; // 1..=window
        let p1 = FaultInjector::fault_within_probability(p, window);
        // Sum of the conditioned pmf (1-p)^s * p / P1 for s < t.
        let mass: f64 = (0..t).map(|s| (1.0 - p).powi(s as i32) * p / p1).sum();
        let expected = unconditional_threshold_probability(p, t);
        let err = (p1 * mass - expected).abs();
        prop_assert!(
            err < 1e-12,
            "p={p}, window={window}, t={t}: reweighted mass {} vs exact {expected}",
            p1 * mass
        );
    }
}

#[test]
fn sampled_reweighted_estimate_is_unbiased_on_a_synthetic_workload() {
    // Synthetic known-probability workload: "failure" = the first fault
    // lands among the first `t` of `window` decisions. True unconditional
    // probability: 1 - (1-p)^t. The stratified estimate draws S from the
    // window-truncated geometric and reports P1 * mean(S < t).
    let p = 2e-3;
    let window = 800u64;
    let t = 250u64;
    let trials = 200_000u64;
    let p1 = FaultInjector::fault_within_probability(p, window);
    let mut rng = ChaCha8Rng::seed_from_u64(0x5717_A71F);
    let hits = (0..trials)
        .filter(|_| FaultInjector::sample_truncated_geometric(&mut rng, p, window) < t)
        .count() as f64;
    let estimate = p1 * hits / trials as f64;
    let expected = unconditional_threshold_probability(p, t);
    // 5σ band on the reweighted binomial estimate.
    let q = expected / p1;
    let sigma = p1 * (q * (1.0 - q) / trials as f64).sqrt();
    assert!(
        (estimate - expected).abs() < 5.0 * sigma,
        "estimate {estimate:.6e} vs true {expected:.6e} (sigma {sigma:.2e})"
    );
}
