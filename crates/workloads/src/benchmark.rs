//! The paper's benchmark suite (§V): `mm8/16/32/64`, `mnist1/2/3/4`,
//! `fft8/16/32/64`, each described by its per-row netlist and by how many
//! rows/arrays of the fleet execute it in parallel.

use nvpim_compiler::netlist::Netlist;
use nvpim_core::system::WorkloadShape;
use serde::{Deserialize, Serialize};

use crate::{fft, matmul, mnist};

/// Rows per PiM array in the paper's configuration.
const ROWS_PER_ARRAY: usize = 256;
/// Maximum arrays in the fleet.
const MAX_ARRAYS: usize = 16;

/// One benchmark of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// Dense `dim × dim` fixed-point matrix multiplication.
    MatMul {
        /// Matrix dimension (8, 16, 32 or 64 in the paper).
        dim: usize,
    },
    /// Two-layer MLP over 28×28 images with quantized weights.
    Mnist {
        /// Weight precision in bits (1–4 in the paper).
        weight_bits: usize,
    },
    /// Radix-2 FFT with butterfly arithmetic on complex fixed point.
    Fft {
        /// Transform size (8, 16, 32 or 64 in the paper).
        points: usize,
    },
}

impl Benchmark {
    /// The twelve benchmarks of the paper's evaluation, in Fig. 7 / Table IV
    /// order.
    pub fn paper_suite() -> Vec<Benchmark> {
        let mut suite = Vec::new();
        for dim in [8usize, 16, 32, 64] {
            suite.push(Benchmark::MatMul { dim });
        }
        for weight_bits in 1..=4usize {
            suite.push(Benchmark::Mnist { weight_bits });
        }
        for points in [8usize, 16, 32, 64] {
            suite.push(Benchmark::Fft { points });
        }
        suite
    }

    /// A reduced suite (the smallest member of each family) for quick runs
    /// and continuous testing.
    pub fn smoke_suite() -> Vec<Benchmark> {
        vec![
            Benchmark::MatMul { dim: 8 },
            Benchmark::Mnist { weight_bits: 1 },
            Benchmark::Fft { points: 8 },
        ]
    }

    /// The benchmark's name as used in the paper (e.g. `"mm32"`).
    pub fn name(&self) -> String {
        match self {
            Benchmark::MatMul { dim } => format!("mm{dim}"),
            Benchmark::Mnist { weight_bits } => format!("mnist{weight_bits}"),
            Benchmark::Fft { points } => format!("fft{points}"),
        }
    }

    /// Builds the per-row netlist (the program every active row executes on
    /// its own data).
    pub fn row_netlist(&self) -> Netlist {
        match self {
            Benchmark::MatMul { dim } => matmul::row_netlist(*dim),
            Benchmark::Mnist { weight_bits } => mnist::row_netlist(*weight_bits),
            Benchmark::Fft { points } => fft::row_netlist(*points),
        }
    }

    /// Number of rows (across the fleet) that execute the per-row program in
    /// parallel.
    pub fn parallel_rows(&self) -> usize {
        match self {
            // One row per output element.
            Benchmark::MatMul { dim } => dim * dim,
            // Each hidden neuron's dot product is split over ROW_SPLIT rows.
            Benchmark::Mnist { .. } => mnist::HIDDEN_NEURONS * mnist::ROW_SPLIT,
            // One row per butterfly lane.
            Benchmark::Fft { points } => (points / 2).max(1),
        }
    }

    /// Number of arrays used (at most 16, per the paper).
    pub fn arrays(&self) -> usize {
        self.parallel_rows()
            .div_ceil(ROWS_PER_ARRAY)
            .clamp(1, MAX_ARRAYS)
    }

    /// The workload shape consumed by the system model.
    pub fn shape(&self) -> WorkloadShape {
        WorkloadShape::new(self.name(), self.parallel_rows(), self.arrays())
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_matches_the_evaluation_section() {
        let suite = Benchmark::paper_suite();
        assert_eq!(suite.len(), 12);
        let names: Vec<String> = suite.iter().map(Benchmark::name).collect();
        assert_eq!(
            names,
            vec![
                "mm8", "mm16", "mm32", "mm64", "mnist1", "mnist2", "mnist3", "mnist4", "fft8",
                "fft16", "fft32", "fft64"
            ]
        );
    }

    #[test]
    fn array_counts_respect_the_sixteen_array_fleet() {
        for b in Benchmark::paper_suite() {
            let arrays = b.arrays();
            assert!((1..=16).contains(&arrays), "{b}: {arrays}");
        }
        // mm64 needs the full fleet (4096 rows).
        assert_eq!(Benchmark::MatMul { dim: 64 }.arrays(), 16);
        // The MLP hidden layer fills exactly one array.
        assert_eq!(Benchmark::Mnist { weight_bits: 3 }.parallel_rows(), 256);
        assert_eq!(Benchmark::Mnist { weight_bits: 3 }.arrays(), 1);
    }

    #[test]
    fn netlist_sizes_grow_within_each_family() {
        let g = |b: Benchmark| b.row_netlist().gate_count();
        assert!(g(Benchmark::MatMul { dim: 16 }) > g(Benchmark::MatMul { dim: 8 }));
        assert!(g(Benchmark::Mnist { weight_bits: 2 }) > g(Benchmark::Mnist { weight_bits: 1 }));
        assert!(g(Benchmark::Fft { points: 16 }) > g(Benchmark::Fft { points: 8 }));
    }

    #[test]
    fn shape_carries_the_benchmark_name() {
        let shape = Benchmark::Fft { points: 32 }.shape();
        assert_eq!(shape.name, "fft32");
        assert_eq!(shape.parallel_rows, 16);
    }

    #[test]
    fn smoke_suite_is_a_subset_of_the_paper_suite() {
        let paper = Benchmark::paper_suite();
        for b in Benchmark::smoke_suite() {
            assert!(paper.contains(&b));
        }
    }
}
