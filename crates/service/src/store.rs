//! Content-addressed report store.
//!
//! Reports are keyed by the submitted plan's [content digest] — the SHA-256
//! of its canonical JSON. Because a campaign report is a pure function of
//! its plan (the engine's determinism guarantee), a digest hit can be
//! served *byte-identically* with zero recompute: no schedule compilation,
//! no trials, not even re-serialization (the stored JSON string itself is
//! shared out behind an `Arc`).
//!
//! [content digest]: nvpim_sweep::SweepPlan::content_digest

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Default report-count cap used by [`ReportStore::new`].
pub const DEFAULT_REPORT_CAPACITY: usize = 1024;

/// In-memory content-addressed store of finished report JSON documents,
/// bounded to `capacity` reports: beyond the cap the oldest-inserted
/// report is evicted (reports dominate daemon memory — job records are
/// bounded separately by `ServiceConfig::max_tracked_jobs`). An evicted
/// plan simply recomputes on resubmission; determinism guarantees the
/// recomputed bytes are identical.
#[derive(Debug)]
pub struct ReportStore {
    entries: HashMap<String, Arc<String>>,
    /// Digests in insertion order, for FIFO eviction.
    order: VecDeque<String>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Default for ReportStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ReportStore {
    /// An empty store with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_REPORT_CAPACITY)
    }

    /// An empty store evicting beyond `capacity` reports.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up the report for a plan digest, counting a hit or miss.
    pub fn get(&mut self, digest: &str) -> Option<Arc<String>> {
        match self.entries.get(digest) {
            Some(report) => {
                self.hits += 1;
                Some(Arc::clone(report))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a finished report under its plan digest, evicting the
    /// oldest-inserted report when the store is at capacity.
    ///
    /// Determinism makes double-insertion benign (both writers hold the
    /// same bytes), so last-write-wins needs no further coordination.
    pub fn insert(&mut self, digest: String, report: Arc<String>) {
        if self.entries.insert(digest.clone(), report).is_none() {
            self.order.push_back(digest);
            while self.entries.len() > self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.entries.remove(&oldest);
                } else {
                    break;
                }
            }
        }
    }

    /// Number of distinct reports stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no reports.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime lookup hits (submissions served without recompute).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut store = ReportStore::with_capacity(2);
        for (d, r) in [
            ("d1", "{\"a\":1}"),
            ("d2", "{\"a\":2}"),
            ("d3", "{\"a\":3}"),
        ] {
            store.insert(d.into(), Arc::new(r.into()));
        }
        assert_eq!(store.len(), 2);
        assert!(store.get("d1").is_none(), "oldest evicted");
        assert!(store.get("d2").is_some());
        assert!(store.get("d3").is_some());
        // Re-inserting an existing digest neither duplicates nor evicts.
        store.insert("d3".into(), Arc::new("{\"a\":3}".into()));
        assert_eq!(store.len(), 2);
        assert!(store.get("d2").is_some());
    }

    #[test]
    fn hit_returns_the_exact_stored_bytes() {
        let mut store = ReportStore::new();
        assert!(store.get("d1").is_none());
        let report = Arc::new(String::from("{\"x\":1}"));
        store.insert("d1".into(), Arc::clone(&report));
        let back = store.get("d1").unwrap();
        assert!(Arc::ptr_eq(&back, &report));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.len(), 1);
    }
}
