//! # nvpim-compiler
//!
//! The application-mapping flow of the `nvpim` reproduction of *"On Error
//! Correction for Nonvolatile Processing-In-Memory"* (ISCA 2024): §II-B's
//! three compilation steps, realized as
//!
//! 1. **Intermediate code generation** — workloads express fixed-point
//!    arithmetic with [`builder::CircuitBuilder`], which identifies the
//!    multi-bit operations and their operands;
//! 2. **Gate-level opcode generation** — the builder lowers everything to
//!    the PiM-native NOR / THR / copy gate library ([`netlist`]);
//! 3. **Binary instruction translation** — [`schedule::map_netlist`] assigns
//!    physical row columns with a greedy scratch allocator (area reclaims,
//!    spills) and [`program::execute_schedule`] drives the resulting
//!    operations on a simulated array for functional validation.
//!
//! # Examples
//!
//! ```
//! use nvpim_compiler::builder::CircuitBuilder;
//! use nvpim_compiler::layout::RowLayout;
//! use nvpim_compiler::schedule::map_netlist;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 4x4-bit multiplier, mapped onto a 256-column row.
//! let mut b = CircuitBuilder::new();
//! let x = b.input_word(4);
//! let y = b.input_word(4);
//! let p = b.mul_unsigned(&x, &y);
//! b.mark_output_word(&p);
//! let netlist = b.finish();
//!
//! let schedule = map_netlist(&netlist, RowLayout::unprotected(256))?;
//! assert!(schedule.gate_op_count() > 0);
//! assert!(schedule.depth() > 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod builder;
pub mod layout;
pub mod netlist;
pub mod program;
pub mod schedule;

pub use alloc::{ReclaimEvent, ScratchAllocator};
pub use builder::{CircuitBuilder, Word};
pub use layout::RowLayout;
pub use netlist::{Gate, LogicOp, NetId, Netlist, NetlistStats};
pub use program::{execute_schedule, ExecError};
pub use schedule::{map_netlist, LevelProfile, MapError, RowSchedule, ScheduledGate};
