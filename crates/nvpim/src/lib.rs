//! # nvpim
//!
//! Facade crate of the `nvpim` workspace — a from-scratch Rust
//! reproduction of *"On Error Correction for Nonvolatile
//! Processing-In-Memory"* (Cılasun et al., ISCA 2024) — and its **stable
//! public surface**: downstream code (the CLIs, the service daemon, the
//! benches, the examples) depends on this one crate instead of reaching
//! into the internal layer crates.
//!
//! | Layer | Crate | Re-export |
//! |---|---|---|
//! | ECC substrate (GF(2), Hamming, BCH, voting) | `nvpim-ecc` | [`ecc`] |
//! | PiM array substrate (cells, gates, faults, electrical model) | `nvpim-sim` | [`sim`] |
//! | Application mapping (NOR synthesis, scheduling, reclaims) | `nvpim-compiler` | [`compiler`] |
//! | Scheme registry, executors, Checker, SEP analysis, system model | `nvpim-core` | [`core`] |
//! | Benchmarks (mm, mnist, fft) | `nvpim-workloads` | [`workloads`] |
//! | Monte Carlo fault-sweep campaigns | `nvpim-sweep` | [`sweep`] |
//! | Offline metrics core (spans, counters, histograms) | `nvpim-telemetry` | [`telemetry`] |
//! | Campaign daemon, NDJSON protocol, client | `nvpim-service` | [`service`] |
//!
//! Protection schemes are **plugins**: every scheme is a
//! [`SchemeRuntime`] registered in the compile-time [`schemes`]`()`
//! registry, and everything downstream — executors, the sweep engine, the
//! service wire protocol, the CLIs and this facade's builder — dispatches
//! through the trait. Adding a scheme is one `impl` file plus one registry
//! line; see `docs/api.md`.
//!
//! # The builder entry point
//!
//! [`Campaign::builder`] assembles and runs a Monte Carlo fault-injection
//! campaign without touching any internal crate:
//!
//! ```
//! use nvpim::{Campaign, ProtectionScheme, Technology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = Campaign::builder()
//!     .technology(Technology::SttMram)
//!     .scheme(ProtectionScheme::Ecim)
//!     .scheme(ProtectionScheme::ParityDetect)
//!     .rate_grid([1e-4, 1e-3])
//!     .trials(8)
//!     .build()?
//!     .run()?;
//! assert_eq!(report.total_trials, 2 * 2 * 8);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub use nvpim_compiler as compiler;
pub use nvpim_core as core;
pub use nvpim_ecc as ecc;
pub use nvpim_service as service;
pub use nvpim_sim as sim;
pub use nvpim_sweep as sweep;
pub use nvpim_telemetry as telemetry;
pub use nvpim_workloads as workloads;

pub use nvpim_core::config::{DesignConfig, GateStyle, ProtectionScheme, SimBackend};
pub use nvpim_core::scheme::{SchemeCapabilities, SchemeRuntime};
pub use nvpim_sim::technology::Technology;
pub use nvpim_sweep::{
    AccuracySummary, CampaignKind, EstimatorMode, ExecutionBackend, ProtectionConfig, SweepError,
    SweepPlan, SweepReport, SweepWorkload,
};
pub use nvpim_telemetry::{Telemetry, TelemetrySnapshot};
pub use nvpim_workloads::Benchmark;

/// The compile-time protection-scheme registry, in stable wire order —
/// the list behind `nvpim-cli schemes` and the proptest generators.
pub fn schemes() -> &'static [&'static dyn SchemeRuntime] {
    nvpim_core::scheme::registry()
}

/// The capability sheet of every registered scheme, evaluated at the
/// paper's standard design point (STT-MRAM defaults) — the single source
/// behind `nvpim-cli schemes` and the harness binaries' `--list-schemes`.
pub fn scheme_capabilities() -> Vec<(ProtectionScheme, SchemeCapabilities)> {
    ProtectionScheme::all()
        .map(|scheme| {
            let config = DesignConfig::for_scheme(scheme, Technology::SttMram);
            (scheme, scheme.runtime().capabilities(&config))
        })
        .collect()
}

/// A fully-assembled Monte Carlo fault-injection campaign: a validated
/// [`SweepPlan`] plus a simulation-backend choice. Built with
/// [`Campaign::builder`]; consumed with [`Campaign::run`].
#[derive(Debug, Clone)]
pub struct Campaign {
    plan: SweepPlan,
    backend: SimBackend,
}

impl Campaign {
    /// Starts assembling a campaign. Every axis left empty falls back to a
    /// sensible default (see the individual [`CampaignBuilder`] methods);
    /// `trials` must be set explicitly.
    pub fn builder() -> CampaignBuilder {
        CampaignBuilder::default()
    }

    /// The validated campaign plan.
    pub fn plan(&self) -> &SweepPlan {
        &self.plan
    }

    /// The simulation backend trials will run on.
    pub fn backend(&self) -> SimBackend {
        self.backend
    }

    /// Runs every trial and aggregates the deterministic report
    /// (byte-identical for any thread count, chunk size and backend).
    ///
    /// # Errors
    ///
    /// Schedule-compilation failures; individual trial execution errors
    /// are recorded in the report, never raised.
    pub fn run(&self) -> Result<SweepReport, SweepError> {
        nvpim_sweep::run_campaign_with_backend(&self.plan, self.backend)
    }
}

/// Builder for [`Campaign`] — the facade's one-stop entry point
/// (`Campaign::builder().technology(..).scheme(..).rate_grid(..).trials(..).build()?.run()`).
#[derive(Debug, Clone, Default)]
pub struct CampaignBuilder {
    workloads: Vec<SweepWorkload>,
    technologies: Vec<Technology>,
    protections: Vec<ProtectionConfig>,
    rates: Vec<f64>,
    trials: u64,
    seed: Option<u64>,
    backend: SimBackend,
    estimator: EstimatorMode,
    kind: CampaignKind,
    stuck_at_rate: f64,
}

impl CampaignBuilder {
    /// Adds a workload (default when none added: the 8×4 MAC kernel).
    pub fn workload(mut self, workload: SweepWorkload) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Adds a paper-suite benchmark as a workload.
    pub fn benchmark(self, benchmark: Benchmark) -> Self {
        self.workload(SweepWorkload::Benchmark(benchmark))
    }

    /// Adds a technology (default when none added: STT-MRAM).
    pub fn technology(mut self, technology: Technology) -> Self {
        self.technologies.push(technology);
        self
    }

    /// Adds a protection scheme with multi-output gates. Any registered
    /// scheme works — the builder never matches on the scheme.
    pub fn scheme(self, scheme: ProtectionScheme) -> Self {
        self.protection(ProtectionConfig {
            scheme,
            gate_style: GateStyle::MultiOutput,
        })
    }

    /// Adds an explicit protection design point (scheme + gate style).
    /// Default when none added: one multi-output point per registered
    /// scheme.
    pub fn protection(mut self, protection: ProtectionConfig) -> Self {
        self.protections.push(protection);
        self
    }

    /// Sets the gate-error-rate grid (default: `[1e-4, 3e-4, 1e-3]`).
    pub fn rate_grid(mut self, rates: impl IntoIterator<Item = f64>) -> Self {
        self.rates = rates.into_iter().collect();
        self
    }

    /// Sets the Monte Carlo trials per campaign point (required).
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the campaign's root seed (default: the quick-plan seed, so
    /// builder campaigns reproduce byte-for-byte run to run).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Selects the simulation backend (default: sliced; reports are
    /// byte-identical either way).
    pub fn backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the estimator mode (default: [`EstimatorMode::Exact`], the
    /// byte-stable plain Monte Carlo path).
    /// [`EstimatorMode::Stratified`] conditions trials on the rare
    /// at-least-one-fault stratum and adds unbiased reweighted rates with
    /// confidence intervals to every point — the mode for gate rates at or
    /// below ~1e-5.
    pub fn estimator(mut self, estimator: EstimatorMode) -> Self {
        self.estimator = estimator;
        self
    }

    /// Selects the campaign kind (default: [`CampaignKind::Error`], the
    /// historical error-counting campaign). [`CampaignKind::Accuracy`]
    /// promotes each trial into an inference-accuracy evaluation — labelled
    /// workloads only — whose per-point report carries top-1 fidelity to the
    /// clean model next to the error counters.
    pub fn kind(mut self, kind: CampaignKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the permanent stuck-at cell-defect density (default 0.0).
    /// Per-trial defect maps derive from the same deterministic seed
    /// discipline as transient faults, so reports stay byte-reproducible.
    pub fn stuck_at_rate(mut self, density: f64) -> Self {
        self.stuck_at_rate = density;
        self
    }

    /// Validates the assembled plan and returns the runnable [`Campaign`].
    ///
    /// # Errors
    ///
    /// [`SweepError`] when the plan is degenerate (zero trials, an
    /// out-of-range error rate, …).
    pub fn build(self) -> Result<Campaign, SweepError> {
        let quick = SweepPlan::quick();
        let plan = SweepPlan {
            workloads: if self.workloads.is_empty() {
                quick.workloads
            } else {
                self.workloads
            },
            technologies: if self.technologies.is_empty() {
                vec![Technology::SttMram]
            } else {
                self.technologies
            },
            protections: if self.protections.is_empty() {
                ProtectionConfig::registry_sweep()
            } else {
                self.protections
            },
            gate_error_rates: if self.rates.is_empty() {
                quick.gate_error_rates
            } else {
                self.rates
            },
            seeds_per_point: self.trials,
            campaign_seed: self.seed.unwrap_or(quick.campaign_seed),
            estimator: self.estimator,
            kind: self.kind,
            stuck_at_rate: self.stuck_at_rate,
        };
        plan.validate()?;
        Ok(Campaign {
            plan,
            backend: self.backend,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_cover_the_registry() {
        let campaign = Campaign::builder().trials(1).build().unwrap();
        assert_eq!(campaign.plan().protections.len(), schemes().len());
        assert_eq!(campaign.plan().technologies, vec![Technology::SttMram]);
    }

    #[test]
    fn builder_rejects_zero_trials() {
        assert!(Campaign::builder().build().is_err());
    }

    #[test]
    fn builder_campaign_matches_direct_plan_execution() {
        // The facade adds no behaviour: a builder campaign's report is
        // byte-identical to running the equivalent plan directly, on both
        // backends.
        let campaign = Campaign::builder()
            .technology(Technology::ReRam)
            .scheme(ProtectionScheme::Trim)
            .scheme(ProtectionScheme::ParityDetect)
            .rate_grid([5e-4])
            .trials(6)
            .seed(0xbead)
            .build()
            .unwrap();
        let direct = nvpim_sweep::run_campaign(campaign.plan()).unwrap();
        let via_facade = campaign.run().unwrap();
        assert_eq!(via_facade.to_json(), direct.to_json());
        let scalar_report =
            nvpim_sweep::run_campaign_with_backend(campaign.plan(), SimBackend::Scalar).unwrap();
        assert_eq!(scalar_report.to_json(), direct.to_json());
    }
}
