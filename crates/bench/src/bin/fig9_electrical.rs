//! Regenerates Fig. 9: noise margins (a) and bias-voltage windows (b) of
//! multi-output NOR gates versus the number of output cells, for series and
//! parallel output placement.

use nvpim_bench::{print_json, print_table, HarnessOptions};
use nvpim_sim::electrical::{ElectricalModel, MIN_NOISE_MARGIN};
use nvpim_sim::technology::Technology;

fn main() {
    let opts = HarnessOptions::from_args();
    println!(
        "Fig. 9 — multi-output gate noise margins and bias windows (STT-MRAM, minimum margin {:.0}%)\n",
        MIN_NOISE_MARGIN * 100.0
    );
    let model = ElectricalModel::new(Technology::SttMram);
    let max_outputs = if opts.quick { 4 } else { 10 };
    let sweep = model.figure9_sweep(max_outputs);
    let table: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                p.n_outputs.to_string(),
                format!("{:.1}", p.parallel_margin * 100.0),
                format!("{:.1}", p.series_margin * 100.0),
                format!(
                    "{:.2}–{:.2}",
                    p.parallel_window.low_v, p.parallel_window.high_v
                ),
                format!("{:.2}–{:.2}", p.series_window.low_v, p.series_window.high_v),
                if p.series_margin >= MIN_NOISE_MARGIN {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "output cells",
            "parallel margin (%)",
            "series margin (%)",
            "parallel V_BSL (V)",
            "series V_BSL (V)",
            "series feasible",
        ],
        &table,
    );
    println!(
        "\nmax feasible outputs: parallel = {}, series = {}",
        model.max_feasible_outputs(
            nvpim_sim::electrical::OutputPlacement::Parallel,
            max_outputs
        ),
        model.max_feasible_outputs(nvpim_sim::electrical::OutputPlacement::Series, max_outputs)
    );
    if opts.json {
        print_json(&sweep);
    }
}
