//! ECiM — error correction in memory (§IV-B/§IV-C): Hamming-code parity
//! maintained *in memory* by two-step in-array XOR folds, decoded by an
//! external Checker at logic-level granularity with correction write-back.
//!
//! Both run paths share one metadata-region layout (columns
//! `0..metadata_columns`):
//!
//! ```text
//! [0, p)           ping parity cells        (p = parity bits)
//! [p, 2p)          pong parity cells
//! [2p, 2p + 2)     XOR working cells (s1, s2)
//! [2p + 2, 3p + 2) independent redundant-copy cells (one r_i per parity
//!                  bit, §IV-E: an error in a given r may affect only a
//!                  single parity bit)
//! ```

use nvpim_compiler::netlist::{LogicOp, Netlist};
use nvpim_compiler::schedule::RowSchedule;
use nvpim_ecc::hamming::HammingCode;
use nvpim_sim::array::PimArray;
use nvpim_sim::gates::GateKind;
use nvpim_sim::sliced::SlicedPimArray;

use crate::checker::{CheckerCostModel, EcimChecker, LevelDecode};
use crate::config::{DesignConfig, GateStyle};
use crate::executor::{ExecScratch, ProtectedExecError, ProtectedExecutor, ProtectedRunReport};
use crate::scheme::{CostEnv, SchemeRuntime};
use crate::sliced::{SlicedExecScratch, SlicedExecutor, SlicedRunReport};
use crate::system::{CostBreakdown, CHECKER_EXPOSED_FRACTION};

/// ECiM's runtime (registered as `"Ecim"`, displayed as `"ECiM"`).
#[derive(Debug)]
pub struct EcimScheme;

impl SchemeRuntime for EcimScheme {
    fn wire_name(&self) -> &'static str {
        "Ecim"
    }

    fn display_name(&self) -> &'static str {
        "ECiM"
    }

    fn metadata_columns(&self, config: &DesignConfig) -> usize {
        // Two cells per parity bit (ping/pong accumulation) plus two
        // working cells per parity block on each side.
        2 * config.parity_bits() + 2 * (2 * config.parity_blocks_per_side)
    }

    fn sliceable(&self) -> bool {
        true
    }

    fn parity_bits(&self, config: &DesignConfig) -> usize {
        config.parity_bits()
    }

    fn checker_cost(&self, config: &DesignConfig) -> CheckerCostModel {
        CheckerCostModel::for_hamming(&HammingCode::new_standard(config.hamming_r))
    }

    fn metadata_costs(
        &self,
        schedule: &RowSchedule,
        config: &DesignConfig,
        env: &CostEnv,
        b: &mut CostBreakdown,
    ) -> u64 {
        let code = HammingCode::new_standard(config.hamming_r);
        // Average number of parity bits each codeword data position
        // participates in (the expected XOR-update count per gate output).
        let avg_w: f64 = (0..code.k())
            .map(|j| code.parity_updates_for_bit(j) as f64)
            .sum::<f64>()
            / code.k() as f64;
        let parity_parallelism = (2 * config.parity_blocks_per_side).max(1) as f64;
        let checker_cost = self.checker_cost(config);

        let mut checker_traffic_bits = 0u64;
        // Parity-pipeline demand accumulated across the whole schedule (the
        // pipeline of Fig. 5 streams across level boundaries).
        let mut meta_ops_total = 0.0f64;
        for level in &schedule.level_profile {
            let outputs = (level.nor_ops + level.thr_ops + level.copy_ops) as f64;
            if outputs == 0.0 {
                continue;
            }
            // Redundant copy r per output, plus avg_w two-step XOR updates.
            let (r_ops, xor_steps) = if env.multi_output {
                // The extra output is produced by the same gate: no time,
                // one extra output's worth of energy.
                (0.0f64, 2.0f64)
            } else {
                // A separate copy operation, plus the XOR loses its fused
                // second output (3-step XOR).
                (1.0, 3.0)
            };
            meta_ops_total += outputs * (r_ops + avg_w * xor_steps);

            let xor_energy = if env.multi_output {
                2.0 * env.nor_e + env.thr_e
            } else {
                // NOR + CP + THR, each a full single-output operation,
                // plus a destination preset write.
                3.0 * env.nor_e + env.thr_e + env.write_e
            };
            let r_gen_energy = if env.multi_output {
                env.nor_e
            } else {
                // Separate copy gate plus destination preset.
                2.0 * env.nor_e + env.write_e
            };
            b.metadata_energy_fj += outputs * (r_gen_energy + avg_w * xor_energy);
            // Running parity bits are reset at every level boundary.
            b.write_energy_fj += config.parity_bits() as f64 * env.write_e;

            // Checker communication: level outputs + parity bits.
            let bits = outputs as usize + config.parity_bits();
            checker_traffic_bits += bits as u64;
            b.checker_time_ns += CHECKER_EXPOSED_FRACTION * env.periphery.read_latency(bits);
            b.checker_comm_energy_fj += env.periphery.read_energy(bits);
            b.checker_logic_energy_fj += checker_cost.energy_per_check_fj;
        }

        // Parity updates overlap with computation in the left/right
        // parity-block partitions (Fig. 5); only the excess of the
        // pipeline's total demand over the computation time is exposed on
        // the critical path.
        b.metadata_time_ns +=
            ((meta_ops_total / parity_parallelism) * env.t_gate - b.compute_time_ns).max(0.0);
        checker_traffic_bits
    }

    fn run_scalar(
        &self,
        exec: &ProtectedExecutor,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
        scratch: &mut ExecScratch,
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        let code = exec.code();
        let config = exec.config();
        let parity_bits = code.parity_bits();
        let k = code.k();
        let ping_base = 0usize;
        let pong_base = parity_bits;
        let work_s1 = 2 * parity_bits;
        let work_s2 = 2 * parity_bits + 1;
        let r_base = 2 * parity_bits + 2;
        assert!(
            config.metadata_columns() >= r_base + parity_bits,
            "ECiM metadata region too small for the parity pipeline"
        );
        scratch.parity_in_pong.clear();
        scratch.parity_in_pong.resize(parity_bits, false);
        scratch.chunk_cols.clear();

        let mut checker = EcimChecker::new(code);
        let mut metadata_gate_ops = 0u64;
        let mut corrections_written_back = 0u64;
        let mut errors_detected = 0u64;
        let mut uncorrectable = 0u64;

        reset_parity(array, row, scratch, ping_base, pong_base)?;

        let mut current_level = schedule.gates.first().map(|g| g.level).unwrap_or(0);

        for sg in &schedule.gates {
            let gate = &netlist.gates[sg.index];
            if sg.level != current_level {
                flush_chunk(
                    array,
                    row,
                    &mut checker,
                    scratch,
                    ping_base,
                    pong_base,
                    &mut errors_detected,
                    &mut corrections_written_back,
                    &mut uncorrectable,
                )?;
                reset_parity(array, row, scratch, ping_base, pong_base)?;
                current_level = sg.level;
            }
            exec.materialize_inputs(netlist, sg, array, row, inputs, scratch)?;

            let is_constant = matches!(sg.op, LogicOp::Zero | LogicOp::One);
            if is_constant || !scratch.used_nets[gate.output] {
                exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols)?;
                continue;
            }

            // Codeword position of this gate output within the current chunk.
            let position = scratch.chunk_cols.len();

            // Parity bits this codeword position participates in.
            let mask = code.parity_update_mask(position.min(k - 1));

            // Execute the gate, producing one *independent* redundant copy
            // r_i per touched parity bit (Fig. 6: each XOR processes its own
            // r input, so a single error in any r corrupts only one parity
            // bit). Multi-output designs drive all copies from the same gate
            // in one step; single-output designs use explicit copy
            // operations.
            match config.gate_style {
                GateStyle::MultiOutput => {
                    scratch.extra_cols.clear();
                    scratch
                        .extra_cols
                        .extend(mask.iter_ones().map(|bit| r_base + bit));
                    let touched = scratch.extra_cols.len() as u64;
                    exec.execute_plain_gate(
                        sg,
                        array,
                        row,
                        &scratch.extra_cols,
                        &mut scratch.out_cols,
                    )?;
                    metadata_gate_ops += touched;
                }
                GateStyle::SingleOutput => {
                    exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols)?;
                    // Each r_i is produced by re-executing the gate into its
                    // own cell (a separate single-output operation), so an
                    // error in the primary output never leaks into the parity
                    // metadata and vice versa.
                    for bit in mask.iter_ones() {
                        let kind = match sg.op {
                            LogicOp::Nor => GateKind::NOR2,
                            LogicOp::Thr => GateKind::THR,
                            LogicOp::Copy => GateKind::Copy,
                            LogicOp::Zero | LogicOp::One => unreachable!("constants handled above"),
                        };
                        array.execute_gate_with(kind, row, &sg.input_cols, &[r_base + bit])?;
                        metadata_gate_ops += 1;
                    }
                }
            }

            // Fold each r_i into its parity bit with the in-memory two-step
            // XOR (NOR22 then THR).
            for bit in mask.iter_ones() {
                let r_cell = r_base + bit;
                let src = if scratch.parity_in_pong[bit] {
                    pong_base + bit
                } else {
                    ping_base + bit
                };
                let dst = if scratch.parity_in_pong[bit] {
                    ping_base + bit
                } else {
                    pong_base + bit
                };
                // s1 = s2 = NOR(p, r); p' = THR(p, r, s1, s2) = p XOR r —
                // the fused two-step XOR primitive (identical fault sites
                // and cost accounting to the two separate gate calls).
                array.execute_xor2_step(row, src, r_cell, work_s1, work_s2, dst)?;
                scratch.parity_in_pong[bit] = !scratch.parity_in_pong[bit];
                metadata_gate_ops += 2;
            }

            scratch.chunk_cols.push(sg.output_cols[0]);
            if scratch.chunk_cols.len() == k {
                flush_chunk(
                    array,
                    row,
                    &mut checker,
                    scratch,
                    ping_base,
                    pong_base,
                    &mut errors_detected,
                    &mut corrections_written_back,
                    &mut uncorrectable,
                )?;
                reset_parity(array, row, scratch, ping_base, pong_base)?;
            }
        }
        flush_chunk(
            array,
            row,
            &mut checker,
            scratch,
            ping_base,
            pong_base,
            &mut errors_detected,
            &mut corrections_written_back,
            &mut uncorrectable,
        )?;

        Ok(ProtectedRunReport {
            outputs: exec.read_outputs(netlist, schedule, array, row, inputs)?,
            checks: checker.checks(),
            errors_detected,
            corrections_written_back,
            uncorrectable,
            metadata_gate_ops,
        })
    }

    fn run_sliced(
        &self,
        exec: &SlicedExecutor,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut SlicedPimArray,
        row: usize,
        inputs: &[u64],
        scratch: &mut SlicedExecScratch,
    ) -> Result<SlicedRunReport, ProtectedExecError> {
        let code = exec.code();
        let config = exec.config();
        let parity_bits = code.parity_bits();
        let k = code.k();
        // Metadata region layout — identical to the scalar path's.
        let ping_base = 0usize;
        let pong_base = parity_bits;
        let work_s1 = 2 * parity_bits;
        let work_s2 = 2 * parity_bits + 1;
        let r_base = 2 * parity_bits + 2;
        assert!(
            config.metadata_columns() >= r_base + parity_bits,
            "ECiM metadata region too small for the parity pipeline"
        );
        scratch.parity_in_pong.clear();
        scratch.parity_in_pong.resize(parity_bits, false);
        scratch.chunk_cols.clear();

        let mut checker = EcimChecker::new(code);
        let mut report = SlicedRunReport::new();

        sliced_reset_parity(array, row, scratch, ping_base, pong_base);

        let mut current_level = schedule.gates.first().map(|g| g.level).unwrap_or(0);

        for sg in &schedule.gates {
            let gate = &netlist.gates[sg.index];
            if sg.level != current_level {
                sliced_flush_chunk(
                    array,
                    row,
                    &mut checker,
                    scratch,
                    ping_base,
                    pong_base,
                    &mut report,
                );
                sliced_reset_parity(array, row, scratch, ping_base, pong_base);
                current_level = sg.level;
            }
            exec.materialize_inputs(netlist, sg, array, row, inputs, scratch);

            let is_constant = matches!(sg.op, LogicOp::Zero | LogicOp::One);
            if is_constant || !scratch.used_nets[gate.output] {
                exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols);
                continue;
            }

            let position = scratch.chunk_cols.len();
            let mask = code.parity_update_mask(position.min(k - 1));

            match config.gate_style {
                GateStyle::MultiOutput => {
                    scratch.extra_cols.clear();
                    scratch
                        .extra_cols
                        .extend(mask.iter_ones().map(|bit| r_base + bit));
                    let touched = scratch.extra_cols.len() as u64;
                    exec.execute_plain_gate(
                        sg,
                        array,
                        row,
                        &scratch.extra_cols,
                        &mut scratch.out_cols,
                    );
                    report.metadata_gate_ops += touched;
                }
                GateStyle::SingleOutput => {
                    exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols);
                    for bit in mask.iter_ones() {
                        let dst = r_base + bit;
                        match sg.op {
                            LogicOp::Nor => array.gate_nor(row, &sg.input_cols, &[dst]),
                            LogicOp::Thr => array.gate_thr(row, &sg.input_cols, dst),
                            LogicOp::Copy => array.gate_copy(row, sg.input_cols[0], dst),
                            LogicOp::Zero | LogicOp::One => unreachable!("constants handled above"),
                        }
                        report.metadata_gate_ops += 1;
                    }
                }
            }

            // Fold each r_i into its parity bit (two-step XOR, fault
            // decisions in the scalar order s1, s2, dst).
            for bit in mask.iter_ones() {
                let r_cell = r_base + bit;
                let src = if scratch.parity_in_pong[bit] {
                    pong_base + bit
                } else {
                    ping_base + bit
                };
                let dst = if scratch.parity_in_pong[bit] {
                    ping_base + bit
                } else {
                    pong_base + bit
                };
                array.gate_xor2(row, src, r_cell, work_s1, work_s2, dst);
                scratch.parity_in_pong[bit] = !scratch.parity_in_pong[bit];
                report.metadata_gate_ops += 2;
            }

            scratch.chunk_cols.push(sg.output_cols[0]);
            if scratch.chunk_cols.len() == k {
                sliced_flush_chunk(
                    array,
                    row,
                    &mut checker,
                    scratch,
                    ping_base,
                    pong_base,
                    &mut report,
                );
                sliced_reset_parity(array, row, scratch, ping_base, pong_base);
            }
        }
        sliced_flush_chunk(
            array,
            row,
            &mut checker,
            scratch,
            ping_base,
            pong_base,
            &mut report,
        );

        exec.read_outputs(netlist, schedule, array, row, inputs, scratch);
        report.checks = checker.checks();
        Ok(report)
    }
}

// ----------------------------------------------------------------------
// Scalar helpers
// ----------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn flush_chunk(
    array: &mut PimArray,
    row: usize,
    checker: &mut EcimChecker<'_>,
    scratch: &mut ExecScratch,
    ping_base: usize,
    pong_base: usize,
    errors_detected: &mut u64,
    corrections_written_back: &mut u64,
    uncorrectable: &mut u64,
) -> Result<(), ProtectedExecError> {
    if scratch.chunk_cols.is_empty() {
        return Ok(());
    }
    // Conventional memory read of the level outputs and parity bits.
    scratch.cols_b.clear();
    scratch.cols_b.extend(
        scratch
            .parity_in_pong
            .iter()
            .enumerate()
            .map(|(i, &in_pong)| {
                if in_pong {
                    pong_base + i
                } else {
                    ping_base + i
                }
            }),
    );
    array.read_bits_into(row, &scratch.chunk_cols, &mut scratch.bits_a)?;
    array.read_bits_into(row, &scratch.cols_b, &mut scratch.bits_b)?;
    match checker.decode_level(&scratch.bits_a, &scratch.bits_b) {
        LevelDecode::Clean => {}
        LevelDecode::CorrectedData { position } => {
            *errors_detected += 1;
            // A single-error code flips exactly one data bit.
            let col = scratch.chunk_cols[position];
            array.write_cell(row, col, !scratch.bits_a.get(position))?;
            *corrections_written_back += 1;
        }
        LevelDecode::CorrectedMeta => {
            *errors_detected += 1;
        }
        LevelDecode::Uncorrectable => {
            *errors_detected += 1;
            *uncorrectable += 1;
        }
    }
    scratch.chunk_cols.clear();
    Ok(())
}

/// Resets the running parity cells at the start of a level chunk: one
/// row-parallel preset over the contiguous ping+pong region instead of
/// `2 × parity_bits` individual writes.
fn reset_parity(
    array: &mut PimArray,
    row: usize,
    scratch: &mut ExecScratch,
    ping_base: usize,
    pong_base: usize,
) -> Result<(), ProtectedExecError> {
    let parity_bits = scratch.parity_in_pong.len();
    debug_assert_eq!(pong_base, ping_base + parity_bits);
    array.preset_cells(row, ping_base..pong_base + parity_bits, false)?;
    scratch.parity_in_pong.iter_mut().for_each(|p| *p = false);
    Ok(())
}

// ----------------------------------------------------------------------
// Sliced helpers
// ----------------------------------------------------------------------

fn sliced_flush_chunk(
    array: &mut SlicedPimArray,
    row: usize,
    checker: &mut EcimChecker<'_>,
    scratch: &mut SlicedExecScratch,
    ping_base: usize,
    pong_base: usize,
    report: &mut SlicedRunReport,
) {
    if scratch.chunk_cols.is_empty() {
        return;
    }
    let SlicedExecScratch {
        chunk_cols,
        parity_in_pong,
        data_words,
        parity_words,
        syndrome_words,
        ..
    } = scratch;
    data_words.clear();
    data_words.extend(chunk_cols.iter().map(|&c| array.cell(row, c)));
    parity_words.clear();
    parity_words.extend(parity_in_pong.iter().enumerate().map(|(i, &in_pong)| {
        let col = if in_pong {
            pong_base + i
        } else {
            ping_base + i
        };
        array.cell(row, col)
    }));
    let valid = array.injector().valid_mask();
    let SlicedRunReport {
        errors_detected,
        corrections_written_back,
        uncorrectable,
        ..
    } = report;
    checker.decode_level_lanes(
        data_words,
        parity_words,
        valid,
        syndrome_words,
        |lane, outcome| match outcome {
            LevelDecode::Clean => {}
            LevelDecode::CorrectedData { position } => {
                errors_detected[lane] += 1;
                // A single-error code flips exactly one data bit: write
                // back the negation of what this lane's read returned.
                let col = chunk_cols[position];
                let word = array.cell(row, col) ^ (1u64 << lane);
                array.set_cell(row, col, word);
                corrections_written_back[lane] += 1;
            }
            LevelDecode::CorrectedMeta => {
                errors_detected[lane] += 1;
            }
            LevelDecode::Uncorrectable => {
                errors_detected[lane] += 1;
                uncorrectable[lane] += 1;
            }
        },
    );
    chunk_cols.clear();
}

fn sliced_reset_parity(
    array: &mut SlicedPimArray,
    row: usize,
    scratch: &mut SlicedExecScratch,
    ping_base: usize,
    pong_base: usize,
) {
    let parity_bits = scratch.parity_in_pong.len();
    debug_assert_eq!(pong_base, ping_base + parity_bits);
    array.preset_range(row, ping_base..pong_base + parity_bits, false);
    scratch.parity_in_pong.iter_mut().for_each(|p| *p = false);
}
