//! Offline stand-in for the real `rand_chacha` crate.
//!
//! Implements a genuine 8-round ChaCha keystream generator (the same core
//! permutation as RFC 8439, with a 64-bit block counter) behind the
//! [`ChaCha8Rng`] name. Seeding expands a 64-bit seed into the 256-bit key
//! via SplitMix64. Streams are deterministic per seed; they do not bit-match
//! the real crate (nothing in the workspace depends on that).

use rand::{splitmix64, RngCore, SeedableRng};

/// ChaCha constants: `"expand 32-byte k"`.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// An 8-round ChaCha random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = working[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut s = state;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = splitmix64(&mut s);
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16, // force a refill on first use
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..64).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn keystream_is_well_distributed() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 100_000;
        let ones: u32 = (0..n).map(|_| rng.next_u64().count_ones()).sum();
        let rate = f64::from(ones) / (n as f64 * 64.0);
        assert!((rate - 0.5).abs() < 0.005, "bit rate = {rate}");
        let hits = (0..n).filter(|_| rng.gen_bool(0.1)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.1).abs() < 0.005, "gen_bool rate = {p}");
    }

    #[test]
    fn blocks_differ_across_counter_values() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
