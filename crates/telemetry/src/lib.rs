//! Offline, hand-rolled telemetry core for the nvpim workspace.
//!
//! The crate provides four pieces, all dependency-free (the only imports
//! are the workspace's offline serde stubs, used for JSON event lines):
//!
//! * **Metrics primitives** ([`Histogram`], [`AtomicHistogram`]):
//!   log₂-bucketed latency histograms with deterministic p50/p95/p99 and
//!   associative cross-thread merging.
//! * **A phase/counter taxonomy** ([`Phase`], [`Counter`]): the closed set
//!   of pipeline phases (plan validation, schedule compile vs cache hit,
//!   fault injection, gate execution, analytic clean settle, estimator
//!   redraw, aggregation, report serialization) and first-class event
//!   counters.
//! * **Recording handles** ([`Telemetry`], [`LocalTelemetry`]): a cheap
//!   clonable shared sink, and a per-thread accumulator that folds into the
//!   sink at chunk boundaries so the sliced hot path never touches a shared
//!   atomic per trial. A disabled handle ([`Telemetry::disabled`]) makes
//!   every operation a no-op — including clock reads.
//! * **Export** ([`TelemetrySnapshot`], [`EventLog`]): point-in-time
//!   snapshots renderable as Prometheus-style text exposition, and an
//!   opt-in NDJSON event log with monotone sequence numbers.

#![deny(missing_docs)]

mod events;
mod export;
mod metrics;
mod phase;

pub use events::EventLog;
pub use export::render_prometheus;
pub use metrics::{
    bucket_index, bucket_upper_bound, AtomicHistogram, Histogram, HISTOGRAM_BUCKETS,
};
pub use phase::{Counter, Phase, COUNTER_COUNT, PHASE_COUNT};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Shared recording state behind an enabled [`Telemetry`] handle.
#[derive(Debug, Default)]
struct Shared {
    phase_count: [AtomicU64; PHASE_COUNT],
    phase_nanos: [AtomicU64; PHASE_COUNT],
    counters: [AtomicU64; COUNTER_COUNT],
    /// Low-frequency labeled counters, keyed by rendered series name
    /// (e.g. `trials_by_scheme{scheme="trim"}`). Coarse lock is fine:
    /// these are bumped per job, never per trial.
    labeled: Mutex<BTreeMap<String, u64>>,
    /// Named latency histograms (e.g. queue wait, job run latency),
    /// recorded per job.
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
}

/// A cheap, clonable handle to a telemetry sink.
///
/// An *enabled* handle ([`Telemetry::new`]) records into shared relaxed
/// atomics; a *disabled* handle ([`Telemetry::disabled`], also the
/// [`Default`]) turns every call — including span clock reads — into a
/// no-op, so uninstrumented runs pay nothing.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Shared>>,
}

impl Telemetry {
    /// Creates an enabled telemetry sink.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(Shared::default())),
        }
    }

    /// Creates a disabled handle: every operation is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this handle records anything.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a span: returns `Some(now)` when enabled, `None` (and no
    /// clock read) when disabled. Pair with [`Telemetry::span_end`].
    #[inline]
    #[must_use]
    pub fn span_start(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Ends a span started with [`Telemetry::span_start`], attributing the
    /// elapsed wall-clock time to `phase`.
    #[inline]
    pub fn span_end(&self, phase: Phase, started: Option<Instant>) {
        if let (Some(shared), Some(start)) = (self.inner.as_deref(), started) {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            shared.phase_count[phase.index()].fetch_add(1, Ordering::Relaxed);
            shared.phase_nanos[phase.index()].fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Times a closure as one span of `phase`.
    #[inline]
    pub fn time<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let started = self.span_start();
        let out = f();
        self.span_end(phase, started);
        out
    }

    /// Records a completed span measured externally (count + nanos).
    pub fn record_span(&self, phase: Phase, count: u64, nanos: u64) {
        if let Some(shared) = self.inner.as_deref() {
            shared.phase_count[phase.index()].fetch_add(count, Ordering::Relaxed);
            shared.phase_nanos[phase.index()].fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Increments a first-class counter by `n`.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(shared) = self.inner.as_deref() {
            shared.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of a first-class counter (0 when disabled).
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |s| s.counters[counter.index()].load(Ordering::Relaxed))
    }

    /// Increments a labeled counter, e.g.
    /// `add_labeled("trials_by_scheme", "scheme", "trim", 200)`.
    ///
    /// Labeled counters take a coarse lock — use them for per-job
    /// bookkeeping, never per trial.
    pub fn add_labeled(&self, series: &str, label: &str, value: &str, n: u64) {
        if let Some(shared) = self.inner.as_deref() {
            let key = format!("{series}{{{label}=\"{value}\"}}");
            let mut map = shared.labeled.lock().expect("telemetry labeled lock");
            *map.entry(key).or_insert(0) += n;
        }
    }

    /// Records one observation into the named latency histogram (created on
    /// first use). Like labeled counters, this takes a coarse lock — record
    /// per job, never per trial.
    pub fn record_histogram(&self, name: &'static str, value: u64) {
        if let Some(shared) = self.inner.as_deref() {
            let mut map = shared.histograms.lock().expect("telemetry histogram lock");
            map.entry(name).or_default().record(value);
        }
    }

    /// Takes a point-in-time snapshot of everything recorded so far.
    ///
    /// A disabled handle snapshots to all-zero.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        if let Some(shared) = self.inner.as_deref() {
            for phase in Phase::ALL {
                snap.phase_count[phase.index()] =
                    shared.phase_count[phase.index()].load(Ordering::Relaxed);
                snap.phase_nanos[phase.index()] =
                    shared.phase_nanos[phase.index()].load(Ordering::Relaxed);
            }
            for counter in Counter::ALL {
                snap.counters[counter.index()] =
                    shared.counters[counter.index()].load(Ordering::Relaxed);
            }
            snap.labeled = shared
                .labeled
                .lock()
                .expect("telemetry labeled lock")
                .clone();
            snap.histograms = shared
                .histograms
                .lock()
                .expect("telemetry histogram lock")
                .iter()
                .map(|(&name, hist)| (name.to_string(), hist.clone()))
                .collect();
        }
        snap
    }

    /// Renders a snapshot as Prometheus-style text exposition.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        export::render_prometheus(&self.snapshot())
    }

    fn fold_local(&self, local: &LocalTelemetry) {
        if let Some(shared) = self.inner.as_deref() {
            for i in 0..PHASE_COUNT {
                if local.phase_count[i] != 0 {
                    shared.phase_count[i].fetch_add(local.phase_count[i], Ordering::Relaxed);
                    shared.phase_nanos[i].fetch_add(local.phase_nanos[i], Ordering::Relaxed);
                }
            }
            for i in 0..COUNTER_COUNT {
                if local.counters[i] != 0 {
                    shared.counters[i].fetch_add(local.counters[i], Ordering::Relaxed);
                }
            }
        }
    }
}

/// Per-thread telemetry accumulator: plain `u64` arrays, no atomics.
///
/// The Monte Carlo hot path records into a `LocalTelemetry` owned by its
/// per-thread arena; the accumulated phase times and counters fold into the
/// shared [`Telemetry`] sink when [`flush`](LocalTelemetry::flush) is
/// called — and automatically on [`Drop`], which in the engine happens at
/// the end of every parallel chunk (the rayon `map_init` state is dropped
/// when the chunk's collect finishes). The shared sink therefore sees one
/// fold per thread per chunk, never one write per trial.
#[derive(Debug, Default)]
pub struct LocalTelemetry {
    sink: Telemetry,
    enabled: bool,
    phase_count: [u64; PHASE_COUNT],
    phase_nanos: [u64; PHASE_COUNT],
    counters: [u64; COUNTER_COUNT],
}

impl LocalTelemetry {
    /// Creates a per-thread accumulator feeding `sink`.
    #[must_use]
    pub fn new(sink: &Telemetry) -> Self {
        Self {
            enabled: sink.is_enabled(),
            sink: sink.clone(),
            phase_count: [0; PHASE_COUNT],
            phase_nanos: [0; PHASE_COUNT],
            counters: [0; COUNTER_COUNT],
        }
    }

    /// Creates a disabled accumulator (all operations no-ops).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether this accumulator records anything.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a span: `Some(now)` when enabled, `None` (no clock read)
    /// when disabled.
    #[inline]
    #[must_use]
    pub fn span_start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a span, attributing elapsed time to `phase` in thread-local
    /// state.
    #[inline]
    pub fn span_end(&mut self, phase: Phase, started: Option<Instant>) {
        if let Some(start) = started {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.phase_count[phase.index()] += 1;
            self.phase_nanos[phase.index()] += nanos;
        }
    }

    /// Increments a counter in thread-local state.
    #[inline]
    pub fn add(&mut self, counter: Counter, n: u64) {
        if self.enabled {
            self.counters[counter.index()] += n;
        }
    }

    /// Folds accumulated state into the shared sink and zeroes the local
    /// arrays. Called automatically on drop.
    pub fn flush(&mut self) {
        if self.enabled {
            self.sink.fold_local(self);
            self.phase_count = [0; PHASE_COUNT];
            self.phase_nanos = [0; PHASE_COUNT];
            self.counters = [0; COUNTER_COUNT];
        }
    }
}

impl Drop for LocalTelemetry {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A point-in-time copy of everything a [`Telemetry`] sink has recorded.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Completed span counts per phase, indexed by [`Phase::index`].
    pub phase_count: [u64; PHASE_COUNT],
    /// Accumulated span nanoseconds per phase, indexed by [`Phase::index`].
    pub phase_nanos: [u64; PHASE_COUNT],
    /// First-class counter values, indexed by [`Counter::index`].
    pub counters: [u64; COUNTER_COUNT],
    /// Labeled counters, keyed by rendered series name.
    pub labeled: BTreeMap<String, u64>,
    /// Named latency histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl TelemetrySnapshot {
    /// Span count for a phase.
    #[must_use]
    pub fn phase_count(&self, phase: Phase) -> u64 {
        self.phase_count[phase.index()]
    }

    /// Accumulated nanoseconds for a phase.
    #[must_use]
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase.index()]
    }

    /// Value of a first-class counter.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// Renders this snapshot as Prometheus-style text exposition.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        export::render_prometheus(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_no_op_without_clock_reads() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert!(tel.span_start().is_none());
        tel.span_end(Phase::GateExecution, None);
        tel.add(Counter::TrialsExecuted, 5);
        tel.add_labeled("trials_by_scheme", "scheme", "trim", 3);
        tel.record_histogram("queue_wait_ns", 100);
        let snap = tel.snapshot();
        assert_eq!(snap.counter(Counter::TrialsExecuted), 0);
        assert!(snap.labeled.is_empty());
        assert!(snap.histograms.is_empty());

        let mut local = LocalTelemetry::new(&tel);
        assert!(local.span_start().is_none());
        local.add(Counter::CleanSettledTrials, 7);
        local.flush();
        assert_eq!(tel.snapshot().counter(Counter::CleanSettledTrials), 0);
    }

    #[test]
    fn spans_and_counters_accumulate() {
        let tel = Telemetry::new();
        let started = tel.span_start();
        assert!(started.is_some());
        tel.span_end(Phase::PlanValidation, started);
        tel.time(Phase::Aggregation, || ());
        tel.add(Counter::EstimatorRedraws, 3);
        tel.record_span(Phase::GateExecution, 2, 500);
        let snap = tel.snapshot();
        assert_eq!(snap.phase_count(Phase::PlanValidation), 1);
        assert_eq!(snap.phase_count(Phase::Aggregation), 1);
        assert_eq!(snap.phase_count(Phase::GateExecution), 2);
        assert_eq!(snap.phase_nanos(Phase::GateExecution), 500);
        assert_eq!(snap.counter(Counter::EstimatorRedraws), 3);
    }

    #[test]
    fn local_telemetry_folds_on_flush_and_drop() {
        let tel = Telemetry::new();
        {
            let mut local = LocalTelemetry::new(&tel);
            let s = local.span_start();
            local.span_end(Phase::FaultInjection, s);
            local.add(Counter::CleanSettledBatches, 2);
            // Nothing visible before the fold.
            assert_eq!(tel.snapshot().counter(Counter::CleanSettledBatches), 0);
            local.flush();
            assert_eq!(tel.snapshot().counter(Counter::CleanSettledBatches), 2);
            // Flush zeroes local state: a second flush adds nothing.
            local.flush();
            assert_eq!(tel.snapshot().counter(Counter::CleanSettledBatches), 2);
            local.add(Counter::CleanSettledBatches, 1);
            // Dropped here: remaining state folds automatically.
        }
        let snap = tel.snapshot();
        assert_eq!(snap.counter(Counter::CleanSettledBatches), 3);
        assert_eq!(snap.phase_count(Phase::FaultInjection), 1);
    }

    #[test]
    fn labeled_counters_and_histograms_round_trip() {
        let tel = Telemetry::new();
        tel.add_labeled("trials_by_scheme", "scheme", "trim", 10);
        tel.add_labeled("trials_by_scheme", "scheme", "trim", 5);
        tel.add_labeled("trials_by_scheme", "scheme", "ecim", 7);
        tel.record_histogram("queue_wait_ns", 1000);
        tel.record_histogram("queue_wait_ns", 2000);
        let snap = tel.snapshot();
        assert_eq!(
            snap.labeled.get("trials_by_scheme{scheme=\"trim\"}"),
            Some(&15)
        );
        assert_eq!(
            snap.labeled.get("trials_by_scheme{scheme=\"ecim\"}"),
            Some(&7)
        );
        let hist = snap.histograms.get("queue_wait_ns").expect("histogram");
        assert_eq!(hist.count(), 2);
    }
}
