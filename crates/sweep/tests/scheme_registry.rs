//! Scheme-registry contract tests: every registered
//! [`SchemeRuntime`](nvpim_core::scheme::SchemeRuntime) — including ones
//! added after the engine shipped, like `ParityDetect` — must round-trip
//! through every identity surface (names, plan JSON, content digests) and
//! honour its declared capabilities (a scheme claiming the sliced run path
//! must produce lane-for-lane scalar-identical trials).

use std::str::FromStr;

use nvpim_core::config::{DesignConfig, GateStyle, ProtectionScheme};
use nvpim_core::scheme::registry;
use nvpim_sim::technology::Technology;
use nvpim_sweep::{
    run_campaign, run_campaign_with_backend, ProtectionConfig, SimBackend, SweepPlan,
    SweepWorkload, TrialArena, TrialHarness,
};
use proptest::prelude::*;

fn registry_protections() -> Vec<ProtectionConfig> {
    // Both gate styles of every registered scheme.
    ProtectionScheme::all()
        .flat_map(|scheme| {
            [GateStyle::MultiOutput, GateStyle::SingleOutput]
                .into_iter()
                .map(move |gate_style| ProtectionConfig { scheme, gate_style })
        })
        .collect()
}

/// The registry-completeness gate: a scheme may not be registered without a
/// usable identity and a consistent capability sheet. This is the test
/// that fails when someone registers a scheme but forgets its sliced
/// capability declaration (the declared capability is *exercised*, not
/// just read).
#[test]
fn every_registered_scheme_declares_consistent_capabilities() {
    let mut wire_names = std::collections::HashSet::new();
    for runtime in registry() {
        let wire = runtime.wire_name();
        assert!(wire_names.insert(wire), "duplicate wire name {wire}");

        // Identity: wire name, display name and every alias parse back to
        // the same scheme; parsing is case-exact and registry-driven.
        let scheme = ProtectionScheme::from_str(wire)
            .unwrap_or_else(|e| panic!("{wire} must parse by wire name: {e}"));
        assert_eq!(scheme.wire_name(), wire);
        assert_eq!(
            ProtectionScheme::from_str(runtime.display_name()).unwrap(),
            scheme,
            "{wire} must parse by display name"
        );
        for alias in runtime.aliases() {
            assert_eq!(
                ProtectionScheme::from_str(alias).unwrap(),
                scheme,
                "{wire} alias {alias} must parse"
            );
        }

        // Geometry: the capability sheet must agree with what the design
        // configuration actually reserves.
        let config = DesignConfig::for_scheme(scheme, Technology::SttMram);
        let caps = runtime.capabilities(&config);
        assert_eq!(caps.metadata_columns, config.metadata_columns(), "{wire}");
        assert_eq!(caps.cells_per_value, config.cells_per_value(), "{wire}");
        assert_eq!(caps.sliceable, runtime.sliceable(), "{wire}");
        assert_eq!(caps.detect_only, runtime.detect_only(), "{wire}");
        let layout = config.row_layout();
        assert_eq!(layout.metadata_columns, caps.metadata_columns, "{wire}");
        assert_eq!(layout.cells_per_value, caps.cells_per_value, "{wire}");
        // A scheme claiming online recompute writes corrections back, so it
        // cannot also claim to be detection-only.
        if caps.recompute {
            assert!(!caps.detect_only, "{wire}: recompute schemes correct");
        }
    }
    assert!(
        wire_names.contains("ParityDetect"),
        "the plugin-path proof scheme must stay registered"
    );
    assert!(
        wire_names.contains("DetectRecompute"),
        "the recompute scheme must stay registered"
    );
    let recompute = ProtectionScheme::from_str("DetectRecompute")
        .unwrap()
        .runtime();
    let caps = recompute.capabilities(&DesignConfig::for_scheme(
        ProtectionScheme::from_str("DetectRecompute").unwrap(),
        Technology::SttMram,
    ));
    assert!(caps.recompute && caps.stuck_at_aware && caps.sliceable);
}

/// DetectRecompute's lane-batched path is bit-identical to its scalar path
/// even with permanent stuck-at defects in the fault regime — the sliced
/// injector's per-lane defect maps replay the scalar hash exactly, and the
/// recompute write-backs land on the same cells.
#[test]
fn detect_recompute_runs_lane_for_lane_with_stuck_at_defects() {
    let mut plan = SweepPlan::quick();
    let recompute = ProtectionScheme::from_str("DetectRecompute").unwrap();
    plan.protections = vec![
        ProtectionConfig {
            scheme: recompute,
            gate_style: GateStyle::MultiOutput,
        },
        ProtectionConfig {
            scheme: recompute,
            gate_style: GateStyle::SingleOutput,
        },
    ];
    plan.gate_error_rates = vec![0.0, 1e-3];
    plan.stuck_at_rate = 1e-3;
    plan.seeds_per_point = 70; // crosses a 64-lane batch boundary
    let sliced = run_campaign_with_backend(&plan, SimBackend::Sliced).unwrap();
    let scalar = run_campaign_with_backend(&plan, SimBackend::Scalar).unwrap();
    assert_eq!(
        sliced.to_json(),
        scalar.to_json(),
        "sliced and scalar DetectRecompute must agree with defects present"
    );
    let faulty: Vec<_> = sliced
        .points
        .iter()
        .filter(|p| p.gate_error_rate > 0.0)
        .collect();
    assert!(!faulty.is_empty());
    for point in faulty {
        assert!(point.errors_detected > 0, "{}", point.protection);
        assert!(
            point.corrections_written_back > 0,
            "{}: recompute must write corrections back",
            point.protection
        );
    }
}

/// A scheme that *declares* the sliced capability must *implement* it:
/// a lane batch of its trials is bit-identical to the same trials run
/// one-by-one on the scalar path. A scheme registered with
/// `sliceable() == true` but no `run_sliced` implementation panics here
/// (the trait's default), failing the suite.
#[test]
fn declared_sliced_capability_is_exercised_for_every_scheme() {
    let workload = SweepWorkload::Mac {
        acc_bits: 8,
        mul_bits: 4,
    };
    for protection in registry_protections() {
        let config = protection.design_config(Technology::SttMram);
        if !protection.scheme.runtime().sliceable() {
            continue;
        }
        let harness = TrialHarness::new(workload, protection, config, 1.5e-3)
            .unwrap_or_else(|e| panic!("{}: {e}", protection.label()));
        let mut arena = TrialArena::new();
        let batched = harness.run_trial_batch(0xcafe, 0, 9, &mut arena);
        let singles: Vec<_> = (0..9u64)
            .map(|t| harness.run_trial(0xcafe, t, &mut arena))
            .collect();
        assert_eq!(
            batched,
            singles,
            "{}: sliced batch must equal scalar trials",
            protection.label()
        );
    }
}

/// Detection-only schemes never write corrections back, and their
/// detections surface as uncorrectable (would-be-retry) counts so no
/// failure is silent while the parity holds.
#[test]
fn detect_only_schemes_never_correct() {
    let mut plan = SweepPlan::quick();
    plan.protections = registry_protections()
        .into_iter()
        .filter(|p| p.scheme.runtime().detect_only())
        .collect();
    assert!(
        !plan.protections.is_empty(),
        "registry carries at least one detection-only scheme"
    );
    plan.gate_error_rates = vec![2e-3];
    plan.seeds_per_point = 32;
    let report = run_campaign(&plan).unwrap();
    for point in &report.points {
        assert_eq!(point.corrections_written_back, 0, "{}", point.protection);
        assert!(point.errors_detected > 0, "{}", point.protection);
        assert_eq!(
            point.uncorrectable_checks, point.errors_detected,
            "{}: every detection is one would-be retry",
            point.protection
        );
    }
}

/// A campaign spanning the whole registry (both gate styles) is
/// byte-identical across backends — the ExecutionBackend contract holds
/// for plugin schemes exactly as for built-ins.
#[test]
fn full_registry_campaign_is_backend_invariant() {
    let mut plan = SweepPlan::quick();
    plan.protections = registry_protections();
    plan.gate_error_rates = vec![0.0, 1e-3];
    plan.seeds_per_point = 5;
    let sliced = run_campaign_with_backend(&plan, SimBackend::Sliced).unwrap();
    let scalar = run_campaign_with_backend(&plan, SimBackend::Scalar).unwrap();
    assert_eq!(sliced.to_json(), scalar.to_json());
    assert_eq!(
        sliced.points.len(),
        registry().len() * 2 * 2,
        "every registered scheme ran under both gate styles and both rates"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `FromStr` round-trips every registered scheme through both its
    /// names under arbitrary decoration-free selection.
    #[test]
    fn from_str_roundtrips_over_the_registry(index in 0usize..64, by_display in 0u8..2) {
        let schemes: Vec<ProtectionScheme> = ProtectionScheme::all().collect();
        let scheme = schemes[index % schemes.len()];
        let text = if by_display == 1 { scheme.name() } else { scheme.wire_name() };
        let parsed = ProtectionScheme::from_str(text).unwrap();
        prop_assert_eq!(parsed, scheme);
    }

    /// Canonical plan JSON round-trips through the parser with identical
    /// canonical bytes and content digest, for plans drawn from the full
    /// scheme registry (including `ParityDetect`).
    #[test]
    fn plan_json_roundtrips_over_the_registry(
        n_protections in 1usize..9,
        offset in 0usize..8,
        seeds in 1u64..20,
        seed in 0u64..u64::MAX,
    ) {
        let pool = registry_protections();
        let mut plan = SweepPlan::quick();
        plan.protections = pool
            .iter()
            .cycle()
            .skip(offset)
            .take(n_protections)
            .copied()
            .collect();
        plan.seeds_per_point = seeds;
        plan.campaign_seed = seed;

        let canonical = plan.canonical_json();
        let parsed = SweepPlan::from_json_str(&canonical).unwrap();
        prop_assert_eq!(parsed.canonical_json(), canonical.clone());
        prop_assert_eq!(parsed.content_digest(), plan.content_digest());
        prop_assert_eq!(&parsed.protections, &plan.protections);

        // Digest sensitivity: swapping any scheme for a different one
        // changes the content address.
        let mut mutated = plan.clone();
        let replacement = pool
            .iter()
            .copied()
            .find(|p| p != &mutated.protections[0])
            .unwrap();
        mutated.protections[0] = replacement;
        prop_assert_ne!(mutated.content_digest(), plan.content_digest());
    }
}
