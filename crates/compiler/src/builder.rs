//! NOR-based synthesis of Boolean and fixed-point arithmetic circuits
//! (§II-B step 2: gate-level opcode generation).
//!
//! The targeted PiM technologies execute NOR-family gates and the 4-input
//! THR gate natively, so every higher-level operation — XOR, adders,
//! multipliers, comparators — is expanded into those primitives here.
//! The builder produces a [`Netlist`] in topological order; multi-bit values
//! are plain `Vec<NetId>` little-endian *words*.
//!
//! # Examples
//!
//! ```
//! use nvpim_compiler::builder::CircuitBuilder;
//!
//! let mut b = CircuitBuilder::new();
//! let a = b.input_word(4);
//! let c = b.input_word(4);
//! let (sum, carry) = b.ripple_add(&a, &c, None);
//! b.mark_output_word(&sum);
//! b.mark_output(carry);
//! let netlist = b.finish();
//!
//! // 9 + 5 = 14
//! let out = netlist.evaluate(&[true, false, false, true, true, false, true, false]);
//! assert_eq!(out, vec![false, true, true, true, false]);
//! ```

use crate::netlist::{Gate, LogicOp, NetId, Netlist};

/// A little-endian multi-bit value (bit 0 first).
pub type Word = Vec<NetId>;

/// Incrementally builds a NOR/THR netlist.
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    netlist: Netlist,
    zero: Option<NetId>,
    one: Option<NetId>,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh_net(&mut self) -> NetId {
        let id = self.netlist.net_count;
        self.netlist.net_count += 1;
        id
    }

    fn push_gate(&mut self, op: LogicOp, inputs: Vec<NetId>) -> NetId {
        let output = self.fresh_net();
        self.netlist.gates.push(Gate { op, inputs, output });
        output
    }

    /// Declares a new primary input.
    pub fn input(&mut self) -> NetId {
        let id = self.fresh_net();
        self.netlist.inputs.push(id);
        id
    }

    /// Declares `width` primary inputs forming a little-endian word.
    pub fn input_word(&mut self, width: usize) -> Word {
        (0..width).map(|_| self.input()).collect()
    }

    /// The constant-0 net (created on first use).
    pub fn zero(&mut self) -> NetId {
        if let Some(z) = self.zero {
            return z;
        }
        let z = self.push_gate(LogicOp::Zero, vec![]);
        self.zero = Some(z);
        z
    }

    /// The constant-1 net (created on first use).
    pub fn one(&mut self) -> NetId {
        if let Some(o) = self.one {
            return o;
        }
        let o = self.push_gate(LogicOp::One, vec![]);
        self.one = Some(o);
        o
    }

    /// A constant word of the given width holding `value` (little-endian).
    pub fn constant_word(&mut self, value: u64, width: usize) -> Word {
        (0..width)
            .map(|i| {
                if (value >> i) & 1 == 1 {
                    self.one()
                } else {
                    self.zero()
                }
            })
            .collect()
    }

    /// Marks a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        self.netlist.outputs.push(net);
    }

    /// Marks every bit of a word as a primary output (LSB first).
    pub fn mark_output_word(&mut self, word: &Word) {
        for &net in word {
            self.mark_output(net);
        }
    }

    /// Finalizes the netlist.
    pub fn finish(self) -> Netlist {
        self.netlist
    }

    // ------------------------------------------------------------------
    // Bitwise primitives
    // ------------------------------------------------------------------

    /// Multi-input NOR (the native PiM gate).
    ///
    /// # Panics
    ///
    /// Panics if no inputs are given or more than 4 are given (the array
    /// supports 2–4 input gates; wider NORs must be composed).
    pub fn nor(&mut self, inputs: &[NetId]) -> NetId {
        assert!(
            (1..=4).contains(&inputs.len()),
            "NOR gates support 1 to 4 inputs, got {}",
            inputs.len()
        );
        self.push_gate(LogicOp::Nor, inputs.to_vec())
    }

    /// Logical NOT (single-input NOR).
    pub fn not(&mut self, a: NetId) -> NetId {
        self.nor(&[a])
    }

    /// Copy of a net (Table I's `CP`; fusable into a multi-output NOR by the
    /// scheduler when the source is itself a NOR).
    pub fn copy(&mut self, a: NetId) -> NetId {
        self.push_gate(LogicOp::Copy, vec![a])
    }

    /// Logical OR.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        let n = self.nor(&[a, b]);
        self.not(n)
    }

    /// Logical AND (`NOR` of the negated inputs).
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        let na = self.not(a);
        let nb = self.not(b);
        self.nor(&[na, nb])
    }

    /// Logical NAND.
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        let g = self.and(a, b);
        self.not(g)
    }

    /// XOR using the paper's 2-step construction (Table I): a 2-output NOR
    /// (modeled as NOR + Copy, fused by multi-output-capable schedulers)
    /// followed by the 4-input THR gate.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        let s1 = self.nor(&[a, b]);
        let s2 = self.copy(s1);
        self.push_gate(LogicOp::Thr, vec![a, b, s1, s2])
    }

    /// XNOR.
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// 3-input majority, `NOR(NOR(a,b), NOR(a,c), NOR(b,c))`.
    pub fn majority3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        let ab = self.nor(&[a, b]);
        let ac = self.nor(&[a, c]);
        let bc = self.nor(&[b, c]);
        self.nor(&[ab, ac, bc])
    }

    /// 2-to-1 multiplexer: `sel ? b : a`.
    pub fn mux(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        let nsel = self.not(sel);
        let pick_b = self.and(sel, b);
        let pick_a = self.and(nsel, a);
        self.or(pick_a, pick_b)
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Half adder: returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: NetId, b: NetId) -> (NetId, NetId) {
        let sum = self.xor(a, b);
        let carry = self.and(a, b);
        (sum, carry)
    }

    /// Full adder: returns `(sum, carry_out)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let ab = self.xor(a, b);
        let sum = self.xor(ab, cin);
        let carry = self.majority3(a, b, cin);
        (sum, carry)
    }

    /// Ripple-carry addition of two equal-width words, returning
    /// `(sum_word, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if the words have different widths or are empty.
    pub fn ripple_add(&mut self, a: &Word, b: &Word, cin: Option<NetId>) -> (Word, NetId) {
        assert_eq!(a.len(), b.len(), "ripple_add requires equal widths");
        assert!(!a.is_empty(), "ripple_add requires at least one bit");
        let mut carry = match cin {
            Some(c) => c,
            None => self.zero(),
        };
        let mut sum = Vec::with_capacity(a.len());
        for (&ai, &bi) in a.iter().zip(b) {
            let (s, c) = self.full_adder(ai, bi, carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// Two's-complement subtraction `a − b`, returning
    /// `(difference, borrow_is_clear)` where the second element is the final
    /// carry (1 means no borrow, i.e. `a >= b` for unsigned operands).
    pub fn ripple_sub(&mut self, a: &Word, b: &Word) -> (Word, NetId) {
        assert_eq!(a.len(), b.len(), "ripple_sub requires equal widths");
        let nb: Word = b.iter().map(|&bit| self.not(bit)).collect();
        let one = self.one();
        self.ripple_add(a, &nb, Some(one))
    }

    /// Zero-extends a word to `width` bits.
    pub fn zero_extend(&mut self, a: &Word, width: usize) -> Word {
        let mut out = a.clone();
        while out.len() < width {
            out.push(self.zero());
        }
        out
    }

    /// Sign-extends a word to `width` bits (two's complement).
    pub fn sign_extend(&mut self, a: &Word, width: usize) -> Word {
        let mut out = a.clone();
        let msb = *a.last().expect("sign_extend of empty word");
        while out.len() < width {
            out.push(msb);
        }
        out
    }

    /// Unsigned array multiplication, returning a word of width
    /// `a.len() + b.len()`.
    ///
    /// # Panics
    ///
    /// Panics if either word is empty.
    pub fn mul_unsigned(&mut self, a: &Word, b: &Word) -> Word {
        assert!(
            !a.is_empty() && !b.is_empty(),
            "multiplication of empty words"
        );
        let out_width = a.len() + b.len();
        // Accumulate shifted partial products with ripple adders.
        let mut acc: Word = (0..out_width).map(|_| self.zero()).collect();
        for (i, &bi) in b.iter().enumerate() {
            // partial product i: (a AND bi) << i, zero-extended to out_width
            let mut pp: Word = Vec::with_capacity(out_width);
            for _ in 0..i {
                pp.push(self.zero());
            }
            for &aj in a {
                let bit = self.and(aj, bi);
                pp.push(bit);
            }
            while pp.len() < out_width {
                pp.push(self.zero());
            }
            let (sum, _) = self.ripple_add(&acc, &pp, None);
            acc = sum;
        }
        acc
    }

    /// Multiply–accumulate: `acc + a·b`, truncated/zero-extended to
    /// `acc.len()` bits. The standard building block of the paper's dense
    /// matrix-multiplication and MLP benchmarks.
    pub fn mac(&mut self, acc: &Word, a: &Word, b: &Word) -> Word {
        let product = self.mul_unsigned(a, b);
        let product = if product.len() >= acc.len() {
            product[..acc.len()].to_vec()
        } else {
            self.zero_extend(&product, acc.len())
        };
        let (sum, _) = self.ripple_add(acc, &product, None);
        sum
    }

    /// Unsigned comparison `a >= b` (single bit).
    pub fn greater_equal(&mut self, a: &Word, b: &Word) -> NetId {
        let (_, no_borrow) = self.ripple_sub(a, b);
        no_borrow
    }

    /// Reduction OR over a word (true if any bit set). Useful for
    /// zero-detection in activations.
    pub fn reduce_or(&mut self, a: &Word) -> NetId {
        assert!(!a.is_empty(), "reduce_or of empty word");
        let mut acc = a[0];
        for &bit in &a[1..] {
            acc = self.or(acc, bit);
        }
        acc
    }

    /// Bitwise XOR of two equal-width words.
    pub fn xor_word(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.len(), b.len(), "xor_word requires equal widths");
        a.iter().zip(b).map(|(&x, &y)| self.xor(x, y)).collect()
    }

    /// Sum of several equal-width words via a balanced adder tree, truncated
    /// to the operand width (the accumulation pattern of dot products).
    pub fn adder_tree(&mut self, words: &[Word]) -> Word {
        assert!(!words.is_empty(), "adder_tree of no operands");
        let mut layer: Vec<Word> = words.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    let (sum, _) = self.ripple_add(&pair[0], &pair[1], None);
                    next.push(sum);
                } else {
                    next.push(pair[0].clone());
                }
            }
            layer = next;
        }
        layer.pop().expect("non-empty adder tree")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_bits(value: u64, width: usize) -> Vec<bool> {
        (0..width).map(|i| (value >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn basic_gates_truth_tables() {
        for (f, table) in [
            (
                CircuitBuilder::or as fn(&mut CircuitBuilder, NetId, NetId) -> NetId,
                [false, true, true, true],
            ),
            (CircuitBuilder::and, [false, false, false, true]),
            (CircuitBuilder::nand, [true, true, true, false]),
            (CircuitBuilder::xor, [false, true, true, false]),
            (CircuitBuilder::xnor, [true, false, false, true]),
        ] {
            for (i, &expected) in table.iter().enumerate() {
                let mut b = CircuitBuilder::new();
                let x = b.input();
                let y = b.input();
                let out = f(&mut b, x, y);
                b.mark_output(out);
                let n = b.finish();
                let a_val = i & 1 == 1;
                let b_val = i & 2 == 2;
                assert_eq!(n.evaluate(&[a_val, b_val]), vec![expected], "case {i}");
            }
        }
    }

    #[test]
    fn majority_and_mux() {
        for bits in 0..8u32 {
            let (a, b2, c) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
            let mut builder = CircuitBuilder::new();
            let x = builder.input();
            let y = builder.input();
            let z = builder.input();
            let maj = builder.majority3(x, y, z);
            let mux = builder.mux(x, y, z);
            builder.mark_output(maj);
            builder.mark_output(mux);
            let n = builder.finish();
            let out = n.evaluate(&[a, b2, c]);
            assert_eq!(out[0], (a & b2) | (a & c) | (b2 & c));
            assert_eq!(out[1], if a { c } else { b2 });
        }
    }

    #[test]
    fn full_adder_exhaustive() {
        for bits in 0..8u32 {
            let (a, b2, cin) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
            let mut builder = CircuitBuilder::new();
            let x = builder.input();
            let y = builder.input();
            let c = builder.input();
            let (s, cout) = builder.full_adder(x, y, c);
            builder.mark_output(s);
            builder.mark_output(cout);
            let n = builder.finish();
            let out = n.evaluate(&[a, b2, cin]);
            let total = u32::from(a) + u32::from(b2) + u32::from(cin);
            assert_eq!(out[0], total & 1 == 1);
            assert_eq!(out[1], total >= 2);
        }
    }

    #[test]
    fn ripple_add_8bit_random_cases() {
        for (a, b) in [(0u64, 0u64), (255, 1), (100, 155), (77, 33), (200, 200)] {
            let mut builder = CircuitBuilder::new();
            let wa = builder.input_word(8);
            let wb = builder.input_word(8);
            let (sum, carry) = builder.ripple_add(&wa, &wb, None);
            builder.mark_output_word(&sum);
            builder.mark_output(carry);
            let n = builder.finish();
            let mut inputs = to_bits(a, 8);
            inputs.extend(to_bits(b, 8));
            let out = n.evaluate(&inputs);
            let expected = a + b;
            assert_eq!(from_bits(&out[..8]), expected & 0xFF, "{a}+{b}");
            assert_eq!(out[8], expected > 0xFF, "carry of {a}+{b}");
        }
    }

    #[test]
    fn ripple_sub_and_comparison() {
        for (a, b) in [(10u64, 3u64), (3, 10), (200, 200), (0, 1), (255, 0)] {
            let mut builder = CircuitBuilder::new();
            let wa = builder.input_word(8);
            let wb = builder.input_word(8);
            let (diff, no_borrow) = builder.ripple_sub(&wa, &wb);
            let ge = builder.greater_equal(&wa, &wb);
            builder.mark_output_word(&diff);
            builder.mark_output(no_borrow);
            builder.mark_output(ge);
            let n = builder.finish();
            let mut inputs = to_bits(a, 8);
            inputs.extend(to_bits(b, 8));
            let out = n.evaluate(&inputs);
            assert_eq!(from_bits(&out[..8]), a.wrapping_sub(b) & 0xFF, "{a}-{b}");
            assert_eq!(out[8], a >= b);
            assert_eq!(out[9], a >= b);
        }
    }

    #[test]
    fn multiplication_4x4_exhaustive() {
        // Build once, evaluate for every input pair.
        let mut builder = CircuitBuilder::new();
        let wa = builder.input_word(4);
        let wb = builder.input_word(4);
        let product = builder.mul_unsigned(&wa, &wb);
        builder.mark_output_word(&product);
        let n = builder.finish();
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut inputs = to_bits(a, 4);
                inputs.extend(to_bits(b, 4));
                assert_eq!(from_bits(&n.evaluate(&inputs)), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn mac_accumulates() {
        let mut builder = CircuitBuilder::new();
        let acc = builder.input_word(12);
        let a = builder.input_word(4);
        let b = builder.input_word(4);
        let out = builder.mac(&acc, &a, &b);
        builder.mark_output_word(&out);
        let n = builder.finish();
        let mut inputs = to_bits(1000, 12);
        inputs.extend(to_bits(13, 4));
        inputs.extend(to_bits(11, 4));
        assert_eq!(from_bits(&n.evaluate(&inputs)), 1000 + 13 * 11);
    }

    #[test]
    fn adder_tree_sums_words() {
        let mut builder = CircuitBuilder::new();
        let words: Vec<Word> = (0..5).map(|_| builder.input_word(10)).collect();
        let sum = builder.adder_tree(&words);
        builder.mark_output_word(&sum);
        let n = builder.finish();
        let values = [17u64, 200, 3, 450, 99];
        let mut inputs = Vec::new();
        for v in values {
            inputs.extend(to_bits(v, 10));
        }
        assert_eq!(from_bits(&n.evaluate(&inputs)), values.iter().sum::<u64>());
    }

    #[test]
    fn xor_word_and_reduce_or() {
        let mut builder = CircuitBuilder::new();
        let a = builder.input_word(6);
        let b = builder.input_word(6);
        let x = builder.xor_word(&a, &b);
        let any = builder.reduce_or(&x);
        builder.mark_output_word(&x);
        builder.mark_output(any);
        let n = builder.finish();
        let mut inputs = to_bits(0b101010, 6);
        inputs.extend(to_bits(0b100110, 6));
        let out = n.evaluate(&inputs);
        assert_eq!(from_bits(&out[..6]), 0b001100);
        assert!(out[6]);
        // identical inputs -> zero, reduce_or false
        let mut inputs = to_bits(0b111000, 6);
        inputs.extend(to_bits(0b111000, 6));
        let out = n.evaluate(&inputs);
        assert_eq!(from_bits(&out[..6]), 0);
        assert!(!out[6]);
    }

    #[test]
    fn sign_and_zero_extension() {
        let mut builder = CircuitBuilder::new();
        let a = builder.input_word(4);
        let se = builder.sign_extend(&a, 8);
        let ze = builder.zero_extend(&a, 8);
        builder.mark_output_word(&se);
        builder.mark_output_word(&ze);
        let n = builder.finish();
        let out = n.evaluate(&to_bits(0b1010, 4));
        assert_eq!(from_bits(&out[..8]), 0b1111_1010);
        assert_eq!(from_bits(&out[8..]), 0b0000_1010);
    }

    #[test]
    #[should_panic(expected = "NOR gates support 1 to 4 inputs")]
    fn wide_nor_rejected() {
        let mut b = CircuitBuilder::new();
        let nets: Vec<NetId> = (0..5).map(|_| b.input()).collect();
        b.nor(&nets);
    }

    #[test]
    fn only_nor_thr_copy_and_constants_are_emitted() {
        // Every derived operation must lower to PiM-native gate kinds.
        let mut builder = CircuitBuilder::new();
        let a = builder.input_word(6);
        let b = builder.input_word(6);
        let p = builder.mul_unsigned(&a, &b);
        let (s, _) = builder.ripple_add(&p[..6].to_vec(), &b, None);
        builder.mark_output_word(&s);
        let n = builder.finish();
        assert!(n.gate_count() > 100);
        for gate in &n.gates {
            assert!(matches!(
                gate.op,
                LogicOp::Nor | LogicOp::Thr | LogicOp::Copy | LogicOp::Zero | LogicOp::One
            ));
        }
    }
}
