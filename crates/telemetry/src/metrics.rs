//! Log₂-bucketed histograms and the bucket math behind them.
//!
//! The histogram is the workhorse of the latency instrumentation: a fixed
//! array of 65 power-of-two buckets covering the full `u64` range, so
//! recording is a `leading_zeros` plus one array increment (no allocation,
//! no floating point), merging across threads is an elementwise add (and
//! therefore associative and commutative — folding order cannot change the
//! result), and quantiles resolve to deterministic bucket upper bounds
//! rather than interpolated estimates.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket 0 holds exactly the value `0`, and
/// bucket `k >= 1` holds the half-open range `[2^(k-1), 2^k)` (the final
/// bucket, `k = 64`, is closed at `u64::MAX`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Maps a recorded value to its bucket index.
///
/// `0` maps to bucket 0; any other value `v` maps to bucket
/// `64 - v.leading_zeros()`, i.e. one plus the index of its highest set bit.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The largest value a bucket can hold (used as the deterministic quantile
/// answer for any rank landing in that bucket).
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A plain (non-atomic) log₂-bucketed histogram.
///
/// This is the per-thread / snapshot form: cheap to record into, cheap to
/// [`merge`](Histogram::merge), and the type quantiles are computed on.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
    }

    /// Folds another histogram into this one (elementwise bucket add).
    ///
    /// Merging is associative and commutative, so per-thread histograms can
    /// be folded in any order and still produce identical totals.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Total number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded observations.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of recorded observations, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Raw bucket counts (index `k` per the [`bucket_index`] scheme).
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Deterministic quantile: the upper bound of the bucket containing the
    /// observation at rank `ceil(q * count)` (clamped to `[1, count]`).
    ///
    /// Returns `None` when the histogram is empty. `q` is clamped to
    /// `[0.0, 1.0]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return Some(bucket_upper_bound(index));
            }
        }
        // Unreachable when counts are consistent; fall back to the top.
        Some(bucket_upper_bound(HISTOGRAM_BUCKETS - 1))
    }
}

/// A shared, thread-safe histogram: the fold target per-thread
/// [`Histogram`]s and individual observations land in.
///
/// All counters are relaxed atomics — the histogram is monotone telemetry,
/// not a synchronization primitive, and a snapshot taken mid-fold is merely
/// slightly stale, never corrupt.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty shared histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation directly into the shared buckets.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Folds a per-thread histogram into the shared buckets.
    pub fn merge_from(&self, local: &Histogram) {
        for (shared, &count) in self.buckets.iter().zip(local.buckets.iter()) {
            if count != 0 {
                shared.fetch_add(count, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        // Saturate rather than wrap if a caller records astronomically
        // large sums; telemetry must never panic the hot path.
        self.sum.fetch_add(
            u64::try_from(local.sum).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// Takes a point-in-time plain copy for quantile math and export.
    #[must_use]
    pub fn snapshot(&self) -> Histogram {
        let mut out = Histogram::new();
        for (plain, shared) in out.buckets.iter_mut().zip(self.buckets.iter()) {
            *plain = shared.load(Ordering::Relaxed);
        }
        out.count = self.count.load(Ordering::Relaxed);
        out.sum = u128::from(self.sum.load(Ordering::Relaxed));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_exact_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for k in 1..64usize {
            let lo = 1u64 << (k - 1);
            let hi = (1u64 << k) - 1;
            assert_eq!(bucket_index(lo), k, "low edge of bucket {k}");
            assert_eq!(bucket_index(hi), k, "high edge of bucket {k}");
            assert_eq!(bucket_upper_bound(k), hi);
        }
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_bounds() {
        let mut h = Histogram::new();
        // 90 observations in bucket 4 ([8, 15]), 10 in bucket 10 ([512, 1023]).
        for _ in 0..90 {
            h.record(9);
        }
        for _ in 0..10 {
            h.record(700);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.50), Some(15));
        assert_eq!(h.quantile(0.90), Some(15)); // rank 90 is the last in bucket 4
        assert_eq!(h.quantile(0.91), Some(1023));
        assert_eq!(h.quantile(0.99), Some(1023));
        assert_eq!(h.quantile(0.0), Some(15)); // rank clamps to 1
        assert_eq!(h.quantile(1.0), Some(1023));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut parts: Vec<Histogram> = Vec::new();
        for thread in 0..4u64 {
            let mut h = Histogram::new();
            for i in 0..50 {
                h.record(thread * 1000 + i * 17);
            }
            parts.push(h);
        }
        // Left fold.
        let mut left = Histogram::new();
        for p in &parts {
            left.merge(p);
        }
        // Reverse-order fold.
        let mut right = Histogram::new();
        for p in parts.iter().rev() {
            right.merge(p);
        }
        // Tree fold: (0+1) + (2+3).
        let mut a = parts[0].clone();
        a.merge(&parts[1]);
        let mut b = parts[2].clone();
        b.merge(&parts[3]);
        a.merge(&b);
        for other in [&right, &a] {
            assert_eq!(left.buckets(), other.buckets());
            assert_eq!(left.count(), other.count());
            assert_eq!(left.sum(), other.sum());
        }
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(left.quantile(q), a.quantile(q));
        }
    }

    #[test]
    fn atomic_histogram_matches_plain_fold() {
        let shared = AtomicHistogram::new();
        let mut plain = Histogram::new();
        let mut local = Histogram::new();
        for v in [0u64, 1, 5, 1024, 65_535] {
            local.record(v);
            plain.record(v);
        }
        shared.merge_from(&local);
        shared.record(3);
        plain.record(3);
        let snap = shared.snapshot();
        assert_eq!(snap.buckets(), plain.buckets());
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.sum(), plain.sum());
    }

    #[test]
    fn mean_tracks_sum_over_count() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        h.record(10);
        h.record(30);
        assert_eq!(h.mean(), Some(20.0));
    }
}
