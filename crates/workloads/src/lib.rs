//! # nvpim-workloads
//!
//! The benchmark suite of the `nvpim` reproduction of *"On Error Correction
//! for Nonvolatile Processing-In-Memory"* (ISCA 2024): dense fixed-point
//! matrix multiplication ([`matmul`]), a two-layer quantized MLP over
//! (synthetic) MNIST ([`mnist`]), and a butterfly-arithmetic FFT ([`fft`]),
//! each expressed as the per-row NOR/THR netlist the PiM fleet executes
//! row-parallel, plus software references for functional validation.
//!
//! # Examples
//!
//! ```
//! use nvpim_workloads::Benchmark;
//!
//! let mm8 = Benchmark::MatMul { dim: 8 };
//! let netlist = mm8.row_netlist();
//! assert!(netlist.gate_count() > 1_000);
//! assert_eq!(mm8.shape().parallel_rows, 64);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benchmark;
pub mod fft;
pub mod matmul;
pub mod mnist;

pub use benchmark::Benchmark;
