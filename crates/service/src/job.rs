//! Job lifecycle tracking.
//!
//! Every submission gets a [`JobId`]; the id maps to a shared [`JobCore`]
//! holding the job's state machine, progress counters and (eventually) its
//! report. Identical in-flight plans are *coalesced*: several job ids can
//! point at one core, so N clients submitting the same plan concurrently
//! cost one campaign and all observe the same completion.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Identifier handed back to a client for one submission.
pub type JobId = u64;

/// The lifecycle state of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting in the priority queue.
    Queued,
    /// A worker is running the campaign.
    Running,
    /// Finished; the report is available.
    Done,
    /// The campaign could not run (carries the error description).
    Failed(String),
    /// Cancelled before completion.
    Cancelled,
}

impl JobState {
    /// Stable lowercase label used on the wire.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the state is final (no further transitions).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed(_) | JobState::Cancelled
        )
    }
}

/// What a cancellation request achieved. The state transition happens
/// under the job lock exactly once, so whoever observes
/// [`CancelledWhileQueued`](Self::CancelledWhileQueued) is the unique
/// party that performed it — which is what lets the service count each
/// cancellation exactly once (running jobs are counted by the worker when
/// `run_chunked` reports `Cancelled`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job had already finished; nothing to cancel.
    AlreadyTerminal,
    /// The job is running; the flag is set and the worker will stop at the
    /// next chunk boundary.
    RunningFlagged,
    /// The job was still queued and this call transitioned it to
    /// `Cancelled`.
    CancelledWhileQueued,
}

struct Slot {
    state: JobState,
    report: Option<Arc<String>>,
    /// When the worker started running the campaign.
    run_started: Option<Instant>,
    /// Total run duration, frozen at the terminal transition (so the
    /// reported rate stops decaying once the job is done).
    run_elapsed: Option<Duration>,
}

/// Shared state of one campaign execution (possibly serving several
/// coalesced job ids).
pub struct JobCore {
    /// The primary (first-submitted) job id for this campaign.
    pub id: JobId,
    /// Content digest of the plan.
    pub digest: String,
    /// Total trials the campaign runs.
    pub trials_total: u64,
    /// Whether the job completed at submit time from the report store.
    pub from_cache: bool,
    /// When the submission was accepted — the anchor for queue-wait
    /// latency accounting.
    pub submitted_at: Instant,
    trials_done: AtomicU64,
    /// Accuracy-campaign progress: trials whose inference matched the
    /// clean model so far (zero for error campaigns).
    correct_trials: AtomicU64,
    /// Accuracy-campaign progress: trials that produced a prediction so
    /// far (zero for error campaigns, which carry no accuracy data).
    evaluated_trials: AtomicU64,
    cancel: AtomicBool,
    slot: Mutex<Slot>,
    terminal: Condvar,
}

impl std::fmt::Debug for JobCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobCore")
            .field("id", &self.id)
            .field("digest", &self.digest)
            .field("state", &self.state().label())
            .finish()
    }
}

impl JobCore {
    /// Locks the slot, recovering from poison: a panicking worker (now
    /// contained by `catch_unwind`) may have poisoned the mutex, but the
    /// slot's invariants hold at every unlock point, and a poisoned job
    /// must stay observable — and failable — rather than wedging every
    /// status query behind a propagated panic.
    fn lock_slot(&self) -> std::sync::MutexGuard<'_, Slot> {
        self.slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A freshly queued job.
    pub fn new(id: JobId, digest: String, trials_total: u64) -> Arc<Self> {
        Arc::new(Self {
            id,
            digest,
            trials_total,
            from_cache: false,
            submitted_at: Instant::now(),
            trials_done: AtomicU64::new(0),
            correct_trials: AtomicU64::new(0),
            evaluated_trials: AtomicU64::new(0),
            cancel: AtomicBool::new(false),
            slot: Mutex::new(Slot {
                state: JobState::Queued,
                report: None,
                run_started: None,
                run_elapsed: None,
            }),
            terminal: Condvar::new(),
        })
    }

    /// A job reconstructed from the durable journal at daemon startup.
    /// `state` is the recovered terminal state (with, for `Done`, the
    /// report restored from the durable store); `trials_done` reflects the
    /// journal's last accepted checkpoint.
    pub fn restored(
        id: JobId,
        digest: String,
        trials_total: u64,
        state: JobState,
        report: Option<Arc<String>>,
        trials_done: u64,
    ) -> Arc<Self> {
        Arc::new(Self {
            id,
            digest,
            trials_total,
            from_cache: false,
            submitted_at: Instant::now(),
            trials_done: AtomicU64::new(trials_done),
            correct_trials: AtomicU64::new(0),
            evaluated_trials: AtomicU64::new(0),
            cancel: AtomicBool::new(false),
            slot: Mutex::new(Slot {
                state,
                report,
                run_started: None,
                run_elapsed: None,
            }),
            terminal: Condvar::new(),
        })
    }

    /// A job born `Done` because the report store already had its plan's
    /// report (a content-address hit).
    pub fn done_from_cache(
        id: JobId,
        digest: String,
        trials_total: u64,
        report: Arc<String>,
    ) -> Arc<Self> {
        Arc::new(Self {
            id,
            digest,
            trials_total,
            from_cache: true,
            submitted_at: Instant::now(),
            trials_done: AtomicU64::new(trials_total),
            correct_trials: AtomicU64::new(0),
            evaluated_trials: AtomicU64::new(0),
            cancel: AtomicBool::new(false),
            slot: Mutex::new(Slot {
                state: JobState::Done,
                report: Some(report),
                run_started: None,
                run_elapsed: None,
            }),
            terminal: Condvar::new(),
        })
    }

    /// Current state snapshot.
    pub fn state(&self) -> JobState {
        self.lock_slot().state.clone()
    }

    /// The finished report, when state is `Done`.
    pub fn report(&self) -> Option<Arc<String>> {
        self.lock_slot().report.clone()
    }

    /// Trials completed so far.
    pub fn trials_done(&self) -> u64 {
        self.trials_done.load(Ordering::Relaxed)
    }

    /// Completion percentage in `[0, 100]`.
    pub fn percent(&self) -> f64 {
        if self.trials_total == 0 {
            100.0
        } else {
            100.0 * self.trials_done() as f64 / self.trials_total as f64
        }
    }

    /// The campaign's observed trial throughput: completed trials divided
    /// by running wall time so far (frozen at the value reached when the
    /// job went terminal, so a finished job's rate never decays). `None`
    /// for jobs that never ran — still queued, cancelled while queued, or
    /// served instantly from the report cache — distinguishing "no
    /// throughput data" from a measured rate of zero.
    pub fn trials_per_sec(&self) -> Option<f64> {
        let slot = self.lock_slot();
        let secs = match (slot.run_elapsed, slot.run_started) {
            (Some(elapsed), _) => elapsed.as_secs_f64(),
            (None, Some(started)) => started.elapsed().as_secs_f64(),
            (None, None) => return None,
        };
        if secs <= 0.0 {
            None
        } else {
            Some(self.trials_done() as f64 / secs)
        }
    }

    /// Records cumulative progress (called by the running worker between
    /// chunks).
    pub(crate) fn note_progress(&self, trials_done: u64) {
        self.trials_done.store(trials_done, Ordering::Relaxed);
    }

    /// Accumulates accuracy-campaign progress (called by the running
    /// worker between chunks with that chunk's newly evaluated trials, and
    /// at recovery with the checkpointed prefix).
    pub(crate) fn note_accuracy(&self, correct: u64, evaluated: u64) {
        self.correct_trials.fetch_add(correct, Ordering::Relaxed);
        self.evaluated_trials
            .fetch_add(evaluated, Ordering::Relaxed);
    }

    /// Accuracy progress so far as `(correct, evaluated)`, or `None` when
    /// no trial has produced a prediction (error campaigns never do).
    pub fn accuracy_progress(&self) -> Option<(u64, u64)> {
        let evaluated = self.evaluated_trials.load(Ordering::Relaxed);
        (evaluated > 0).then(|| (self.correct_trials.load(Ordering::Relaxed), evaluated))
    }

    /// Requests cancellation. A queued job transitions to `Cancelled`
    /// immediately; a running one stops at its next chunk boundary.
    ///
    /// Note: a `JobCore` may serve several coalesced job ids — cancelling
    /// any one of them cancels the shared campaign for all of them.
    pub fn request_cancel(&self) -> CancelOutcome {
        let mut slot = self.lock_slot();
        if slot.state.is_terminal() {
            return CancelOutcome::AlreadyTerminal;
        }
        self.cancel.store(true, Ordering::SeqCst);
        if slot.state == JobState::Queued {
            slot.state = JobState::Cancelled;
            drop(slot);
            self.terminal.notify_all();
            CancelOutcome::CancelledWhileQueued
        } else {
            CancelOutcome::RunningFlagged
        }
    }

    /// Whether cancellation was requested.
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }

    /// Transitions `Queued → Running`; returns `false` when the job was
    /// cancelled while queued (the worker must skip it).
    pub(crate) fn set_running(&self) -> bool {
        let mut slot = self.lock_slot();
        if slot.state != JobState::Queued {
            return false;
        }
        slot.state = JobState::Running;
        slot.run_started = Some(Instant::now());
        true
    }

    fn finish(&self, state: JobState, report: Option<Arc<String>>) {
        let mut slot = self.lock_slot();
        if slot.state.is_terminal() {
            return;
        }
        slot.state = state;
        slot.report = report;
        slot.run_elapsed = slot.run_started.map(|started| started.elapsed());
        drop(slot);
        self.terminal.notify_all();
    }

    /// Transitions to `Done` with the finished report.
    pub(crate) fn complete(&self, report: Arc<String>) {
        self.trials_done.store(self.trials_total, Ordering::Relaxed);
        self.finish(JobState::Done, Some(report));
    }

    /// Transitions to `Failed`.
    pub(crate) fn fail(&self, error: String) {
        self.finish(JobState::Failed(error), None);
    }

    /// Transitions to `Cancelled`.
    pub(crate) fn mark_cancelled(&self) {
        self.finish(JobState::Cancelled, None);
    }

    /// Blocks until the job reaches a terminal state (or the timeout
    /// elapses), returning the state observed last.
    pub fn wait_terminal(&self, timeout: Option<Duration>) -> JobState {
        // `checked_add` guards against client-supplied huge timeouts
        // (u64::MAX ms would overflow `Instant` addition and panic); an
        // unrepresentable deadline simply waits without one.
        let deadline = timeout.and_then(|t| Instant::now().checked_add(t));
        let mut slot = self.lock_slot();
        while !slot.state.is_terminal() {
            match deadline {
                None => {
                    slot = self
                        .terminal
                        .wait(slot)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (next, timed_out) = self
                        .terminal
                        .wait_timeout(slot, deadline - now)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    slot = next;
                    if timed_out.timed_out() && !slot.state.is_terminal() {
                        break;
                    }
                }
            }
        }
        slot.state.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queued_jobs_cancel_immediately() {
        let core = JobCore::new(1, "d".into(), 10);
        assert_eq!(core.state(), JobState::Queued);
        assert_eq!(core.request_cancel(), CancelOutcome::CancelledWhileQueued);
        assert_eq!(core.state(), JobState::Cancelled);
        assert_eq!(
            core.request_cancel(),
            CancelOutcome::AlreadyTerminal,
            "already terminal"
        );
        assert!(!core.set_running(), "worker must skip cancelled jobs");
    }

    #[test]
    fn running_jobs_only_get_flagged() {
        let core = JobCore::new(4, "d".into(), 10);
        assert!(core.set_running());
        assert_eq!(core.request_cancel(), CancelOutcome::RunningFlagged);
        assert_eq!(
            core.state(),
            JobState::Running,
            "worker owns the transition"
        );
        assert!(core.cancel_requested());
    }

    #[test]
    fn huge_timeouts_do_not_panic() {
        let core = JobCore::new(5, "d".into(), 10);
        core.complete(Arc::new("{}".into()));
        let state = core.wait_terminal(Some(Duration::from_millis(u64::MAX)));
        assert_eq!(state, JobState::Done);
    }

    #[test]
    fn completion_wakes_waiters_and_pins_progress() {
        let core = JobCore::new(2, "d".into(), 8);
        assert!(core.set_running());
        core.note_progress(4);
        assert_eq!(core.percent(), 50.0);
        let waiter = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || core.wait_terminal(None))
        };
        std::thread::sleep(Duration::from_millis(20));
        core.complete(Arc::new("{}".into()));
        assert_eq!(waiter.join().unwrap(), JobState::Done);
        assert_eq!(core.percent(), 100.0);
        assert!(core.report().is_some());
    }

    #[test]
    fn wait_times_out_on_stuck_jobs() {
        let core = JobCore::new(3, "d".into(), 8);
        let state = core.wait_terminal(Some(Duration::from_millis(30)));
        assert_eq!(state, JobState::Queued);
    }
}
