//! Regenerates Fig. 7: the time overhead (%) of ECiM and TRiM relative to
//! the unprotected iso-area baseline, with multi-output gates.
//!
//! Pass `--sweep` to additionally run the Monte Carlo fault-injection
//! campaign (protection efficacy alongside the analytic cost table),
//! `--connect HOST:PORT` to run it on a remote `nvpim-serviced`, or
//! `--serve HOST:PORT` to stay up as a campaign daemon afterwards.

use nvpim_bench::{finish_harness, print_table, sweep_suite, HarnessOptions};
use nvpim_sim::technology::Technology;

fn main() {
    let opts = HarnessOptions::from_args();
    println!("Fig. 7 — time overhead (%) vs unprotected iso-area baseline\n");
    let rows = sweep_suite(&opts.suite(), Technology::SttMram);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format!("{:.1}", r.ecim.time_overhead_pct),
                format!("{:.1}", r.trim.time_overhead_pct),
                r.ecim.reclaims.to_string(),
                r.trim.reclaims.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "benchmark",
            "ECiM time overhead (%)",
            "TRiM time overhead (%)",
            "ECiM reclaims",
            "TRiM reclaims",
        ],
        &table,
    );
    finish_harness(&opts, &rows);
}
