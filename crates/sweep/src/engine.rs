//! Campaign execution: schedule caching, deterministic per-trial seeding,
//! and the parallel Monte Carlo trial loop.
//!
//! Design invariants:
//!
//! * **Compile once, run many** — schedules are compiled per
//!   `(workload, row layout)` and shared (via [`Arc`]) by every trial of
//!   every point that uses that layout, instead of recompiling per trial.
//! * **Deterministic seeding** — each trial's input RNG and fault-injector
//!   RNG seeds are pure functions of `(campaign_seed, point index, trial
//!   index)`, so results do not depend on which thread ran the trial.
//! * **Order-independent aggregation** — trial outcomes are collected in
//!   plan order before aggregation, so the report is byte-identical for any
//!   thread count (`RAYON_NUM_THREADS=1` vs default).

use std::collections::HashMap;
use std::sync::Arc;

use nvpim_compiler::netlist::Netlist;
use nvpim_compiler::schedule::{map_netlist, RowSchedule};
use nvpim_core::config::{DesignConfig, SimBackend};
use nvpim_core::executor::{ExecScratch, ProtectedExecutor};
use nvpim_core::sliced::{SlicedExecScratch, SlicedExecutor};
use nvpim_core::system::{evaluate_schedule, WorkloadShape};
use nvpim_sim::array::PimArray;
use nvpim_sim::fault::{ErrorRates, FaultInjector, FaultSite};
use nvpim_sim::sliced::{SlicedFaultInjector, SlicedPimArray, LANES};
use nvpim_telemetry::{Counter as TelemetryCounter, LocalTelemetry, Phase, Telemetry};
use nvpim_workloads::mnist::{self, MnistAccuracyBaseline, MnistAccuracyModel, SyntheticMnist};
use nvpim_workloads::Benchmark;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::plan::{CampaignKind, EstimatorMode, ProtectionConfig, SweepPlan, SweepWorkload};
use crate::report::{EstimatorSummary, PointSummary, SweepReport, TrialOutcome};
use crate::SweepError;

/// A compiled `(netlist, schedule)` pair shared by all trials of the
/// points that map onto the same row layout.
#[derive(Debug)]
pub struct CompiledKernel {
    /// The workload's row netlist.
    pub netlist: Netlist,
    /// The schedule compiled for one specific row layout.
    pub schedule: RowSchedule,
}

/// Schedule-cache key: the workload (a `Copy` enum — no per-lookup string
/// allocation) plus the row layout's `(total, metadata, cells_per_value)`
/// columns.
type LayoutKey = (SweepWorkload, (usize, usize, usize));

/// Cache of compiled schedules keyed by `(workload, row layout)`.
///
/// Technologies never affect the layout, and distinct protection schemes
/// frequently share one (e.g. every technology's ECiM design), so a
/// campaign compiles far fewer schedules than it has points.
#[derive(Debug, Default)]
pub struct ScheduleCache {
    entries: HashMap<LayoutKey, Arc<CompiledKernel>>,
    netlists: HashMap<SweepWorkload, Netlist>,
    hits: u64,
    compiles: u64,
}

impl ScheduleCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct compiled schedules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime count of lookups served from the cache without compiling.
    ///
    /// A long-running service shares one cache across every job, so this
    /// counter (exposed through the service's `stats` command) is the
    /// observable proof that resubmitted plans recompile nothing.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime count of lookups that had to compile a schedule.
    pub fn compiles(&self) -> u64 {
        self.compiles
    }

    /// Returns the compiled kernel for `(workload, config.row_layout())`,
    /// compiling (and validating) it on first use.
    ///
    /// # Errors
    ///
    /// [`SweepError::Map`] when mapping fails outright and
    /// [`SweepError::NotDirectlyExecutable`] when the schedule spills (a
    /// spilled schedule cannot run on a single simulated row).
    pub fn get_or_compile(
        &mut self,
        workload: SweepWorkload,
        config: &DesignConfig,
    ) -> Result<Arc<CompiledKernel>, SweepError> {
        let layout = config.row_layout();
        let key = (
            workload,
            (
                layout.total_columns,
                layout.metadata_columns,
                layout.cells_per_value,
            ),
        );
        if let Some(kernel) = self.entries.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(kernel));
        }
        // Netlist synthesis is itself cached: every layout of a workload
        // shares one netlist build.
        let netlist = self
            .netlists
            .entry(workload)
            .or_insert_with(|| workload.netlist())
            .clone();
        let schedule = map_netlist(&netlist, layout).map_err(|err| SweepError::Map {
            workload: workload.name(),
            detail: err.to_string(),
        })?;
        if !schedule.is_directly_executable() {
            return Err(SweepError::NotDirectlyExecutable {
                workload: workload.name(),
                layout_label: format!(
                    "{} cols, {} metadata, {} cells/value",
                    layout.total_columns, layout.metadata_columns, layout.cells_per_value
                ),
            });
        }
        self.compiles += 1;
        let kernel = Arc::new(CompiledKernel { netlist, schedule });
        self.entries.insert(key, Arc::clone(&kernel));
        Ok(kernel)
    }
}

/// One captured fault-free trial of a design point: what every zero-fault
/// trial of that point deterministically reproduces.
///
/// Legality rests on the scheme's
/// [`analytic_clean`](nvpim_core::scheme::SchemeRuntime::analytic_clean)
/// capability — the clean-run operation sequence, check count and metadata
/// traffic are a pure function of the schedule, never of the inputs. The
/// engine does not take the declaration on faith:
/// [`capture_clean_profile`] probes the point with two *different* input
/// vectors and returns `None` (disabling the fast path and the estimator)
/// on any disagreement, any injected fault, any wrong output bit or any
/// execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CleanProfile {
    /// Gate-output fault decisions one trial makes — the decision window
    /// `D` over which "zero faults" is defined.
    pub(crate) decisions: u64,
    /// The outcome every zero-fault trial of the point reproduces.
    pub(crate) outcome: TrialOutcome,
}

/// Probes one design point with two fault-free trials on different inputs
/// and returns the shared clean profile, or `None` when the point cannot
/// legally settle zero-fault trials analytically (scheme opt-out, probe
/// disagreement, or a probe that faulted/failed/errored).
pub(crate) fn capture_clean_profile(
    config: &DesignConfig,
    kernel: &CompiledKernel,
    executor: &ProtectedExecutor,
) -> Option<CleanProfile> {
    if !config.scheme.runtime().analytic_clean() {
        return None;
    }
    let netlist = &kernel.netlist;
    let mut profile: Option<CleanProfile> = None;
    let mut inputs = Vec::new();
    let mut eval_values = Vec::new();
    let mut expected = Vec::new();
    let mut scratch = ExecScratch::default();
    for probe_seed in [0xC1EA_0001u64, 0xC1EA_0002] {
        let mut input_rng = ChaCha8Rng::seed_from_u64(probe_seed);
        inputs.clear();
        inputs.extend((0..netlist.inputs.len()).map(|_| input_rng.gen_bool(0.5)));
        netlist.evaluate_into(&inputs, &mut eval_values, &mut expected);
        let mut array = PimArray::standard(config.technology);
        array.reset_for_trial(config.technology, ErrorRates::NONE, probe_seed);
        let report = executor
            .run_with_scratch(
                netlist,
                &kernel.schedule,
                &mut array,
                0,
                &inputs,
                &mut scratch,
            )
            .ok()?;
        let wrong_bits = report
            .outputs
            .iter()
            .zip(&expected)
            .filter(|(got, want)| got != want)
            .count();
        if wrong_bits != 0 || array.fault_injector().fault_count() != 0 {
            return None;
        }
        let candidate = CleanProfile {
            decisions: array.fault_injector().decision_count(FaultSite::GateOutput),
            outcome: TrialOutcome {
                faults_injected: 0,
                checks: report.checks,
                errors_detected: report.errors_detected,
                corrections_written_back: report.corrections_written_back,
                uncorrectable: report.uncorrectable,
                wrong_output_bits: 0,
                exec_error: None,
                correct: None,
            },
        };
        match &profile {
            None => profile = Some(candidate),
            // The two probes used different inputs; any divergence falsifies
            // the scheme's input-independence claim for this point.
            Some(first) if *first != candidate => return None,
            Some(_) => {}
        }
    }
    profile
}

/// Evaluation images of an accuracy campaign. Trials cycle through them by
/// their input stream, so every image is exercised across a point's seeds.
pub(crate) const ACCURACY_IMAGES: usize = 64;

/// Seed-stream tweak of the accuracy model's weights (mixed with the
/// campaign seed, distinct from every trial stream).
const ACCURACY_MODEL_STREAM: u64 = 0xACC0_4D0D_E11A_57A1;
/// Seed-stream tweak of the accuracy campaign's evaluation images.
const ACCURACY_IMAGE_STREAM: u64 = 0xACC0_1A6E_0DA7_A5E7;

/// Everything an accuracy campaign shares across one workload's points: the
/// reduced inference model, the pooled evaluation set, the once-per-campaign
/// clean baseline, and the precomputed per-`(image, neuron)` row inputs and
/// fault-free accumulator reference bits (so the trial hot path packs and
/// evaluates nothing).
#[derive(Debug)]
pub(crate) struct AccuracyContext {
    pub(crate) model: MnistAccuracyModel,
    pub(crate) baseline: MnistAccuracyBaseline,
    /// The shared 49-term MAC netlist every hidden neuron executes.
    pub(crate) netlist: Netlist,
    /// Row input bits, indexed `[image][neuron]`.
    inputs: Vec<Vec<Vec<bool>>>,
    /// Fault-free accumulator output bits, indexed `[image][neuron]`.
    expected: Vec<Vec<Vec<bool>>>,
}

impl AccuracyContext {
    /// Builds one workload's shared accuracy state. Model weights and
    /// evaluation images derive from the campaign seed through distinct mix
    /// streams, so the whole campaign — clean baseline included — is a pure
    /// function of the plan.
    pub(crate) fn prepare(weight_bits: usize, campaign_seed: u64) -> Self {
        let model =
            MnistAccuracyModel::generate(weight_bits, mix(campaign_seed ^ ACCURACY_MODEL_STREAM));
        let dataset =
            SyntheticMnist::generate(ACCURACY_IMAGES, mix(campaign_seed ^ ACCURACY_IMAGE_STREAM));
        let pooled: Vec<Vec<u8>> = dataset
            .images
            .iter()
            .map(|img| mnist::downsample(img))
            .collect();
        let baseline = MnistAccuracyBaseline::capture(&model, &pooled, &dataset.labels);
        let netlist = model.netlist();
        let mut eval_values = Vec::new();
        let mut inputs = Vec::with_capacity(pooled.len());
        let mut expected = Vec::with_capacity(pooled.len());
        for image in &pooled {
            let mut image_inputs = Vec::with_capacity(mnist::EVAL_HIDDEN);
            let mut image_expected = Vec::with_capacity(mnist::EVAL_HIDDEN);
            for neuron in 0..mnist::EVAL_HIDDEN {
                let row_inputs = model.neuron_inputs(image, neuron);
                let mut outputs = Vec::new();
                netlist.evaluate_into(&row_inputs, &mut eval_values, &mut outputs);
                image_inputs.push(row_inputs);
                image_expected.push(outputs);
            }
            inputs.push(image_inputs);
            expected.push(image_expected);
        }
        Self {
            model,
            baseline,
            netlist,
            inputs,
            expected,
        }
    }

    /// Number of evaluation images.
    pub(crate) fn image_count(&self) -> usize {
        self.inputs.len()
    }

    /// The cached once-per-campaign clean-run baseline accuracy (the clean
    /// model's agreement with the synthetic labels).
    pub(crate) fn clean_label_accuracy(&self) -> f64 {
        self.baseline.label_accuracy
    }
}

/// The weight precision of an accuracy workload. Plan validation guarantees
/// accuracy campaigns run only on labelled (MNIST) workloads.
fn accuracy_weight_bits(workload: SweepWorkload) -> usize {
    match workload {
        SweepWorkload::Benchmark(Benchmark::Mnist { weight_bits }) => weight_bits,
        other => unreachable!("accuracy campaign on unlabelled workload {}", other.name()),
    }
}

/// One fully-resolved campaign point, ready to run trials. Public so
/// [`ExecutionBackend`] implementations can be written outside this
/// module; construction stays inside the engine.
#[derive(Debug, Clone)]
pub struct PointContext {
    pub(crate) workload: SweepWorkload,
    pub(crate) protection: ProtectionConfig,
    pub(crate) config: DesignConfig,
    pub(crate) gate_error_rate: f64,
    pub(crate) kernel: Arc<CompiledKernel>,
    pub(crate) executor: Arc<ProtectedExecutor>,
    /// Lane-batched executor for the same design point (the sliced
    /// backend); shares the point's compiled schedule.
    pub(crate) sliced: Arc<SlicedExecutor>,
    /// Analytic single-row time estimate (ns) from the system model.
    pub(crate) est_time_ns: f64,
    /// Analytic single-row energy estimate (fJ) from the system model.
    pub(crate) est_energy_fj: f64,
    /// Workload name, formatted once at preparation time so report
    /// assembly never re-formats labels.
    pub(crate) workload_name: String,
    /// Technology display label, cached like [`Self::workload_name`].
    pub(crate) technology_label: String,
    /// Protection label (e.g. `"ECiM/m-o"`), cached like
    /// [`Self::workload_name`] — built from the scheme runtime's
    /// `&'static str` display name.
    pub(crate) protection_label: String,
    /// The point's verified clean profile: `Some` enables the analytic
    /// zero-fault fast path (byte-identical — the skip-sampled injector
    /// proves no fault lands in the decision window, so the trial returns
    /// the captured outcome without executing a gate). `None` runs every
    /// trial in full.
    pub(crate) clean: Option<CleanProfile>,
    /// Whether trials of this point are conditioned on the at-least-one-
    /// fault stratum (stratified estimator mode with a verified clean
    /// profile, a positive decision window and a rate in `(0, 1)`). Exact
    /// mode never sets this.
    pub(crate) conditioned: bool,
    /// Permanent stuck-at cell density of this point's fault regime
    /// (plan-level, 0.0 for defect-free campaigns).
    pub(crate) stuck_at_rate: f64,
    /// Accuracy-campaign state shared by every point of the workload
    /// (`None` for error campaigns — the historical trial path).
    pub(crate) accuracy: Option<Arc<AccuracyContext>>,
}

impl PointContext {
    /// Assembles a point, formatting its report labels exactly once (the
    /// scheme's `&'static str` display name plus the gate-style and
    /// technology labels) so the per-point aggregation path allocates no
    /// fresh formatting.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        workload: SweepWorkload,
        protection: ProtectionConfig,
        config: DesignConfig,
        gate_error_rate: f64,
        kernel: Arc<CompiledKernel>,
        executor: Arc<ProtectedExecutor>,
        sliced: Arc<SlicedExecutor>,
        est_time_ns: f64,
        est_energy_fj: f64,
    ) -> Self {
        let workload_name = workload.name();
        let technology_label = config.technology.to_string();
        let protection_label = protection.label();
        Self {
            workload,
            protection,
            config,
            gate_error_rate,
            kernel,
            executor,
            sliced,
            est_time_ns,
            est_energy_fj,
            workload_name,
            technology_label,
            protection_label,
            clean: None,
            conditioned: false,
            stuck_at_rate: 0.0,
            accuracy: None,
        }
    }

    /// The analytic fault probability `P1` this point's estimator reweights
    /// by: the chance at least one gate fault lands in the decision window
    /// (1.0 for unconditioned points, where the estimate is the plain
    /// Monte Carlo one).
    pub fn fault_probability(&self) -> f64 {
        if !self.conditioned {
            return 1.0;
        }
        let decisions = self.clean.as_ref().map_or(0, |c| c.decisions);
        FaultInjector::fault_within_probability(self.gate_error_rate, decisions)
    }

    /// The design configuration of this point.
    pub fn config(&self) -> &DesignConfig {
        &self.config
    }

    /// The workload this point executes.
    pub fn workload(&self) -> SweepWorkload {
        self.workload
    }

    /// The protection design point (scheme + gate style).
    pub fn protection(&self) -> ProtectionConfig {
        self.protection
    }

    /// The cached point label triple `(workload, technology, protection)`.
    pub fn labels(&self) -> (&str, &str, &str) {
        (
            &self.workload_name,
            &self.technology_label,
            &self.protection_label,
        )
    }

    /// The shared accuracy-campaign context, when this point belongs to an
    /// accuracy campaign.
    pub(crate) fn accuracy_context(&self) -> Option<&AccuracyContext> {
        self.accuracy.as_deref()
    }

    /// The point's fault regime as [`ErrorRates`]: transient gate-output
    /// faults plus the plan's permanent stuck-at defect density.
    fn rates(&self) -> ErrorRates {
        ErrorRates {
            gate: self.gate_error_rate,
            ..ErrorRates::NONE
        }
        .with_stuck_at(self.stuck_at_rate)
    }

    /// Whether this point's trials can run on the sliced backend with
    /// bit-identical results: the **scheme** must declare the lane-batched
    /// run path (a registry capability, not an engine special case) and
    /// the fault regime must be gate-only (always true for plan-derived
    /// points) at a rate the lane-masked injector reproduces exactly.
    /// Points that fail either check run on the scalar path even when
    /// [`SimBackend::Sliced`] is requested. Accuracy points always run
    /// scalar: their trials interleave `EVAL_HIDDEN` row programs with
    /// periphery classification, which the lane-batched path does not model.
    pub fn sliceable(&self) -> bool {
        self.config.scheme.runtime().sliceable()
            && SlicedFaultInjector::supports(&self.rates())
            && self.accuracy.is_none()
    }
}

/// SplitMix64-style mix used for per-trial seed derivation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a trial's base seed from the campaign seed and its coordinates.
///
/// Pure function of its arguments — never of scheduling order.
pub fn derive_trial_seed(campaign_seed: u64, point_index: u64, trial_index: u64) -> u64 {
    mix(mix(campaign_seed ^ mix(point_index)) ^ trial_index)
}

/// The `(input_rng_seed, fault_injector_seed)` pair a trial derives from
/// its base seed — the engine's exact stream split, exposed so external
/// trial reconstructions (e.g. the `trial_throughput` bench's legacy mode)
/// replay the very same inputs and fault pattern as the engine path.
pub fn trial_stream_seeds(base_seed: u64) -> (u64, u64) {
    (mix(base_seed ^ 0x1), mix(base_seed ^ 0x2))
}

/// Reusable per-thread working memory for the Monte Carlo trial loop.
///
/// One arena holds the simulated array (reset in place per trial — a
/// memset over the packed words, not a reallocation), the input/expected
/// buffers, and the executor's [`ExecScratch`]. The rayon trial loop
/// creates one arena per worker via `map_init`, so steady-state trials
/// allocate nothing.
///
/// For the sliced backend the arena additionally holds a `TrialBatch`:
/// the transposed 64-lane array, the lane-word input/expected buffers and
/// the [`SlicedExecScratch`] — reset in place per batch, with per-lane
/// fault logs reusing their capacity.
///
/// **Purity contract:** a trial run through a warmed-up arena is
/// bit-identical to one run with fresh allocations — trial outcomes are a
/// pure function of `(point, seed)`, never of which arena (or thread, or
/// lane batch) ran them. The arena-purity tests assert this.
#[derive(Debug, Default)]
pub struct TrialArena {
    array: Option<PimArray>,
    inputs: Vec<bool>,
    expected: Vec<bool>,
    eval_values: Vec<bool>,
    scratch: ExecScratch,
    batch: TrialBatch,
    /// Per-thread telemetry accumulator: plain `u64` arrays the hot path
    /// records into with no shared-atomic traffic. Folds into the shared
    /// sink on drop — which the rayon `map_init` loop triggers at the end
    /// of every parallel chunk. Disabled (all no-ops, zero clock reads) for
    /// arenas built with [`TrialArena::new`].
    telemetry: LocalTelemetry,
}

impl TrialArena {
    /// Creates an empty arena (buffers grow on first use) with telemetry
    /// disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty arena whose trials record phase timings and
    /// counters into `sink` (folded at chunk boundaries, see
    /// [`LocalTelemetry`]). A disabled sink behaves exactly like
    /// [`TrialArena::new`].
    pub fn with_telemetry(sink: &Telemetry) -> Self {
        Self {
            telemetry: LocalTelemetry::new(sink),
            ..Self::default()
        }
    }

    /// Folds any accumulated telemetry into the shared sink now (also
    /// happens automatically on drop).
    pub fn flush_telemetry(&mut self) {
        self.telemetry.flush();
    }
}

/// The sliced-backend half of a [`TrialArena`]: everything a 64-lane batch
/// needs, reusable across batches of different points, technologies and
/// codes with no steady-state allocation. Crate-private — callers only
/// ever touch it through [`TrialArena`].
#[derive(Debug, Default)]
pub(crate) struct TrialBatch {
    array: Option<SlicedPimArray>,
    /// Per-lane fault seeds of the current batch.
    fault_seeds: Vec<u64>,
    /// Per-lane input seeds of the current batch (kept alongside the fault
    /// seeds so the zero-fault fast path can decide before any input work).
    input_seeds: Vec<u64>,
    /// Transposed primary inputs: word `i` holds input bit `i` across lanes.
    input_words: Vec<u64>,
    /// Lane-parallel netlist evaluation working array.
    eval_words: Vec<u64>,
    /// Transposed fault-free reference outputs.
    expected_words: Vec<u64>,
    /// Per-lane wrong-output-bit counters.
    wrong_bits: Vec<u64>,
    scratch: SlicedExecScratch,
}

/// Executes one Monte Carlo trial of `ctx` in `arena` on the scalar path.
/// `base_seed` comes from [`derive_trial_seed`]. Public so out-of-crate
/// [`ExecutionBackend`] implementations can compose the engine's exact
/// per-trial semantics.
pub fn run_trial(ctx: &PointContext, base_seed: u64, arena: &mut TrialArena) -> TrialOutcome {
    if let Some(accuracy) = &ctx.accuracy {
        return run_accuracy_trial(ctx, accuracy, base_seed, arena);
    }
    // Independent streams for input generation and fault injection.
    let (input_seed, fault_seed) = trial_stream_seeds(base_seed);

    // Split the arena into disjoint field borrows so the telemetry
    // accumulator can record while the array is live.
    let TrialArena {
        array: array_slot,
        inputs,
        expected,
        eval_values,
        scratch,
        telemetry,
        ..
    } = arena;

    let rates = ctx.rates();
    let array = array_slot.get_or_insert_with(|| PimArray::standard(ctx.config.technology));
    let span = telemetry.span_start();
    array.reset_for_trial(ctx.config.technology, rates, fault_seed);
    telemetry.span_end(Phase::FaultInjection, span);

    if let Some(clean) = &ctx.clean {
        let window = clean.decisions;
        if ctx.conditioned {
            // Stratified mode: force the first gate fault inside the decision
            // window (a truncated-geometric redraw); the trial then runs in
            // full and its counters describe the at-least-one-fault stratum.
            let span = telemetry.span_start();
            array
                .fault_injector_mut()
                .condition_first_fault(FaultSite::GateOutput, window);
            telemetry.span_end(Phase::EstimatorRedraw, span);
            telemetry.add(TelemetryCounter::EstimatorRedraws, 1);
        } else if window > 0 {
            // Analytic zero-fault fast path: the skip sampler already knows
            // the index of the trial's first would-be gate fault. If it lies
            // beyond the decision window, every one of the trial's fault
            // decisions comes up clean and the outcome is — provably, via the
            // captured profile — the clean outcome. Peeking consumes exactly
            // the draw `apply` would have consumed lazily, so slow-path
            // trials that fall through remain byte-identical.
            let span = telemetry.span_start();
            if let Some(next) = array
                .fault_injector_mut()
                .next_fault_in(FaultSite::GateOutput)
            {
                if next >= window {
                    let outcome = clean.outcome.clone();
                    telemetry.span_end(Phase::AnalyticCleanSettle, span);
                    telemetry.add(TelemetryCounter::CleanSettledTrials, 1);
                    telemetry.add(TelemetryCounter::TrialsExecuted, 1);
                    return outcome;
                }
            }
        }
    }

    let span = telemetry.span_start();
    let mut input_rng = ChaCha8Rng::seed_from_u64(input_seed);
    let netlist = &ctx.kernel.netlist;
    inputs.clear();
    inputs.extend((0..netlist.inputs.len()).map(|_| input_rng.gen_bool(0.5)));
    netlist.evaluate_into(inputs, eval_values, expected);

    let outcome = match ctx.executor.run_with_scratch(
        netlist,
        &ctx.kernel.schedule,
        array,
        0,
        inputs,
        scratch,
    ) {
        Ok(report) => {
            let wrong_bits = report
                .outputs
                .iter()
                .zip(expected.iter())
                .filter(|(got, want)| got != want)
                .count() as u64;
            TrialOutcome {
                faults_injected: array.fault_injector().fault_count() as u64,
                checks: report.checks,
                errors_detected: report.errors_detected,
                corrections_written_back: report.corrections_written_back,
                uncorrectable: report.uncorrectable,
                wrong_output_bits: wrong_bits,
                exec_error: None,
                correct: None,
            }
        }
        Err(err) => TrialOutcome {
            faults_injected: array.fault_injector().fault_count() as u64,
            checks: 0,
            errors_detected: 0,
            corrections_written_back: 0,
            uncorrectable: 0,
            wrong_output_bits: 0,
            exec_error: Some(err.to_string()),
            correct: None,
        },
    };
    telemetry.span_end(Phase::GateExecution, span);
    telemetry.add(TelemetryCounter::TrialsExecuted, 1);
    outcome
}

/// Executes one accuracy-campaign trial: the trial's evaluation image is
/// picked by its input stream, each hidden neuron's row program runs on its
/// own array row under one shared fault/defect draw, and the periphery
/// classifies the (possibly corrupted) accumulator sums. `correct` records
/// whether that prediction matches the clean baseline's for the same image —
/// top-1 fidelity, so a fault-free trial is always correct and accuracy
/// degradation is attributable to the injected faults alone.
fn run_accuracy_trial(
    ctx: &PointContext,
    accuracy: &AccuracyContext,
    base_seed: u64,
    arena: &mut TrialArena,
) -> TrialOutcome {
    let (input_seed, fault_seed) = trial_stream_seeds(base_seed);
    let TrialArena {
        array: array_slot,
        scratch,
        telemetry,
        ..
    } = arena;

    let rates = ctx.rates();
    let array = array_slot.get_or_insert_with(|| PimArray::standard(ctx.config.technology));
    let span = telemetry.span_start();
    array.reset_for_trial(ctx.config.technology, rates, fault_seed);
    telemetry.span_end(Phase::FaultInjection, span);

    let image = (input_seed % accuracy.image_count() as u64) as usize;
    let netlist = &ctx.kernel.netlist;

    let span = telemetry.span_start();
    let mut outcome = TrialOutcome {
        faults_injected: 0,
        checks: 0,
        errors_detected: 0,
        corrections_written_back: 0,
        uncorrectable: 0,
        wrong_output_bits: 0,
        exec_error: None,
        correct: None,
    };
    let mut hidden_sums = [0u64; mnist::EVAL_HIDDEN];
    for (neuron, sum_slot) in hidden_sums.iter_mut().enumerate() {
        let inputs = &accuracy.inputs[image][neuron];
        let expected = &accuracy.expected[image][neuron];
        match ctx.executor.run_with_scratch(
            netlist,
            &ctx.kernel.schedule,
            array,
            neuron,
            inputs,
            scratch,
        ) {
            Ok(report) => {
                outcome.checks += report.checks;
                outcome.errors_detected += report.errors_detected;
                outcome.corrections_written_back += report.corrections_written_back;
                outcome.uncorrectable += report.uncorrectable;
                outcome.wrong_output_bits += report
                    .outputs
                    .iter()
                    .zip(expected)
                    .filter(|(got, want)| got != want)
                    .count() as u64;
                *sum_slot = report
                    .outputs
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &bit)| acc | (u64::from(bit) << i));
            }
            Err(err) => {
                // Mirror the scalar error path: zeroed counters, the fault
                // count so far, no prediction.
                let failed = TrialOutcome {
                    faults_injected: array.fault_injector().fault_count() as u64,
                    checks: 0,
                    errors_detected: 0,
                    corrections_written_back: 0,
                    uncorrectable: 0,
                    wrong_output_bits: 0,
                    exec_error: Some(err.to_string()),
                    correct: None,
                };
                telemetry.span_end(Phase::GateExecution, span);
                telemetry.add(TelemetryCounter::TrialsExecuted, 1);
                return failed;
            }
        }
    }
    outcome.faults_injected = array.fault_injector().fault_count() as u64;
    let prediction = accuracy.model.classify_from_sums(&hidden_sums);
    outcome.correct = Some(prediction == accuracy.baseline.clean_predictions[image]);
    telemetry.span_end(Phase::GateExecution, span);
    telemetry.add(TelemetryCounter::TrialsExecuted, 1);
    outcome
}

/// Executes trials `first_trial .. first_trial + lanes` of one point as a
/// single sliced batch (one trial per `u64` lane), appending one
/// [`TrialOutcome`] per trial — in trial order, bit-identical to `lanes`
/// scalar [`run_trial`] calls with the same coordinates. Public for
/// out-of-crate [`ExecutionBackend`] implementations; callers must only
/// use it on points whose [`PointContext::sliceable`] returns `true` and
/// with `1..=64` lanes.
pub fn run_trial_batch(
    ctx: &PointContext,
    campaign_seed: u64,
    point_index: u64,
    first_trial: u64,
    lanes: usize,
    arena: &mut TrialArena,
    out: &mut Vec<TrialOutcome>,
) {
    debug_assert!((1..=LANES).contains(&lanes));
    let netlist = &ctx.kernel.netlist;
    let batch = &mut arena.batch;
    let telemetry = &mut arena.telemetry;

    // Per-lane seeds: lane k replays trial `first_trial + k`'s exact input
    // and fault streams. Fault seeds come first so the batch can settle
    // analytically before any input work.
    batch.fault_seeds.clear();
    batch.input_seeds.clear();
    for lane in 0..lanes {
        let base_seed = derive_trial_seed(campaign_seed, point_index, first_trial + lane as u64);
        let (input_seed, fault_seed) = trial_stream_seeds(base_seed);
        batch.fault_seeds.push(fault_seed);
        batch.input_seeds.push(input_seed);
    }

    let array = batch.array.get_or_insert_with(SlicedPimArray::standard_row);
    let window = ctx.clean.as_ref().map_or(0, |c| c.decisions);
    if ctx.conditioned {
        // Stratified mode: redraw every lane's first gate fault from the
        // window-truncated geometric, so all 64 lanes land in the
        // at-least-one-fault stratum.
        let span = telemetry.span_start();
        array.reset_for_conditioned_batch(ctx.rates(), &batch.fault_seeds, window);
        telemetry.span_end(Phase::EstimatorRedraw, span);
        telemetry.add(TelemetryCounter::EstimatorRedraws, lanes as u64);
    } else {
        let span = telemetry.span_start();
        array.reset_for_batch(ctx.rates(), &batch.fault_seeds);
        telemetry.span_end(Phase::FaultInjection, span);
        if let Some(clean) = &ctx.clean {
            // Analytic zero-fault fast path, whole-batch edition: the lane
            // injector draws every lane's first fault index eagerly at
            // reset, so one compare settles all 64 lanes. If even one lane
            // faults inside the window the batch runs in full (its injector
            // state after reset is byte-identical to the no-fast-path
            // reset, so outcomes are unchanged).
            if window > 0 && array.injector().next_fault_decision() >= window {
                let span = telemetry.span_start();
                for _ in 0..lanes {
                    out.push(clean.outcome.clone());
                }
                telemetry.span_end(Phase::AnalyticCleanSettle, span);
                telemetry.add(TelemetryCounter::CleanSettledBatches, 1);
                telemetry.add(TelemetryCounter::CleanSettledTrials, lanes as u64);
                telemetry.add(TelemetryCounter::TrialsExecuted, lanes as u64);
                return;
            }
        }
    }

    let span = telemetry.span_start();
    batch.input_words.clear();
    batch.input_words.resize(netlist.inputs.len(), 0);
    for (lane, &input_seed) in batch.input_seeds.iter().enumerate() {
        let mut input_rng = ChaCha8Rng::seed_from_u64(input_seed);
        for word in batch.input_words.iter_mut() {
            *word |= u64::from(input_rng.gen_bool(0.5)) << lane;
        }
    }
    netlist.evaluate_lanes_into(
        &batch.input_words,
        &mut batch.eval_words,
        &mut batch.expected_words,
    );

    match ctx.sliced.run_batch(
        netlist,
        &ctx.kernel.schedule,
        array,
        0,
        &batch.input_words,
        &mut batch.scratch,
    ) {
        Ok(report) => {
            // Per-lane wrong-output-bit counts: word-parallel diff against
            // the reference, then a popcount-bounded lane scan.
            batch.wrong_bits.clear();
            batch.wrong_bits.resize(lanes, 0);
            let valid = array.injector().valid_mask();
            for (got, want) in batch.scratch.output_words.iter().zip(&batch.expected_words) {
                let mut diff = (got ^ want) & valid;
                while diff != 0 {
                    let lane = diff.trailing_zeros() as usize;
                    diff &= diff - 1;
                    batch.wrong_bits[lane] += 1;
                }
            }
            for lane in 0..lanes {
                out.push(TrialOutcome {
                    faults_injected: array.injector().lane_fault_count(lane) as u64,
                    checks: report.checks,
                    errors_detected: report.errors_detected[lane],
                    corrections_written_back: report.corrections_written_back[lane],
                    uncorrectable: report.uncorrectable[lane],
                    wrong_output_bits: batch.wrong_bits[lane],
                    exec_error: None,
                    correct: None,
                });
            }
        }
        Err(err) => {
            // Validation failures precede every fault draw, so all lanes
            // fail identically with zero injected faults — exactly the
            // scalar error outcome.
            let message = err.to_string();
            for _ in 0..lanes {
                out.push(TrialOutcome {
                    faults_injected: 0,
                    checks: 0,
                    errors_detected: 0,
                    corrections_written_back: 0,
                    uncorrectable: 0,
                    wrong_output_bits: 0,
                    exec_error: Some(message.clone()),
                    correct: None,
                });
            }
        }
    }
    telemetry.span_end(Phase::GateExecution, span);
    telemetry.add(TelemetryCounter::TrialsExecuted, lanes as u64);
}

/// A standalone single-point trial runner: one workload compiled under one
/// design configuration, exposing the engine's exact per-trial hot path
/// (arena reuse, skip-sampled faults, deterministic seeding) to benches
/// and tests without building a whole campaign plan.
#[derive(Debug)]
pub struct TrialHarness {
    ctx: PointContext,
}

impl TrialHarness {
    /// Compiles `workload` for `config` and prepares a runnable point.
    ///
    /// # Errors
    ///
    /// Schedule compilation failures (see [`ScheduleCache::get_or_compile`]).
    pub fn new(
        workload: SweepWorkload,
        protection: ProtectionConfig,
        config: DesignConfig,
        gate_error_rate: f64,
    ) -> Result<Self, SweepError> {
        let mut cache = ScheduleCache::new();
        let kernel = cache.get_or_compile(workload, &config)?;
        let shape = WorkloadShape::new(workload.name(), 1, 1);
        let estimate = evaluate_schedule(&kernel.schedule, &shape, &config);
        let executor = Arc::new(ProtectedExecutor::new(config.clone()));
        let sliced = Arc::new(SlicedExecutor::new(config.clone()));
        let clean = capture_clean_profile(&config, &kernel, &executor);
        let mut ctx = PointContext::new(
            workload,
            protection,
            config,
            gate_error_rate,
            kernel,
            executor,
            sliced,
            estimate.time_ns,
            estimate.energy_fj,
        );
        ctx.clean = clean;
        Ok(Self { ctx })
    }

    /// Disables the analytic zero-fault fast path (and conditioning), so
    /// every trial simulates in full — the pre-fast-path reference, used by
    /// benches to measure the historical hot path.
    pub fn without_analytic_fast_path(mut self) -> Self {
        self.ctx.clean = None;
        self.ctx.conditioned = false;
        self
    }

    /// Switches the harness to the stratified rare-event estimator: every
    /// trial is conditioned on at least one gate fault landing inside the
    /// decision window, and estimates must be reweighted by
    /// [`Self::fault_probability`].
    ///
    /// # Panics
    ///
    /// Panics when conditioning is illegal for the point: no verified clean
    /// profile, a zero decision window, or a rate outside `(0, 1)`.
    pub fn with_stratified_estimator(mut self) -> Self {
        let decisions = self.ctx.clean.as_ref().map_or(0, |c| c.decisions);
        assert!(
            decisions > 0 && self.ctx.gate_error_rate > 0.0 && self.ctx.gate_error_rate < 1.0,
            "stratified estimation needs a verified clean profile and a rate in (0, 1)"
        );
        self.ctx.conditioned = true;
        self
    }

    /// Gate-output fault decisions one trial of this point makes (the
    /// decision window `D`), if a clean profile was verified.
    pub fn clean_decisions(&self) -> Option<u64> {
        self.ctx.clean.as_ref().map(|c| c.decisions)
    }

    /// The reweighting factor `P1` (see [`PointContext::fault_probability`]).
    pub fn fault_probability(&self) -> f64 {
        self.ctx.fault_probability()
    }

    /// The compiled `(netlist, schedule)` kernel.
    pub fn kernel(&self) -> &CompiledKernel {
        &self.ctx.kernel
    }

    /// The executor driving this point.
    pub fn executor(&self) -> &ProtectedExecutor {
        &self.ctx.executor
    }

    /// The design configuration of this point.
    pub fn config(&self) -> &DesignConfig {
        &self.ctx.config
    }

    /// The gate-output error rate of this point.
    pub fn gate_error_rate(&self) -> f64 {
        self.ctx.gate_error_rate
    }

    /// Runs trial `trial_index` (seeded exactly like a campaign point at
    /// index 0 under `campaign_seed`) in `arena`, on the scalar backend.
    pub fn run_trial(
        &self,
        campaign_seed: u64,
        trial_index: u64,
        arena: &mut TrialArena,
    ) -> TrialOutcome {
        run_trial(
            &self.ctx,
            derive_trial_seed(campaign_seed, 0, trial_index),
            arena,
        )
    }

    /// Runs trials `first_trial .. first_trial + count` as one sliced
    /// batch (one trial per `u64` lane), returning outcomes in trial order
    /// — bit-identical to `count` [`Self::run_trial`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or exceeds 64, or if the point is not
    /// sliceable (see the backend docs; every plan-derived point is).
    pub fn run_trial_batch(
        &self,
        campaign_seed: u64,
        first_trial: u64,
        count: usize,
        arena: &mut TrialArena,
    ) -> Vec<TrialOutcome> {
        assert!(
            (1..=LANES).contains(&count),
            "a sliced batch runs 1..={LANES} trials, got {count}"
        );
        assert!(self.ctx.sliceable(), "point is not sliceable");
        let mut out = Vec::with_capacity(count);
        run_trial_batch(
            &self.ctx,
            campaign_seed,
            0,
            first_trial,
            count,
            arena,
            &mut out,
        );
        out
    }
}

/// Whether a chunked campaign should keep running after a progress event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignControl {
    /// Keep executing the remaining chunks.
    Continue,
    /// Abort the campaign; `run_chunked` returns [`SweepError::Cancelled`].
    Cancel,
}

/// A progress snapshot delivered to the observer after every chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignProgress {
    /// Trials completed so far.
    pub trials_done: u64,
    /// Total trials the campaign will run.
    pub trials_total: u64,
}

impl CampaignProgress {
    /// Completion percentage in `[0, 100]`.
    pub fn percent(&self) -> f64 {
        if self.trials_total == 0 {
            100.0
        } else {
            100.0 * self.trials_done as f64 / self.trials_total as f64
        }
    }
}

/// What [`PreparedCampaign::run_chunked_resumable`]'s observer sees after
/// each chunk: cumulative progress plus the chunk's newly computed
/// outcomes, in trial order. Persisting every `new_outcomes` slice (in
/// order) yields a checkpoint from which a restarted campaign resumes
/// without recomputing — the spliced outcome list aggregates into
/// byte-identical report JSON.
#[derive(Debug, Clone, Copy)]
pub struct ChunkCheckpoint<'a> {
    /// Cumulative progress, including any resumed prefix.
    pub progress: CampaignProgress,
    /// The outcomes this chunk just computed (empty for none).
    pub new_outcomes: &'a [TrialOutcome],
}

/// A validated plan with every point resolved and every schedule compiled,
/// ready to run trials — possibly in observable, cancellable chunks.
///
/// Produced by [`prepare_campaign`]. Preparation is the only phase that
/// needs the (shared, mutable) [`ScheduleCache`]; execution borrows nothing
/// but the prepared points, so a service can hold its process-wide cache
/// lock only while preparing and run many campaigns concurrently.
#[derive(Debug)]
pub struct PreparedCampaign {
    plan: SweepPlan,
    points: Vec<PointContext>,
    /// Distinct schedules this campaign uses (a pure function of the plan,
    /// *not* of cache warmth — so reports stay byte-identical whether the
    /// schedules were compiled fresh or served from a warm cache).
    schedules_used: usize,
    /// Requested simulation backend. `Sliced` (the default) batches each
    /// sliceable point's trials 64 per `u64` lane; non-sliceable points
    /// fall back to the scalar path. Reports are byte-identical either
    /// way — the backend is purely a throughput choice.
    backend: SimBackend,
    /// Telemetry sink execution records into (disabled by default — see
    /// [`PreparedCampaign::with_telemetry`]). Never affects report bytes.
    telemetry: Telemetry,
}

/// Resolves a plan's points and compiles their schedules through `cache`.
///
/// # Errors
///
/// Plan-validation and schedule-compilation failures.
pub fn prepare_campaign(
    plan: &SweepPlan,
    cache: &mut ScheduleCache,
) -> Result<PreparedCampaign, SweepError> {
    prepare_campaign_with_telemetry(plan, cache, Telemetry::disabled())
}

/// [`prepare_campaign`] with phase-timing instrumentation: plan validation,
/// per-lookup schedule compile vs cache hit, and clean-profile probes are
/// recorded as spans into `telemetry`, which the returned campaign keeps
/// (and its `run*` methods record into). Telemetry never changes report
/// bytes — the instrumented-run equivalence test asserts this.
///
/// # Errors
///
/// As [`prepare_campaign`].
pub fn prepare_campaign_with_telemetry(
    plan: &SweepPlan,
    cache: &mut ScheduleCache,
    telemetry: Telemetry,
) -> Result<PreparedCampaign, SweepError> {
    telemetry.time(Phase::PlanValidation, || plan.validate())?;
    let mut points: Vec<PointContext> = Vec::with_capacity(plan.point_count());
    let mut layouts_used: Vec<*const CompiledKernel> = Vec::new();
    // Accuracy campaigns compile their kernels outside the shared
    // `ScheduleCache`: its keys are `(workload, layout)` and the accuracy
    // netlist differs from the workload's error-campaign netlist, so sharing
    // the cache would collide. The campaign-local maps below give accuracy
    // points the same compile-once behaviour.
    let mut accuracy_contexts: HashMap<SweepWorkload, Arc<AccuracyContext>> = HashMap::new();
    let mut accuracy_kernels: HashMap<LayoutKey, Arc<CompiledKernel>> = HashMap::new();
    for &workload in &plan.workloads {
        for &technology in &plan.technologies {
            for &protection in &plan.protections {
                let config = protection.design_config(technology);
                let accuracy = if plan.kind == CampaignKind::Accuracy {
                    Some(Arc::clone(
                        accuracy_contexts.entry(workload).or_insert_with(|| {
                            Arc::new(AccuracyContext::prepare(
                                accuracy_weight_bits(workload),
                                plan.campaign_seed,
                            ))
                        }),
                    ))
                } else {
                    None
                };
                // Classify the lookup as a compile or a cache hit by the
                // cache's own lifetime counters, so the span lands in the
                // right phase even though the decision is the cache's.
                let span = telemetry.span_start();
                let kernel = if let Some(accuracy) = &accuracy {
                    let layout = config.row_layout();
                    let key = (
                        workload,
                        (
                            layout.total_columns,
                            layout.metadata_columns,
                            layout.cells_per_value,
                        ),
                    );
                    match accuracy_kernels.get(&key) {
                        Some(kernel) => {
                            let kernel = Arc::clone(kernel);
                            telemetry.span_end(Phase::ScheduleCacheHit, span);
                            telemetry.add(TelemetryCounter::ScheduleCacheHits, 1);
                            kernel
                        }
                        None => {
                            let schedule =
                                map_netlist(&accuracy.netlist, layout).map_err(|err| {
                                    SweepError::Map {
                                        workload: workload.name(),
                                        detail: err.to_string(),
                                    }
                                })?;
                            if !schedule.is_directly_executable() {
                                return Err(SweepError::NotDirectlyExecutable {
                                    workload: workload.name(),
                                    layout_label: format!(
                                        "{} cols, {} metadata, {} cells/value",
                                        layout.total_columns,
                                        layout.metadata_columns,
                                        layout.cells_per_value
                                    ),
                                });
                            }
                            let kernel = Arc::new(CompiledKernel {
                                netlist: accuracy.netlist.clone(),
                                schedule,
                            });
                            accuracy_kernels.insert(key, Arc::clone(&kernel));
                            telemetry.span_end(Phase::ScheduleCompile, span);
                            telemetry.add(TelemetryCounter::ScheduleCompiles, 1);
                            kernel
                        }
                    }
                } else {
                    let compiles_before = cache.compiles();
                    let kernel = cache.get_or_compile(workload, &config)?;
                    if cache.compiles() > compiles_before {
                        telemetry.span_end(Phase::ScheduleCompile, span);
                        telemetry.add(TelemetryCounter::ScheduleCompiles, 1);
                    } else {
                        telemetry.span_end(Phase::ScheduleCacheHit, span);
                        telemetry.add(TelemetryCounter::ScheduleCacheHits, 1);
                    }
                    kernel
                };
                let ptr = Arc::as_ptr(&kernel);
                if !layouts_used.contains(&ptr) {
                    layouts_used.push(ptr);
                }
                let shape = WorkloadShape::new(workload.name(), 1, 1);
                let estimate = evaluate_schedule(&kernel.schedule, &shape, &config);
                let executor = Arc::new(ProtectedExecutor::new(config.clone()));
                let sliced = Arc::new(SlicedExecutor::new(config.clone()));
                // One clean-profile capture per (workload, technology,
                // protection) — rates share it, since a fault-free trial is
                // rate-independent by construction. Accuracy campaigns and
                // defect-bearing plans run without the analytic fast path:
                // with stuck-at defects a zero-transient-fault trial is not
                // clean, and accuracy trials never settle analytically.
                let clean = if accuracy.is_some() || plan.stuck_at_rate != 0.0 {
                    None
                } else {
                    telemetry.time(Phase::CleanProbe, || {
                        capture_clean_profile(&config, &kernel, &executor)
                    })
                };
                for &gate_error_rate in &plan.gate_error_rates {
                    let mut point = PointContext::new(
                        workload,
                        protection,
                        config.clone(),
                        gate_error_rate,
                        Arc::clone(&kernel),
                        Arc::clone(&executor),
                        Arc::clone(&sliced),
                        estimate.time_ns,
                        estimate.energy_fj,
                    );
                    point.clean = clean.clone();
                    point.stuck_at_rate = plan.stuck_at_rate;
                    point.accuracy = accuracy.clone();
                    // Conditioning requires a verified window and a rate
                    // where "at least one fault" is neither impossible nor
                    // certain; other points fall back to plain Monte Carlo
                    // (their estimator summary says so).
                    point.conditioned = plan.estimator == EstimatorMode::Stratified
                        && point.clean.as_ref().is_some_and(|c| c.decisions > 0)
                        && gate_error_rate > 0.0
                        && gate_error_rate < 1.0;
                    points.push(point);
                }
            }
        }
    }
    Ok(PreparedCampaign {
        plan: plan.clone(),
        points,
        schedules_used: layouts_used.len(),
        backend: SimBackend::default(),
        telemetry,
    })
}

/// One parallel work item of a chunk: `count` consecutive trials of one
/// point, fused according to the backend's [`ExecutionBackend::task_width`].
#[derive(Debug, Clone, Copy)]
struct TrialTask {
    /// Point index within the prepared campaign.
    point: usize,
    /// First trial index of the run.
    first: u64,
    /// Number of consecutive trials (1 for scalar tasks, up to 64 lanes
    /// for sliced batches).
    count: u32,
}

/// A task's result: single trials return their outcome by value (no
/// per-trial heap allocation in the hot parallel loop), batches return one
/// vector per ≤ 64 trials.
#[derive(Debug)]
pub enum TaskOutcomes {
    /// One trial's outcome, by value.
    Single(TrialOutcome),
    /// A fused batch's outcomes, in trial order.
    Batch(Vec<TrialOutcome>),
}

/// A Monte Carlo simulation backend: how one task of consecutive trials of
/// a single point executes. The engine is backend-agnostic — task grouping,
/// the parallel loop and aggregation all dispatch through this trait, so a
/// backend never needs engine changes and per-point sliceability is a
/// scheme-reported capability
/// ([`SchemeRuntime::sliceable`](nvpim_core::scheme::SchemeRuntime::sliceable))
/// rather than an engine special case.
///
/// **Contract:** outcomes are a pure function of `(point, campaign seed,
/// trial index)` — never of task shape, arena history, thread or backend —
/// so reports stay byte-identical across backends (the backend-equivalence
/// suite asserts this).
pub trait ExecutionBackend: std::fmt::Debug + Send + Sync {
    /// Stable backend name (the CLI's `--backend` values).
    fn name(&self) -> &'static str;

    /// Maximum number of consecutive trials of `point` one task may fuse.
    fn task_width(&self, point: &PointContext) -> usize;

    /// Runs trials `first_trial .. first_trial + count` of `point` in
    /// `arena`, returning their outcomes in trial order. `count` never
    /// exceeds [`Self::task_width`] for this point.
    #[allow(clippy::too_many_arguments)]
    fn run_task(
        &self,
        point: &PointContext,
        campaign_seed: u64,
        point_index: u64,
        first_trial: u64,
        count: usize,
        arena: &mut TrialArena,
    ) -> TaskOutcomes;
}

/// The reference backend: one trial at a time on the scalar bit-packed
/// array.
#[derive(Debug)]
pub struct ScalarBackend;

impl ExecutionBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn task_width(&self, _point: &PointContext) -> usize {
        1
    }

    fn run_task(
        &self,
        point: &PointContext,
        campaign_seed: u64,
        point_index: u64,
        first_trial: u64,
        count: usize,
        arena: &mut TrialArena,
    ) -> TaskOutcomes {
        debug_assert_eq!(count, 1, "the scalar backend runs one trial per task");
        let seed = derive_trial_seed(campaign_seed, point_index, first_trial);
        TaskOutcomes::Single(run_trial(point, seed, arena))
    }
}

/// The throughput backend: up to 64 trials at once, one per `u64` lane, on
/// the transposed bit-sliced array — for points whose scheme declares the
/// lane-batched run path; everything else transparently falls back to
/// single scalar trials with identical bytes.
#[derive(Debug)]
pub struct SlicedBackend;

impl ExecutionBackend for SlicedBackend {
    fn name(&self) -> &'static str {
        "sliced"
    }

    fn task_width(&self, point: &PointContext) -> usize {
        if point.sliceable() {
            LANES
        } else {
            1
        }
    }

    fn run_task(
        &self,
        point: &PointContext,
        campaign_seed: u64,
        point_index: u64,
        first_trial: u64,
        count: usize,
        arena: &mut TrialArena,
    ) -> TaskOutcomes {
        if point.sliceable() {
            let mut out = Vec::with_capacity(count);
            run_trial_batch(
                point,
                campaign_seed,
                point_index,
                first_trial,
                count,
                arena,
                &mut out,
            );
            TaskOutcomes::Batch(out)
        } else {
            debug_assert_eq!(count, 1, "non-sliceable points run one trial per task");
            let seed = derive_trial_seed(campaign_seed, point_index, first_trial);
            TaskOutcomes::Single(run_trial(point, seed, arena))
        }
    }
}

/// Resolves the serializable backend selector to its implementation — the
/// single place the `SimBackend` enum is interpreted (the backend analog of
/// the scheme registry).
pub fn execution_backend(backend: SimBackend) -> &'static dyn ExecutionBackend {
    match backend {
        SimBackend::Scalar => &ScalarBackend,
        SimBackend::Sliced => &SlicedBackend,
    }
}

impl PreparedCampaign {
    /// Number of campaign points.
    pub fn point_count(&self) -> usize {
        self.points.len()
    }

    /// Total trials the campaign will run.
    pub fn trial_count(&self) -> u64 {
        self.plan.trial_count()
    }

    /// Selects the simulation backend (default: [`SimBackend::Sliced`]).
    /// Purely a throughput knob — reports are byte-identical across
    /// backends, which the backend-equivalence suite asserts over a grid
    /// of technologies, schemes and error rates.
    pub fn with_backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The backend trials will run on.
    pub fn backend(&self) -> SimBackend {
        self.backend
    }

    /// Attaches a telemetry sink: subsequent `run*` calls record per-phase
    /// spans (fault injection, gate execution, analytic clean settle,
    /// estimator redraw, aggregation) and first-class counters into it,
    /// folded per worker thread at chunk boundaries. Telemetry never
    /// changes report bytes.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The telemetry sink this campaign records into (disabled unless set
    /// by [`prepare_campaign_with_telemetry`] or
    /// [`Self::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Runs every trial in one shot (no progress events, not cancellable).
    ///
    /// # Errors
    ///
    /// Never fails after successful preparation; the `Result` mirrors
    /// [`Self::run_chunked`].
    pub fn run(&self) -> Result<SweepReport, SweepError> {
        self.run_chunked(usize::MAX, |_| CampaignControl::Continue)
    }

    /// Runs the campaign in chunks of at most `chunk_trials` trials,
    /// invoking `observer` after each chunk with cumulative progress.
    ///
    /// Chunking never changes results: trials are cut from one plan-ordered
    /// list and every trial's seed derives from its plan coordinates alone,
    /// so the report is byte-identical for **any** chunk size and thread
    /// count. The observer return value makes jobs cancellable between
    /// chunks without poisoning anything — a cancelled campaign simply
    /// stops scheduling further chunks.
    ///
    /// # Errors
    ///
    /// [`SweepError::Cancelled`] when the observer returns
    /// [`CampaignControl::Cancel`]; trial execution errors are recorded in
    /// the report, never raised.
    pub fn run_chunked(
        &self,
        chunk_trials: usize,
        observer: impl FnMut(CampaignProgress) -> CampaignControl,
    ) -> Result<SweepReport, SweepError> {
        self.run_chunked_with(execution_backend(self.backend), chunk_trials, observer)
    }

    /// [`Self::run_chunked`] on an explicit [`ExecutionBackend`]
    /// implementation — the open end of the backend seam: campaigns can
    /// run on backends defined outside this crate (the built-in
    /// [`SimBackend`] selector resolves through the same path). The
    /// byte-identity guarantee holds for any backend honouring the
    /// [`ExecutionBackend`] contract.
    ///
    /// # Errors
    ///
    /// As [`Self::run_chunked`].
    pub fn run_chunked_with(
        &self,
        backend: &dyn ExecutionBackend,
        chunk_trials: usize,
        mut observer: impl FnMut(CampaignProgress) -> CampaignControl,
    ) -> Result<SweepReport, SweepError> {
        self.run_chunked_resumable(backend, chunk_trials, Vec::new(), |checkpoint| {
            observer(checkpoint.progress)
        })
    }

    /// [`Self::run_chunked_with`] with a **chunk checkpoint surface**: the
    /// observer additionally receives the outcomes newly completed in each
    /// chunk, and a previously checkpointed outcome prefix can be injected
    /// via `resume` so a restarted campaign re-executes only the trials
    /// after its last checkpoint.
    ///
    /// Resume is legal because every trial outcome is a pure function of
    /// `(point, campaign seed, trial index)` and the outcome list is cut
    /// from one plan-ordered trial list: a run resumed from any prefix of
    /// that list aggregates into a report **byte-identical** to an
    /// uninterrupted run (the chunk-invariance guarantee, asserted by the
    /// service's chaos suite).
    ///
    /// # Errors
    ///
    /// [`SweepError::BadCheckpoint`] when `resume` holds more outcomes than
    /// the campaign has trials; otherwise as [`Self::run_chunked`].
    pub fn run_chunked_resumable(
        &self,
        backend: &dyn ExecutionBackend,
        chunk_trials: usize,
        resume: Vec<TrialOutcome>,
        mut observer: impl FnMut(ChunkCheckpoint<'_>) -> CampaignControl,
    ) -> Result<SweepReport, SweepError> {
        let trials = self.flat_trials();
        let trials_total = trials.len() as u64;
        if resume.len() > trials.len() {
            return Err(SweepError::BadCheckpoint(format!(
                "checkpoint carries {} outcomes but the campaign has only {} trials",
                resume.len(),
                trials.len()
            )));
        }

        // Skip the checkpointed prefix: those trials' outcomes are already
        // known, and determinism makes the spliced list indistinguishable
        // from one computed in a single run.
        let mut outcomes: Vec<TrialOutcome> = resume;
        outcomes.reserve(trials.len() - outcomes.len());
        let pending = &trials[outcomes.len()..];
        self.execute_pending(
            backend,
            chunk_trials,
            pending,
            &mut outcomes,
            trials_total,
            &mut observer,
        )?;
        Ok(self.aggregate_report(&outcomes))
    }

    /// Runs **one shard** of the campaign: trials `start .. end` of the
    /// same flat plan-ordered trial list [`Self::run_chunked_resumable`]
    /// cuts chunks from, returning the shard's outcomes in trial order
    /// (`end - start` of them) rather than a report.
    ///
    /// This is the scatter half of distributed campaigns: a coordinator
    /// splits `[0, trial_count)` into contiguous ranges (see
    /// [`shard_ranges`]), runs each on any worker, splices the returned
    /// slices back in shard order, and aggregates them via
    /// [`Self::report_from_outcomes`] into a report **byte-identical** to a
    /// single-node run — legal because every outcome is a pure function of
    /// `(point, campaign seed, trial index)`.
    ///
    /// `resume` injects the shard's previously checkpointed outcome prefix
    /// (as streamed through the observer's [`ChunkCheckpoint`]s), so a
    /// shard re-assigned after a worker death re-executes only the trials
    /// after the last checkpoint. Checkpoint progress is shard-local:
    /// `trials_done` counts shard outcomes (resumed prefix included) out of
    /// `trials_total == end - start`.
    ///
    /// # Errors
    ///
    /// [`SweepError::BadCheckpoint`] when the range is inverted, exceeds
    /// the campaign's trial count, or `resume` holds more outcomes than the
    /// shard has trials; [`SweepError::Cancelled`] when the observer says
    /// so.
    pub fn run_shard_resumable(
        &self,
        backend: &dyn ExecutionBackend,
        start: u64,
        end: u64,
        chunk_trials: usize,
        resume: Vec<TrialOutcome>,
        mut observer: impl FnMut(ChunkCheckpoint<'_>) -> CampaignControl,
    ) -> Result<Vec<TrialOutcome>, SweepError> {
        let total = self.trial_count();
        if start > end || end > total {
            return Err(SweepError::BadCheckpoint(format!(
                "shard range {start}..{end} is invalid for a campaign of {total} trials"
            )));
        }
        let shard_len = (end - start) as usize;
        if resume.len() > shard_len {
            return Err(SweepError::BadCheckpoint(format!(
                "shard checkpoint carries {} outcomes but the shard has only {} trials",
                resume.len(),
                shard_len
            )));
        }
        let trials = self.flat_trials();
        let mut outcomes: Vec<TrialOutcome> = resume;
        outcomes.reserve(shard_len - outcomes.len());
        let pending = &trials[start as usize + outcomes.len()..end as usize];
        self.execute_pending(
            backend,
            chunk_trials,
            pending,
            &mut outcomes,
            shard_len as u64,
            &mut observer,
        )?;
        Ok(outcomes)
    }

    /// Aggregates a complete outcome list — e.g. shard slices spliced back
    /// in shard order by a fleet coordinator — into the campaign's report,
    /// executing nothing. Byte-identical to the report an uninterrupted
    /// single-node run would have produced from the same plan.
    ///
    /// # Errors
    ///
    /// [`SweepError::BadCheckpoint`] unless `outcomes` holds exactly
    /// [`Self::trial_count`] outcomes.
    pub fn report_from_outcomes(
        &self,
        outcomes: &[TrialOutcome],
    ) -> Result<SweepReport, SweepError> {
        let total = self.trial_count();
        if outcomes.len() as u64 != total {
            return Err(SweepError::BadCheckpoint(format!(
                "merge holds {} outcomes but the campaign has {} trials",
                outcomes.len(),
                total
            )));
        }
        Ok(self.aggregate_report(outcomes))
    }

    /// The flat plan-ordered trial list every chunked/sharded run cuts
    /// from: all of point 0's trials, then point 1's, and so on.
    fn flat_trials(&self) -> Vec<(usize, u64)> {
        (0..self.points.len())
            .flat_map(|pi| (0..self.plan.seeds_per_point).map(move |ti| (pi, ti)))
            .collect()
    }

    /// Executes `pending` trials in chunks of at most `chunk_trials`,
    /// appending to `outcomes` and invoking `observer` after each chunk
    /// with cumulative progress against `trials_total`.
    fn execute_pending(
        &self,
        backend: &dyn ExecutionBackend,
        chunk_trials: usize,
        pending: &[(usize, u64)],
        outcomes: &mut Vec<TrialOutcome>,
        trials_total: u64,
        observer: &mut dyn FnMut(ChunkCheckpoint<'_>) -> CampaignControl,
    ) -> Result<(), SweepError> {
        let chunk_trials = chunk_trials.max(1);
        let campaign_seed = self.plan.campaign_seed;
        let points_ref = &self.points;
        for chunk in pending.chunks(chunk_trials) {
            // Group runs of consecutive trials of one point into tasks of
            // the backend's width (1 for scalar, up to 64 lanes for sliced
            // points whose scheme declares the capability). Grouping is
            // pure scheduling: every trial's outcome remains a function of
            // `(point, seed)` alone, so the flattened outcome list is
            // identical for any task shape, chunk size, thread count and
            // backend.
            let mut tasks: Vec<TrialTask> = Vec::new();
            let mut i = 0usize;
            while i < chunk.len() {
                let (pi, ti) = chunk[i];
                let width = backend.task_width(&points_ref[pi]);
                let mut count = 1usize;
                while count < width && i + count < chunk.len() {
                    let (pj, tj) = chunk[i + count];
                    if pj != pi || tj != ti + count as u64 {
                        break;
                    }
                    count += 1;
                }
                tasks.push(TrialTask {
                    point: pi,
                    first: ti,
                    count: count as u32,
                });
                i += count;
            }
            // `map_init` hands each worker thread a private `TrialArena`
            // (arrays + buffers reset in place per task), so steady-state
            // scalar trials allocate nothing and batches allocate only
            // their per-64-trial outcome vector.
            let telemetry = &self.telemetry;
            let chunk_outcomes: Vec<TaskOutcomes> = tasks
                .into_par_iter()
                .map_init(
                    move || TrialArena::with_telemetry(telemetry),
                    move |arena, task| {
                        backend.run_task(
                            &points_ref[task.point],
                            campaign_seed,
                            task.point as u64,
                            task.first,
                            task.count as usize,
                            arena,
                        )
                    },
                )
                .collect();
            let chunk_start = outcomes.len();
            for task_outcomes in chunk_outcomes {
                match task_outcomes {
                    TaskOutcomes::Single(outcome) => outcomes.push(outcome),
                    TaskOutcomes::Batch(batch) => outcomes.extend(batch),
                }
            }
            let checkpoint = ChunkCheckpoint {
                progress: CampaignProgress {
                    trials_done: outcomes.len() as u64,
                    trials_total,
                },
                new_outcomes: &outcomes[chunk_start..],
            };
            if observer(checkpoint) == CampaignControl::Cancel {
                return Err(SweepError::Cancelled);
            }
        }
        Ok(())
    }

    /// Aggregates a complete plan-ordered outcome list per point, in plan
    /// order, into the final report.
    fn aggregate_report(&self, outcomes: &[TrialOutcome]) -> SweepReport {
        let per_point = self.plan.seeds_per_point as usize;
        let agg_span = self.telemetry.span_start();
        let summaries: Vec<PointSummary> = self
            .points
            .iter()
            .enumerate()
            .map(|(pi, ctx)| {
                let chunk = &outcomes[pi * per_point..(pi + 1) * per_point];
                let mut summary = PointSummary::aggregate(ctx, chunk);
                if self.plan.estimator == EstimatorMode::Stratified {
                    // In stratified mode the raw counters describe the
                    // conditional stratum; the unbiased unconditional rates
                    // (and their Wilson intervals) are computed here from
                    // the analytic reweighting factor. Unconditioned points
                    // carry the plain-MC estimate with `stratified: false`.
                    let executed = summary.trials - summary.exec_errors;
                    summary.estimator = Some(EstimatorSummary::from_counts(
                        ctx.conditioned,
                        ctx.clean.as_ref().map_or(0, |c| c.decisions),
                        ctx.fault_probability(),
                        executed,
                        summary.failed_trials,
                        summary.silent_failures,
                    ));
                }
                summary
            })
            .collect();
        self.telemetry.span_end(Phase::Aggregation, agg_span);

        SweepReport::new(&self.plan, summaries, self.schedules_used)
    }
}

/// Splits `[0, trials_total)` into at most `shards` contiguous, non-empty
/// ranges as evenly as possible (earlier ranges get the remainder). The
/// coordinator's scatter geometry: concatenating the ranges in order
/// reconstructs the full plan-ordered trial list, so shard outcomes spliced
/// in shard order aggregate byte-identically to a single-node run.
///
/// Returns fewer than `shards` ranges when the campaign has fewer trials
/// than shards, and no ranges for an empty campaign. `shards == 0` is
/// treated as 1.
#[must_use]
pub fn shard_ranges(trials_total: u64, shards: usize) -> Vec<(u64, u64)> {
    let shards = (shards.max(1) as u64).min(trials_total);
    let mut ranges = Vec::with_capacity(shards as usize);
    if shards == 0 {
        return ranges;
    }
    let base = trials_total / shards;
    let rem = trials_total % shards;
    let mut start = 0u64;
    for i in 0..shards {
        let len = base + u64::from(i < rem);
        ranges.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, trials_total);
    ranges
}

/// Runs a full campaign: compiles each point's schedule once (shared via
/// a fresh [`ScheduleCache`]), fans the trials out with rayon, and
/// aggregates outcomes into a deterministic [`SweepReport`].
///
/// Long-running callers (the `nvpim-service` daemon) should instead call
/// [`prepare_campaign`] with a shared cache and [`PreparedCampaign::run_chunked`]
/// for progress reporting and cancellation; this convenience wrapper is the
/// one-shot path and produces byte-identical reports.
///
/// # Errors
///
/// Plan-validation and schedule-compilation failures; individual trial
/// execution errors are *recorded* in the report rather than failing the
/// campaign.
pub fn run_campaign(plan: &SweepPlan) -> Result<SweepReport, SweepError> {
    run_campaign_with_backend(plan, SimBackend::default())
}

/// [`run_campaign`] on an explicit simulation backend. Reports are
/// byte-identical across backends; `Scalar` exists as the reference path
/// (and the slow half of the equivalence tests), `Sliced` is the default
/// 64-trials-per-word hot path.
///
/// # Errors
///
/// As [`run_campaign`].
pub fn run_campaign_with_backend(
    plan: &SweepPlan,
    backend: SimBackend,
) -> Result<SweepReport, SweepError> {
    let mut cache = ScheduleCache::new();
    prepare_campaign(plan, &mut cache)?
        .with_backend(backend)
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvpim_sim::technology::Technology;
    use serde::Serialize;

    #[test]
    fn trial_seeds_are_stable_and_coordinate_sensitive() {
        assert_eq!(derive_trial_seed(1, 2, 3), derive_trial_seed(1, 2, 3));
        assert_ne!(derive_trial_seed(1, 2, 3), derive_trial_seed(1, 2, 4));
        assert_ne!(derive_trial_seed(1, 2, 3), derive_trial_seed(1, 3, 3));
        assert_ne!(derive_trial_seed(1, 2, 3), derive_trial_seed(2, 2, 3));
    }

    #[test]
    fn schedule_cache_shares_compilations_across_technologies() {
        let workload = SweepWorkload::Mac {
            acc_bits: 8,
            mul_bits: 4,
        };
        let mut cache = ScheduleCache::new();
        let a = cache
            .get_or_compile(
                workload,
                &ProtectionConfig::ECIM.design_config(Technology::SttMram),
            )
            .unwrap();
        let b = cache
            .get_or_compile(
                workload,
                &ProtectionConfig::ECIM.design_config(Technology::ReRam),
            )
            .unwrap();
        // Same layout → the exact same Arc, not a recompilation.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        // A different layout compiles a second schedule.
        let c = cache
            .get_or_compile(
                workload,
                &ProtectionConfig::TRIM.design_config(Technology::SttMram),
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn exec_error_trials_cannot_masquerade_as_success() {
        // A point whose trials all fail to execute must not report a
        // perfect output_error_rate — the rate's denominator counts only
        // executed trials, and exec_errors stays visible.
        let workload = SweepWorkload::Mac {
            acc_bits: 8,
            mul_bits: 4,
        };
        let protection = ProtectionConfig::ECIM;
        let config = protection.design_config(Technology::SttMram);
        let mut cache = ScheduleCache::new();
        let kernel = cache.get_or_compile(workload, &config).unwrap();
        let ctx = PointContext::new(
            workload,
            protection,
            config.clone(),
            1e-3,
            kernel,
            Arc::new(ProtectedExecutor::new(config.clone())),
            Arc::new(SlicedExecutor::new(config)),
            0.0,
            0.0,
        );
        let broken = TrialOutcome {
            faults_injected: 0,
            checks: 0,
            errors_detected: 0,
            corrections_written_back: 0,
            uncorrectable: 0,
            wrong_output_bits: 0,
            exec_error: Some("array too small".into()),
            correct: None,
        };
        let failed = TrialOutcome {
            wrong_output_bits: 2,
            exec_error: None,
            ..broken.clone()
        };

        // All trials broken: rate 0.0 but exec_errors == trials.
        let all_broken = PointSummary::aggregate(&ctx, &[broken.clone(), broken.clone()]);
        assert_eq!(all_broken.exec_errors, 2);
        assert_eq!(all_broken.failed_trials, 0);
        assert_eq!(all_broken.output_error_rate, 0.0);

        // Mixed: one executed-and-failed trial out of one executed trial
        // gives rate 1.0, not 1/3.
        let mixed = PointSummary::aggregate(&ctx, &[broken.clone(), broken, failed]);
        assert_eq!(mixed.exec_errors, 2);
        assert_eq!(mixed.failed_trials, 1);
        assert!((mixed.output_error_rate - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn chunked_runs_are_byte_identical_for_any_chunk_size() {
        let mut plan = SweepPlan::quick();
        plan.seeds_per_point = 5;
        let baseline = run_campaign(&plan).unwrap().to_json();
        for chunk in [1usize, 3, 7, 1000] {
            let mut cache = ScheduleCache::new();
            let prepared = prepare_campaign(&plan, &mut cache).unwrap();
            let mut events = 0u64;
            let report = prepared
                .run_chunked(chunk, |p| {
                    events += 1;
                    assert!(p.trials_done <= p.trials_total);
                    CampaignControl::Continue
                })
                .unwrap();
            assert_eq!(report.to_json(), baseline, "chunk size {chunk}");
            let expected_chunks = plan.trial_count().div_ceil(chunk as u64);
            assert_eq!(events, expected_chunks);
        }
    }

    #[test]
    fn shard_ranges_partition_the_trial_list() {
        assert_eq!(shard_ranges(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(shard_ranges(2, 5), vec![(0, 1), (1, 2)]);
        assert_eq!(shard_ranges(0, 3), Vec::<(u64, u64)>::new());
        assert_eq!(shard_ranges(7, 0), vec![(0, 7)]);
        for (total, shards) in [(1u64, 1usize), (64, 3), (1000, 16), (5, 5)] {
            let ranges = shard_ranges(total, shards);
            assert!(ranges.len() <= shards.max(1));
            let mut next = 0u64;
            for &(s, e) in &ranges {
                assert_eq!(s, next);
                assert!(e > s, "ranges are non-empty");
                next = e;
            }
            assert_eq!(next, total);
        }
    }

    #[test]
    fn sharded_outcomes_merge_byte_identically() {
        // Scatter/gather over any shard geometry must aggregate into the
        // same bytes as a one-shot run — including shards resumed from a
        // checkpointed prefix mid-range.
        let mut plan = SweepPlan::quick();
        plan.seeds_per_point = 5;
        let baseline = run_campaign(&plan).unwrap().to_json();
        let mut cache = ScheduleCache::new();
        let prepared = prepare_campaign(&plan, &mut cache).unwrap();
        let backend = execution_backend(SimBackend::default());
        for shards in [1usize, 2, 3, 7] {
            let mut merged: Vec<TrialOutcome> = Vec::new();
            for (start, end) in shard_ranges(prepared.trial_count(), shards) {
                let slice = prepared
                    .run_shard_resumable(backend, start, end, 4, Vec::new(), |_| {
                        CampaignControl::Continue
                    })
                    .unwrap();
                assert_eq!(slice.len() as u64, end - start);
                merged.extend(slice);
            }
            let report = prepared.report_from_outcomes(&merged).unwrap();
            assert_eq!(report.to_json(), baseline, "{shards} shards");
        }
    }

    #[test]
    fn shard_resume_skips_checkpointed_prefix() {
        let plan = SweepPlan::quick();
        let mut cache = ScheduleCache::new();
        let prepared = prepare_campaign(&plan, &mut cache).unwrap();
        let backend = execution_backend(SimBackend::default());
        let total = prepared.trial_count();
        let (start, end) = (total / 4, 3 * total / 4);

        // First pass: capture the first two chunks' outcomes, then die.
        let mut checkpointed: Vec<TrialOutcome> = Vec::new();
        let mut chunks = 0;
        let err = prepared
            .run_shard_resumable(backend, start, end, 3, Vec::new(), |cp| {
                checkpointed.extend_from_slice(cp.new_outcomes);
                chunks += 1;
                if chunks == 2 {
                    CampaignControl::Cancel
                } else {
                    CampaignControl::Continue
                }
            })
            .unwrap_err();
        assert_eq!(err, SweepError::Cancelled);
        assert_eq!(checkpointed.len(), 6);

        // Second pass resumes from the checkpoint: progress starts past the
        // prefix and the spliced shard matches a clean one-pass shard.
        let resumed = prepared
            .run_shard_resumable(backend, start, end, 3, checkpointed.clone(), |cp| {
                assert!(cp.progress.trials_done > 6);
                assert_eq!(cp.progress.trials_total, end - start);
                CampaignControl::Continue
            })
            .unwrap();
        let clean = prepared
            .run_shard_resumable(backend, start, end, 1000, Vec::new(), |_| {
                CampaignControl::Continue
            })
            .unwrap();
        assert_eq!(
            resumed.iter().map(|o| o.to_json()).collect::<Vec<_>>(),
            clean.iter().map(|o| o.to_json()).collect::<Vec<_>>()
        );

        // Range and prefix validation.
        assert!(matches!(
            prepared.run_shard_resumable(backend, 5, 4, 1, Vec::new(), |_| {
                CampaignControl::Continue
            }),
            Err(SweepError::BadCheckpoint(_))
        ));
        assert!(matches!(
            prepared.run_shard_resumable(backend, 0, total + 1, 1, Vec::new(), |_| {
                CampaignControl::Continue
            }),
            Err(SweepError::BadCheckpoint(_))
        ));
        assert!(matches!(
            prepared.report_from_outcomes(&clean),
            Err(SweepError::BadCheckpoint(_))
        ));
    }

    #[test]
    fn observer_cancellation_aborts_between_chunks() {
        let plan = SweepPlan::quick();
        let mut cache = ScheduleCache::new();
        let prepared = prepare_campaign(&plan, &mut cache).unwrap();
        let mut seen = Vec::new();
        let err = prepared
            .run_chunked(8, |p| {
                seen.push(p.trials_done);
                if seen.len() == 2 {
                    CampaignControl::Cancel
                } else {
                    CampaignControl::Continue
                }
            })
            .unwrap_err();
        assert_eq!(err, SweepError::Cancelled);
        assert_eq!(seen, vec![8, 16]);
    }

    #[test]
    fn warm_cache_preparation_compiles_nothing_and_reports_identically() {
        let plan = SweepPlan::quick();
        let mut cache = ScheduleCache::new();
        let cold = prepare_campaign(&plan, &mut cache).unwrap();
        let compiles_after_cold = cache.compiles();
        assert!(compiles_after_cold > 0);
        assert_eq!(cache.hits() + cache.compiles(), 3); // one lookup per (wl, tech, prot)

        let warm = prepare_campaign(&plan, &mut cache).unwrap();
        assert_eq!(cache.compiles(), compiles_after_cold, "no recompilation");
        // `schedules_compiled` in the report reflects schedules *used*, so
        // warm and cold runs emit byte-identical JSON.
        assert_eq!(cold.run().unwrap().to_json(), warm.run().unwrap().to_json());
    }

    #[test]
    fn campaign_reports_protection_efficacy() {
        // At a demanding error rate the unprotected baseline must fail
        // trials while ECiM/TRiM keep the output intact far more often.
        let mut plan = SweepPlan::quick();
        plan.gate_error_rates = vec![1e-3];
        plan.seeds_per_point = 16;
        let report = run_campaign(&plan).unwrap();
        assert_eq!(report.points.len(), 3);
        let by_label = |label: &str| {
            report
                .points
                .iter()
                .find(|p| p.protection == label)
                .unwrap_or_else(|| panic!("missing point {label}"))
                .clone()
        };
        let unprotected = by_label("unprotected/m-o");
        let ecim = by_label("ECiM/m-o");
        let trim = by_label("TRiM/m-o");
        assert!(
            unprotected.failed_trials > 0,
            "unprotected baseline should corrupt some trials"
        );
        assert!(ecim.errors_detected > 0, "ECiM should detect faults");
        assert!(trim.errors_detected > 0, "TRiM should detect faults");
        assert!(ecim.failed_trials < unprotected.failed_trials);
        assert!(trim.failed_trials < unprotected.failed_trials);
        assert_eq!(report.total_trials, 48);
        // Three distinct layouts (unprotected, ECiM metadata, TRiM copies).
        assert_eq!(report.schedules_compiled, 3);
    }
}
