//! The TCP front end: one thread per connection, newline-delimited JSON.
//!
//! `nvpim-serviced` binds a [`TcpListener`], prints
//! `nvpim-serviced listening on <addr>` (so scripts can scrape an
//! OS-assigned port), and serves until a client issues `shutdown`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

use crate::protocol::{dispatch, error_response, Outcome, MAX_LINE_BYTES};
use crate::service::ServiceHandle;

/// One request line read from a connection.
enum Line {
    /// End of stream.
    Eof,
    /// The line exceeded [`MAX_LINE_BYTES`].
    TooLong,
    /// A complete line (without the trailing newline).
    Text(String),
}

/// Reads one `\n`-terminated line, refusing lines whose *content*
/// (excluding the line terminator) exceeds `max` bytes.
fn read_bounded_line<R: Read>(reader: &mut BufReader<R>, max: usize) -> std::io::Result<Line> {
    let mut buf = Vec::new();
    // `take` caps how much one oversized line can pull before we give up:
    // content + "\r\n" at the limit needs max + 2 bytes.
    let mut limited = reader.by_ref().take(max as u64 + 2);
    limited.read_until(b'\n', &mut buf)?;
    if buf.is_empty() {
        return Ok(Line::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    }
    if buf.len() > max {
        return Ok(Line::TooLong);
    }
    match String::from_utf8(buf) {
        Ok(text) => Ok(Line::Text(text)),
        Err(_) => Ok(Line::Text(String::from("\u{fffd}"))), // let dispatch reject it
    }
}

fn write_line(stream: &mut TcpStream, value: &serde::Value) -> std::io::Result<()> {
    // `Value` serialization is infallible in practice; if it ever fails,
    // surface an I/O error on this connection instead of panicking the
    // connection thread.
    let mut text = serde_json::to_string(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    text.push('\n');
    stream.write_all(text.as_bytes())?;
    stream.flush()
}

fn handle_connection(service: ServiceHandle, stream: TcpStream, self_addr: std::net::SocketAddr) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_bounded_line(&mut reader, MAX_LINE_BYTES) {
            Err(_) | Ok(Line::Eof) => break,
            Ok(Line::TooLong) => {
                let _ = write_line(
                    &mut writer,
                    &error_response(
                        "line_too_long",
                        format!("request lines are capped at {MAX_LINE_BYTES} bytes"),
                    ),
                );
                break; // the rest of the oversized line is unrecoverable
            }
            Ok(Line::Text(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                let outcome =
                    dispatch(&service, &line, &mut |value| write_line(&mut writer, value));
                match outcome {
                    Ok(Outcome::Continue) => {}
                    Ok(Outcome::Shutdown) => {
                        // Graceful drain when a grace budget is configured,
                        // legacy run-everything shutdown otherwise. In drain
                        // mode the daemon keeps serving other connections
                        // (ping answers `draining: true`) while workers
                        // checkpoint; `finish_stop` blocks this connection
                        // thread until the stop completes and flips
                        // `shutting_down`, after which the accept loop can
                        // observe it and exit.
                        service.begin_stop();
                        service.finish_stop();
                        // Wake the accept loop so it can observe the flag.
                        // A wildcard bind address (0.0.0.0 / ::) is not
                        // connectable everywhere — dial loopback instead.
                        let mut wake = self_addr;
                        if wake.ip().is_unspecified() {
                            wake.set_ip(match wake.ip() {
                                std::net::IpAddr::V4(_) => {
                                    std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST)
                                }
                                std::net::IpAddr::V6(_) => {
                                    std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST)
                                }
                            });
                        }
                        let _ = TcpStream::connect(wake);
                        break;
                    }
                    Err(_) => break, // client went away mid-response
                }
            }
        }
    }
}

/// Serves connections on `listener` until a `shutdown` request arrives,
/// then drains and joins the service's worker pool.
///
/// # Errors
///
/// Propagates listener I/O failures (binding problems surface in the
/// caller; per-connection errors only drop that connection).
pub fn serve(service: &ServiceHandle, listener: TcpListener) -> std::io::Result<()> {
    let self_addr = listener.local_addr()?;
    for stream in listener.incoming() {
        if service.is_shutting_down() {
            break;
        }
        match stream {
            Ok(stream) => {
                let service = service.clone();
                std::thread::spawn(move || handle_connection(service, stream, self_addr));
            }
            Err(_) => continue,
        }
    }
    service.finish_stop();
    Ok(())
}

/// Binds `addr`, announces the bound address on stdout, and serves forever
/// (until a `shutdown` request). This is the whole `nvpim-serviced` main
/// loop, also reachable from the harness binaries' `--serve` flag.
///
/// # Errors
///
/// Bind/accept failures.
pub fn run_server(addr: &str, service: &ServiceHandle) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    println!("nvpim-serviced listening on {}", listener.local_addr()?);
    serve(service, listener)
}
