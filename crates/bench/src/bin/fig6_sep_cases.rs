//! Regenerates Fig. 6: the single-error-protection case analysis for the
//! Hamming(7, 4) AND-gate example (error site → errors per logic level →
//! final outcome).

use nvpim_bench::{print_json, print_table, HarnessOptions};
use nvpim_core::sep::{figure6_cases, Figure6Site};

fn main() {
    let opts = HarnessOptions::from_args();
    println!("Fig. 6 — SEP guarantee case analysis (Hamming(7,4) AND example)\n");
    let cases = figure6_cases();
    let table: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            let site = match c.site {
                Figure6Site::MainOutput(i) => format!("o{i}"),
                Figure6Site::RedundantOutput { parity, gate } => format!("r{parity}{gate}"),
            };
            vec![
                site,
                c.errors_in_level.to_string(),
                c.errors_at_end_without_checks.to_string(),
                if c.corrected_by_level_checks {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
                c.outcome.clone(),
            ]
        })
        .collect();
    print_table(
        &[
            "error site",
            "errors in logic level",
            "errors at end (no checks)",
            "corrected by level checks",
            "outcome",
        ],
        &table,
    );
    if opts.json {
        print_json(&cases);
    }
}
