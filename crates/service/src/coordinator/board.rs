//! The shard board: the coordinator's single source of truth for which
//! trial ranges are pending, running, finished, or abandoned.
//!
//! Worker agents *claim* pending shards, *complete* them with their full
//! outcome list, or *requeue* them (carrying the outcome prefix already
//! streamed, so the next owner resumes instead of recomputing). The board
//! is a plain `Mutex` + `Condvar` pair: claims block until a shard is
//! schedulable, a backoff deadline passes, or the fleet aborts.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use nvpim_sweep::TrialOutcome;

/// One contiguous shard of the flat plan-ordered trial list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index (its position in [`nvpim_sweep::shard_ranges`] order —
    /// also the splice position at merge time).
    pub index: usize,
    /// First trial (inclusive) in the flat trial list.
    pub start: u64,
    /// One past the last trial of the shard.
    pub end: u64,
}

impl ShardSpec {
    /// Number of trials in the shard (`shard_ranges` never produces an
    /// empty one).
    pub fn len(&self) -> u64 {
        self.end - self.start
    }
}

/// A claimed shard: the range plus the outcome prefix earlier attempts
/// already computed (possibly empty) and how many times the shard has
/// been re-assigned so far.
#[derive(Debug)]
pub(crate) struct Claim {
    pub spec: ShardSpec,
    pub resume: Vec<TrialOutcome>,
    pub attempts: u32,
}

/// Scheduling state of one shard.
enum Slot {
    /// Waiting for a worker. Carries the durable outcome prefix so a
    /// re-assignment never recomputes checkpointed chunks, and a
    /// `not_before` deadline implementing jittered re-try backoff.
    Pending {
        resume: Vec<TrialOutcome>,
        attempts: u32,
        not_before: Instant,
    },
    /// Claimed by a live worker agent.
    Running,
    /// All `end - start` outcomes collected.
    Done(Vec<TrialOutcome>),
}

/// Why the fleet gave up before every shard completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Abort {
    /// One shard exceeded its re-assignment budget.
    ShardExhausted {
        shard: usize,
        attempts: u32,
        last_error: String,
    },
    /// Every worker died or drained while shards were still unfinished.
    WorkersExhausted { unfinished: usize },
}

struct State {
    slots: Vec<Slot>,
    /// Worker agents still scheduling; when this reaches zero with
    /// unfinished shards the fleet aborts rather than hanging.
    live_workers: usize,
    /// Lifetime count of shard re-assignments (requeues).
    reassigned: u64,
    abort: Option<Abort>,
}

pub(crate) struct Board {
    specs: Vec<ShardSpec>,
    state: Mutex<State>,
    wake: Condvar,
}

impl Board {
    pub fn new(specs: Vec<ShardSpec>, workers: usize) -> Self {
        let now = Instant::now();
        let slots = specs
            .iter()
            .map(|_| Slot::Pending {
                resume: Vec::new(),
                attempts: 0,
                not_before: now,
            })
            .collect();
        Self {
            specs,
            state: Mutex::new(State {
                slots,
                live_workers: workers,
                reassigned: 0,
                abort: None,
            }),
            wake: Condvar::new(),
        }
    }

    /// Blocks until a shard is claimable and claims it, or returns `None`
    /// when no work will ever be claimable again (all shards done, or the
    /// fleet aborted). Shards whose backoff deadline is in the future are
    /// waited out, not skipped forever.
    pub fn claim(&self) -> Option<Claim> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if state.abort.is_some() {
                return None;
            }
            if state.slots.iter().all(|slot| matches!(slot, Slot::Done(_))) {
                return None;
            }
            let now = Instant::now();
            let mut soonest: Option<Instant> = None;
            let mut claimable = None;
            for (index, slot) in state.slots.iter().enumerate() {
                if let Slot::Pending { not_before, .. } = slot {
                    if *not_before <= now {
                        claimable = Some(index);
                        break;
                    }
                    soonest = Some(match soonest {
                        None => *not_before,
                        Some(t) => t.min(*not_before),
                    });
                }
            }
            if let Some(index) = claimable {
                let slot = std::mem::replace(&mut state.slots[index], Slot::Running);
                let Slot::Pending {
                    resume, attempts, ..
                } = slot
                else {
                    unreachable!("claimable slot is pending by construction");
                };
                return Some(Claim {
                    spec: self.specs[index],
                    resume,
                    attempts,
                });
            }
            // Nothing claimable right now: either every unfinished shard
            // is running elsewhere (it may come back if its worker dies)
            // or the soonest backoff deadline is in the future.
            state = match soonest {
                Some(deadline) => {
                    let timeout = deadline
                        .saturating_duration_since(now)
                        .max(Duration::from_millis(1));
                    self.wake
                        .wait_timeout(state, timeout)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .0
                }
                None => self
                    .wake
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            };
        }
    }

    /// Records a finished shard.
    pub fn complete(&self, index: usize, outcomes: Vec<TrialOutcome>) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.slots[index] = Slot::Done(outcomes);
        drop(state);
        self.wake.notify_all();
    }

    /// Returns a claimed shard to the pending pool so another worker can
    /// pick it up, keeping the durable outcome prefix. `attempts` is the
    /// shard's new attempt count; exceeding `max_attempts` aborts the
    /// whole fleet (the shard is failing everywhere). Every successful
    /// requeue counts as one re-assignment; returns whether the shard was
    /// requeued (`false` = budget exhausted, fleet aborting).
    pub fn requeue(
        &self,
        index: usize,
        resume: Vec<TrialOutcome>,
        attempts: u32,
        max_attempts: u32,
        backoff: Duration,
        last_error: &str,
    ) -> bool {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let requeued = if attempts > max_attempts {
            if state.abort.is_none() {
                state.abort = Some(Abort::ShardExhausted {
                    shard: index,
                    attempts,
                    last_error: last_error.to_string(),
                });
            }
            false
        } else {
            state.slots[index] = Slot::Pending {
                resume,
                attempts,
                not_before: Instant::now() + backoff,
            };
            state.reassigned += 1;
            true
        };
        drop(state);
        self.wake.notify_all();
        requeued
    }

    /// A worker agent is leaving the pool (dead, drained, or simply out
    /// of work). If it was the last one and shards are still unfinished,
    /// the fleet aborts instead of waiting forever.
    pub fn worker_gone(&self) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.live_workers = state.live_workers.saturating_sub(1);
        if state.live_workers == 0 && state.abort.is_none() {
            let unfinished = state
                .slots
                .iter()
                .filter(|slot| !matches!(slot, Slot::Done(_)))
                .count();
            if unfinished > 0 {
                state.abort = Some(Abort::WorkersExhausted { unfinished });
            }
        }
        drop(state);
        self.wake.notify_all();
    }

    /// Lifetime re-assignment count.
    pub fn reassigned(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .reassigned
    }

    /// Consumes the board: every shard's outcomes in shard order, or the
    /// abort reason.
    pub fn finish(self) -> Result<Vec<Vec<TrialOutcome>>, Abort> {
        let state = self
            .state
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(abort) = state.abort {
            return Err(abort);
        }
        let mut shards = Vec::with_capacity(state.slots.len());
        for (index, slot) in state.slots.into_iter().enumerate() {
            match slot {
                Slot::Done(outcomes) => shards.push(outcomes),
                _ => {
                    // Workers only exit after `claim` returns `None`,
                    // which requires all-done or an abort.
                    return Err(Abort::WorkersExhausted {
                        unfinished: index + 1,
                    });
                }
            }
        }
        Ok(shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(ranges: &[(u64, u64)]) -> Vec<ShardSpec> {
        ranges
            .iter()
            .enumerate()
            .map(|(index, &(start, end))| ShardSpec { index, start, end })
            .collect()
    }

    fn outcome() -> TrialOutcome {
        TrialOutcome {
            faults_injected: 1,
            checks: 2,
            errors_detected: 0,
            corrections_written_back: 0,
            uncorrectable: 0,
            wrong_output_bits: 0,
            exec_error: None,
            correct: None,
        }
    }

    #[test]
    fn claims_serve_shards_once_and_finish_in_order() {
        let board = Board::new(specs(&[(0, 3), (3, 5)]), 1);
        let first = board.claim().expect("first shard claimable");
        assert_eq!(first.spec.start, 0);
        assert_eq!(first.attempts, 0);
        let second = board.claim().expect("second shard claimable");
        assert_eq!(second.spec.start, 3);
        board.complete(second.spec.index, vec![outcome(), outcome()]);
        board.complete(first.spec.index, vec![outcome(); 3]);
        assert!(board.claim().is_none(), "no third shard");
        let shards = board.finish().expect("no abort");
        assert_eq!(shards[0].len(), 3);
        assert_eq!(shards[1].len(), 2);
    }

    #[test]
    fn requeue_preserves_the_resume_prefix_and_counts_reassignments() {
        let board = Board::new(specs(&[(0, 4)]), 2);
        let claim = board.claim().expect("claimable");
        board.requeue(
            claim.spec.index,
            vec![outcome(), outcome()],
            claim.attempts + 1,
            8,
            Duration::ZERO,
            "worker died",
        );
        assert_eq!(board.reassigned(), 1);
        let again = board.claim().expect("requeued shard claimable");
        assert_eq!(again.resume.len(), 2, "durable prefix survives hand-off");
        assert_eq!(again.attempts, 1);
        board.complete(0, vec![outcome(); 4]);
        assert!(board.finish().is_ok());
    }

    #[test]
    fn exceeding_the_reassignment_budget_aborts_the_fleet() {
        let board = Board::new(specs(&[(0, 2)]), 1);
        let claim = board.claim().expect("claimable");
        board.requeue(
            claim.spec.index,
            Vec::new(),
            3,
            2,
            Duration::ZERO,
            "persistent failure",
        );
        assert!(board.claim().is_none(), "abort stops scheduling");
        match board.finish() {
            Err(Abort::ShardExhausted {
                shard,
                attempts,
                last_error,
            }) => {
                assert_eq!(shard, 0);
                assert_eq!(attempts, 3);
                assert_eq!(last_error, "persistent failure");
            }
            other => panic!("expected shard exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn last_worker_leaving_with_unfinished_shards_aborts() {
        let board = Board::new(specs(&[(0, 2), (2, 4)]), 2);
        board.complete(0, vec![outcome(); 2]);
        board.worker_gone();
        board.worker_gone();
        assert!(board.claim().is_none());
        match board.finish() {
            Err(Abort::WorkersExhausted { unfinished }) => assert_eq!(unfinished, 1),
            other => panic!("expected worker exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn backoff_deadline_delays_but_does_not_drop_a_shard() {
        let board = Board::new(specs(&[(0, 1)]), 1);
        let claim = board.claim().expect("claimable");
        board.requeue(
            claim.spec.index,
            Vec::new(),
            1,
            8,
            Duration::from_millis(30),
            "transient",
        );
        let started = Instant::now();
        let again = board.claim().expect("shard comes back after backoff");
        assert!(
            started.elapsed() >= Duration::from_millis(25),
            "claim honored the backoff deadline"
        );
        assert_eq!(again.attempts, 1);
    }
}
