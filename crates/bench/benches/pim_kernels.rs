//! Criterion micro-benchmarks of the PiM substrate and compiler: in-array
//! gate execution, the two-step XOR, netlist synthesis and row mapping.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nvpim_compiler::builder::CircuitBuilder;
use nvpim_compiler::layout::RowLayout;
use nvpim_compiler::schedule::map_netlist;
use nvpim_sim::array::{GateOp, PimArray};
use nvpim_sim::gates::GateKind;
use nvpim_sim::technology::Technology;

fn bench_gate_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("in_array_gates");
    for tech in Technology::ALL {
        group.bench_with_input(
            BenchmarkId::new("nor22_plus_thr", tech.to_string()),
            &tech,
            |b, &tech| {
                let mut array = PimArray::new(tech, 1, 16);
                array.poke(0, 0, true).unwrap();
                array.poke(0, 1, false).unwrap();
                let nor = GateOp::new(GateKind::NOR22, 0, vec![0, 1], vec![2, 3]);
                let thr = GateOp::new(GateKind::THR, 0, vec![0, 1, 2, 3], vec![4]);
                b.iter(|| {
                    array.execute_gate(black_box(&nor)).unwrap();
                    array.execute_gate(black_box(&thr)).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn multiplier_netlist(bits: usize) -> nvpim_compiler::netlist::Netlist {
    let mut b = CircuitBuilder::new();
    let x = b.input_word(bits);
    let y = b.input_word(bits);
    let p = b.mul_unsigned(&x, &y);
    b.mark_output_word(&p);
    b.finish()
}

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(30);
    for bits in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("multiplier", bits), &bits, |b, &bits| {
            b.iter(|| multiplier_netlist(black_box(bits)))
        });
    }
    group.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_mapping");
    group.sample_size(20);
    let netlist = multiplier_netlist(8);
    for (label, layout) in [
        ("unprotected", RowLayout::unprotected(256)),
        (
            "ecim_iso_area",
            RowLayout {
                total_columns: 256,
                metadata_columns: 32,
                cells_per_value: 1,
            },
        ),
        (
            "trim_iso_area",
            RowLayout {
                total_columns: 256,
                metadata_columns: 0,
                cells_per_value: 3,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &layout, |b, layout| {
            b.iter(|| map_netlist(black_box(&netlist), *layout).unwrap())
        });
    }
    group.finish();
}

fn bench_behavioral_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("behavioral_simulation");
    let netlist = multiplier_netlist(8);
    let inputs: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
    group.bench_function("mul8x8_reference", |b| {
        b.iter(|| netlist.evaluate(black_box(&inputs)))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(800)).sample_size(20);
    targets =
    bench_gate_execution,
    bench_synthesis,
    bench_mapping,
    bench_behavioral_evaluation
);
criterion_main!(benches);
