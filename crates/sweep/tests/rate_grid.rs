//! The campaign really sweeps its error-rate grid.
//!
//! Lives in its own test binary (not `determinism.rs`) because that
//! binary's test mutates the process-global `RAYON_NUM_THREADS` variable —
//! tests inside one binary run concurrently, and cargo runs test binaries
//! sequentially, so the separation removes the env-read race entirely.

use nvpim_sweep::{run_campaign, SweepPlan};

#[test]
fn faults_scale_with_the_error_rate_grid() {
    // Within one protection scheme, more demanding error rates must inject
    // more faults — the campaign actually sweeps the grid rather than
    // reusing one regime. Enough seeds per point that expected fault counts
    // dominate Monte Carlo noise at the lowest rate (the packed-arena
    // engine makes this size trivial to run).
    let mut plan = SweepPlan::quick();
    plan.seeds_per_point = 64;
    let report = run_campaign(&plan).unwrap();
    for scheme in ["unprotected/m-o", "ECiM/m-o", "TRiM/m-o"] {
        let rates: Vec<_> = report
            .points
            .iter()
            .filter(|p| p.protection == scheme)
            .collect();
        assert_eq!(rates.len(), 3, "{scheme}");
        for pair in rates.windows(2) {
            assert!(
                pair[0].gate_error_rate < pair[1].gate_error_rate,
                "points stay in plan order"
            );
            assert!(
                pair[0].faults_injected <= pair[1].faults_injected,
                "{scheme}: faults at {} should not exceed faults at {}",
                pair[0].gate_error_rate,
                pair[1].gate_error_rate,
            );
        }
        assert!(
            rates[2].faults_injected > rates[0].faults_injected,
            "{scheme}: the decade spread must be visible in fault counts"
        );
    }
}
