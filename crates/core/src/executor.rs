//! Functional execution of protected PiM computation (the behavioral
//! simulator of §V, extended with the ECiM / TRiM protocols of §IV).
//!
//! [`ProtectedExecutor`] drives a compiled [`RowSchedule`] on a simulated
//! [`PimArray`] row while maintaining the scheme's metadata *in memory*:
//!
//! * **ECiM** — every gate produces a redundant second output (multi-output
//!   gates) or an explicit copy (single-output gates) in the parity region,
//!   which is folded into the running parity bits of the current logic level
//!   by in-array two-step XORs. At every logic-level boundary the external
//!   [`EcimChecker`] reads the level's outputs plus the parity bits,
//!   computes the syndrome, and writes corrections back.
//! * **TRiM** — every gate drives three output cells (or three single-output
//!   gates execute in different partitions); at every logic-level boundary
//!   the [`TrimChecker`] majority-votes the copies and writes corrections
//!   back.
//! * **Unprotected** — gates execute as scheduled with no checks (the
//!   baseline, and the demonstration of why protection is needed).
//!
//! Because the metadata operations are real in-array gate operations on the
//! same simulated array, injected faults can strike the main computation,
//! the parity pipeline, the redundant copies *or* idle cells — and the
//! executor's reports show whether the final outputs survived, which is how
//! the SEP guarantee is validated end to end.

use nvpim_compiler::netlist::{LogicOp, Netlist};
use nvpim_compiler::schedule::{RowSchedule, ScheduledGate};
use nvpim_ecc::gf2::BitVec;
use nvpim_ecc::hamming::HammingCode;
use nvpim_sim::array::{ArrayError, GateOp, PimArray};
use nvpim_sim::gates::GateKind;
use serde::{Deserialize, Serialize};

use crate::checker::{EcimChecker, TrimChecker};
use crate::config::{DesignConfig, GateStyle, ProtectionScheme};

/// Errors raised by protected execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtectedExecError {
    /// The schedule was produced for a different layout than the config's.
    LayoutMismatch,
    /// The schedule contains spills and cannot run on a single row.
    NotDirectlyExecutable,
    /// The input value count does not match the netlist.
    InputArityMismatch {
        /// Inputs expected.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// The array is too small for the configured layout.
    ArrayTooSmall,
    /// An array-level error occurred.
    Array(ArrayError),
}

impl std::fmt::Display for ProtectedExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtectedExecError::LayoutMismatch => {
                write!(f, "schedule layout does not match the design configuration")
            }
            ProtectedExecError::NotDirectlyExecutable => {
                write!(f, "schedule spilled values and cannot run on a single row")
            }
            ProtectedExecError::InputArityMismatch { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            ProtectedExecError::ArrayTooSmall => write!(f, "array is smaller than the layout"),
            ProtectedExecError::Array(e) => write!(f, "array error: {e}"),
        }
    }
}

impl std::error::Error for ProtectedExecError {}

impl From<ArrayError> for ProtectedExecError {
    fn from(e: ArrayError) -> Self {
        ProtectedExecError::Array(e)
    }
}

/// Outcome of one protected run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectedRunReport {
    /// Primary output values read back from the array.
    pub outputs: Vec<bool>,
    /// Number of Checker invocations (one per logic level / codeword chunk).
    pub checks: u64,
    /// Checks in which an error was detected.
    pub errors_detected: u64,
    /// Data bits corrected and written back to the array.
    pub corrections_written_back: u64,
    /// Checks whose error pattern exceeded the correction capability.
    pub uncorrectable: u64,
    /// In-array gate operations spent on metadata (parity copies, XOR
    /// updates, redundant computation) rather than main computation.
    pub metadata_gate_ops: u64,
}

/// Executes schedules under a [`DesignConfig`]'s protection scheme.
#[derive(Debug, Clone)]
pub struct ProtectedExecutor {
    config: DesignConfig,
    code: HammingCode,
}

/// Tracks primary-input materialization during one run: a precomputed
/// net → input-position map (so the per-gate lookup is O(1) even on the
/// Monte Carlo sweep's hot path) plus the set of inputs already written.
struct InputTracker {
    positions: std::collections::HashMap<usize, usize>,
    materialized: std::collections::HashSet<usize>,
}

impl InputTracker {
    fn new(netlist: &Netlist) -> Self {
        Self {
            positions: netlist
                .inputs
                .iter()
                .enumerate()
                .map(|(pos, &net)| (net, pos))
                .collect(),
            materialized: std::collections::HashSet::new(),
        }
    }
}

impl ProtectedExecutor {
    /// Creates an executor for the given design point.
    pub fn new(config: DesignConfig) -> Self {
        let code = HammingCode::new_standard(config.hamming_r);
        Self { config, code }
    }

    /// The design configuration.
    pub fn config(&self) -> &DesignConfig {
        &self.config
    }

    /// The Hamming code used for ECiM parity.
    pub fn code(&self) -> &HammingCode {
        &self.code
    }

    /// Runs `schedule` (compiled from `netlist` with `config.row_layout()`)
    /// in row `row` of `array` on the given primary inputs.
    ///
    /// # Errors
    ///
    /// See [`ProtectedExecError`].
    pub fn run(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        if schedule.layout != self.config.row_layout() {
            return Err(ProtectedExecError::LayoutMismatch);
        }
        if !schedule.is_directly_executable() {
            return Err(ProtectedExecError::NotDirectlyExecutable);
        }
        if inputs.len() != netlist.inputs.len() {
            return Err(ProtectedExecError::InputArityMismatch {
                expected: netlist.inputs.len(),
                got: inputs.len(),
            });
        }
        if array.cols() < self.config.array_columns || row >= array.rows() {
            return Err(ProtectedExecError::ArrayTooSmall);
        }
        match self.config.scheme {
            ProtectionScheme::Unprotected => {
                self.run_unprotected(netlist, schedule, array, row, inputs)
            }
            ProtectionScheme::Ecim => self.run_ecim(netlist, schedule, array, row, inputs),
            ProtectionScheme::Trim => self.run_trim(netlist, schedule, array, row, inputs),
        }
    }

    /// Convenience wrapper: compiles `netlist` for this design's layout and
    /// runs it on a fresh standard array, returning the report.
    ///
    /// # Errors
    ///
    /// Propagates mapping and execution errors as `ProtectedExecError`
    /// (mapping failures surface as [`ProtectedExecError::ArrayTooSmall`]).
    pub fn compile_and_run(
        &self,
        netlist: &Netlist,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        let schedule = nvpim_compiler::schedule::map_netlist(netlist, self.config.row_layout())
            .map_err(|_| ProtectedExecError::ArrayTooSmall)?;
        self.run(netlist, &schedule, array, row, inputs)
    }

    // ------------------------------------------------------------------

    /// Nets that are consumed by at least one gate or are primary outputs.
    /// Gate outputs outside this set are dead on arrival: their cells can be
    /// recycled within the same logic level, so they are excluded from
    /// metadata maintenance and checking (they cannot influence the result).
    fn used_nets(netlist: &Netlist) -> std::collections::HashSet<usize> {
        let mut used: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for gate in &netlist.gates {
            used.extend(gate.inputs.iter().copied());
        }
        used.extend(netlist.outputs.iter().copied());
        used
    }

    fn materialize_inputs(
        &self,
        netlist: &Netlist,
        sg: &ScheduledGate,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
        tracker: &mut InputTracker,
    ) -> Result<(), ProtectedExecError> {
        let gate_inputs = &netlist.gates[sg.index].inputs;
        for (i, &net) in gate_inputs.iter().enumerate() {
            if let Some(&pos) = tracker.positions.get(&net) {
                if tracker.materialized.insert(net) {
                    // Write the value into every copy this design keeps.
                    for copy in 0..self.config.cells_per_value() {
                        let col =
                            sg.input_cols_per_copy[copy.min(sg.input_cols_per_copy.len() - 1)][i];
                        array.write_cell(row, col, inputs[pos])?;
                    }
                }
            }
        }
        Ok(())
    }

    fn read_outputs(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
    ) -> Result<Vec<bool>, ProtectedExecError> {
        let mut outputs = Vec::with_capacity(schedule.output_cols.len());
        for (i, col) in schedule.output_cols.iter().enumerate() {
            match col {
                Some(c) => outputs.push(array.read_cell(row, *c)?),
                None => {
                    let net = netlist.outputs[i];
                    let pos = netlist
                        .inputs
                        .iter()
                        .position(|&n| n == net)
                        .expect("non-resident output must be a primary input");
                    outputs.push(inputs[pos]);
                }
            }
        }
        Ok(outputs)
    }

    fn execute_plain_gate(
        &self,
        sg: &ScheduledGate,
        array: &mut PimArray,
        row: usize,
        extra_outputs: &[usize],
    ) -> Result<(), ProtectedExecError> {
        let mut outputs = sg.output_cols.clone();
        outputs.extend_from_slice(extra_outputs);
        match sg.op {
            LogicOp::Zero | LogicOp::One => {
                let value = sg.op == LogicOp::One;
                for &col in &outputs {
                    array.write_cell(row, col, value)?;
                }
            }
            LogicOp::Nor => {
                let kind = GateKind::Nor {
                    outputs: outputs.len() as u8,
                };
                array.execute_gate(&GateOp::new(kind, row, sg.input_cols.clone(), outputs))?;
            }
            LogicOp::Copy => {
                // A copy drives each destination with a separate single-output
                // operation (there is no multi-output copy primitive).
                for &col in &outputs {
                    array.execute_gate(&GateOp::new(
                        GateKind::Copy,
                        row,
                        sg.input_cols.clone(),
                        vec![col],
                    ))?;
                }
            }
            LogicOp::Thr => {
                for &col in &outputs {
                    array.execute_gate(&GateOp::new(
                        GateKind::THR,
                        row,
                        sg.input_cols.clone(),
                        vec![col],
                    ))?;
                }
            }
        }
        Ok(())
    }

    fn run_unprotected(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        let mut tracker = InputTracker::new(netlist);
        for sg in &schedule.gates {
            self.materialize_inputs(netlist, sg, array, row, inputs, &mut tracker)?;
            self.execute_plain_gate(sg, array, row, &[])?;
        }
        Ok(ProtectedRunReport {
            outputs: self.read_outputs(netlist, schedule, array, row, inputs)?,
            checks: 0,
            errors_detected: 0,
            corrections_written_back: 0,
            uncorrectable: 0,
            metadata_gate_ops: 0,
        })
    }

    // ------------------------------------------------------------------
    // ECiM
    // ------------------------------------------------------------------

    fn run_ecim(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        let parity_bits = self.code.parity_bits();
        let k = self.code.k();
        // Metadata region layout (columns 0..metadata_columns):
        //   [0, parity_bits)                ping parity cells
        //   [parity_bits, 2*parity)         pong parity cells
        //   [2*parity, 2*parity + 2)        XOR working cells (s1, s2)
        //   [2*parity + 2, 3*parity + 2)    independent redundant-copy cells
        //                                   (one r_i per parity bit, §IV-E:
        //                                   an error in a given r may affect
        //                                   only a single parity bit)
        let ping_base = 0usize;
        let pong_base = parity_bits;
        let work_s1 = 2 * parity_bits;
        let work_s2 = 2 * parity_bits + 1;
        let r_base = 2 * parity_bits + 2;
        assert!(
            self.config.metadata_columns() >= r_base + parity_bits,
            "ECiM metadata region too small for the parity pipeline"
        );
        // Which of ping/pong currently holds each parity bit.
        let mut parity_in_pong = vec![false; parity_bits];

        let used = Self::used_nets(netlist);
        let mut checker = EcimChecker::new(self.code.clone());
        let mut tracker = InputTracker::new(netlist);
        let mut metadata_gate_ops = 0u64;
        let mut corrections_written_back = 0u64;
        let mut errors_detected = 0u64;
        let mut uncorrectable = 0u64;

        // Reset all parity cells at the start of a level chunk.
        let reset_parity = |array: &mut PimArray,
                            parity_in_pong: &mut Vec<bool>|
         -> Result<(), ProtectedExecError> {
            for (i, in_pong) in parity_in_pong.iter_mut().enumerate() {
                array.write_cell(row, ping_base + i, false)?;
                array.write_cell(row, pong_base + i, false)?;
                *in_pong = false;
            }
            Ok(())
        };
        reset_parity(array, &mut parity_in_pong)?;

        // Outputs of the current level chunk: (codeword position, column).
        let mut chunk: Vec<(usize, usize)> = Vec::new();
        let mut current_level = schedule.gates.first().map(|g| g.level).unwrap_or(0);

        let flush_chunk = |array: &mut PimArray,
                           chunk: &mut Vec<(usize, usize)>,
                           parity_in_pong: &mut Vec<bool>,
                           checker: &mut EcimChecker,
                           errors_detected: &mut u64,
                           corrections_written_back: &mut u64,
                           uncorrectable: &mut u64|
         -> Result<(), ProtectedExecError> {
            if chunk.is_empty() {
                return Ok(());
            }
            // Conventional memory read of the level outputs and parity bits.
            let data_cols: Vec<usize> = chunk.iter().map(|&(_, col)| col).collect();
            let data = array.read_bits(row, &data_cols)?;
            let parity_cols: Vec<usize> = (0..parity_bits)
                .map(|i| {
                    if parity_in_pong[i] {
                        pong_base + i
                    } else {
                        ping_base + i
                    }
                })
                .collect();
            let parity = array.read_bits(row, &parity_cols)?;
            let result = checker.check_level(&data, &parity);
            if result.error_detected {
                *errors_detected += 1;
            }
            if result.uncorrectable {
                *uncorrectable += 1;
            }
            for &pos in &result.corrected_positions {
                let col = data_cols[pos];
                array.write_cell(row, col, result.corrected_data.get(pos))?;
                *corrections_written_back += 1;
            }
            chunk.clear();
            Ok(())
        };

        for sg in &schedule.gates {
            let gate = &netlist.gates[sg.index];
            if sg.level != current_level {
                flush_chunk(
                    array,
                    &mut chunk,
                    &mut parity_in_pong,
                    &mut checker,
                    &mut errors_detected,
                    &mut corrections_written_back,
                    &mut uncorrectable,
                )?;
                reset_parity(array, &mut parity_in_pong)?;
                current_level = sg.level;
            }
            self.materialize_inputs(netlist, sg, array, row, inputs, &mut tracker)?;

            let is_constant = matches!(sg.op, LogicOp::Zero | LogicOp::One);
            if is_constant || !used.contains(&gate.output) {
                self.execute_plain_gate(sg, array, row, &[])?;
                continue;
            }

            // Codeword position of this gate output within the current chunk.
            let position = chunk.len();

            // Parity bits this codeword position participates in.
            let mask = self.code.parity_update_mask(position.min(k - 1)).clone();
            let touched: Vec<usize> = mask.ones();

            // Execute the gate, producing one *independent* redundant copy
            // r_i per touched parity bit (Fig. 6: each XOR processes its own
            // r input, so a single error in any r corrupts only one parity
            // bit). Multi-output designs drive all copies from the same gate
            // in one step; single-output designs use explicit copy
            // operations.
            match self.config.gate_style {
                GateStyle::MultiOutput => {
                    let extra: Vec<usize> = touched.iter().map(|&bit| r_base + bit).collect();
                    self.execute_plain_gate(sg, array, row, &extra)?;
                    metadata_gate_ops += touched.len() as u64;
                }
                GateStyle::SingleOutput => {
                    self.execute_plain_gate(sg, array, row, &[])?;
                    // Each r_i is produced by re-executing the gate into its
                    // own cell (a separate single-output operation), so an
                    // error in the primary output never leaks into the parity
                    // metadata and vice versa.
                    for &bit in &touched {
                        let kind = match sg.op {
                            LogicOp::Nor => GateKind::NOR2,
                            LogicOp::Thr => GateKind::THR,
                            LogicOp::Copy => GateKind::Copy,
                            LogicOp::Zero | LogicOp::One => unreachable!("constants handled above"),
                        };
                        array.execute_gate(&GateOp::new(
                            kind,
                            row,
                            sg.input_cols.clone(),
                            vec![r_base + bit],
                        ))?;
                        metadata_gate_ops += 1;
                    }
                }
            }

            // Fold each r_i into its parity bit with the in-memory two-step
            // XOR (NOR22 then THR).
            for &bit in &touched {
                let r_cell = r_base + bit;
                let src = if parity_in_pong[bit] {
                    pong_base + bit
                } else {
                    ping_base + bit
                };
                let dst = if parity_in_pong[bit] {
                    ping_base + bit
                } else {
                    pong_base + bit
                };
                // s1 = s2 = NOR(p, r)
                array.execute_gate(&GateOp::new(
                    GateKind::NOR22,
                    row,
                    vec![src, r_cell],
                    vec![work_s1, work_s2],
                ))?;
                // p' = THR(p, r, s1, s2) = p XOR r
                array.execute_gate(&GateOp::new(
                    GateKind::THR,
                    row,
                    vec![src, r_cell, work_s1, work_s2],
                    vec![dst],
                ))?;
                parity_in_pong[bit] = !parity_in_pong[bit];
                metadata_gate_ops += 2;
            }

            chunk.push((position, sg.output_cols[0]));
            if chunk.len() == k {
                flush_chunk(
                    array,
                    &mut chunk,
                    &mut parity_in_pong,
                    &mut checker,
                    &mut errors_detected,
                    &mut corrections_written_back,
                    &mut uncorrectable,
                )?;
                reset_parity(array, &mut parity_in_pong)?;
            }
        }
        flush_chunk(
            array,
            &mut chunk,
            &mut parity_in_pong,
            &mut checker,
            &mut errors_detected,
            &mut corrections_written_back,
            &mut uncorrectable,
        )?;

        Ok(ProtectedRunReport {
            outputs: self.read_outputs(netlist, schedule, array, row, inputs)?,
            checks: checker.checks(),
            errors_detected,
            corrections_written_back,
            uncorrectable,
            metadata_gate_ops,
        })
    }

    // ------------------------------------------------------------------
    // TRiM
    // ------------------------------------------------------------------

    fn run_trim(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        let used = Self::used_nets(netlist);
        let mut checker = TrimChecker::new(self.config.data_bits());
        let mut tracker = InputTracker::new(netlist);
        let mut metadata_gate_ops = 0u64;
        let mut corrections_written_back = 0u64;
        let mut errors_detected = 0u64;

        // Outputs of the current level: the three copy columns per gate.
        let mut level_outputs: Vec<[usize; 3]> = Vec::new();
        let mut current_level = schedule.gates.first().map(|g| g.level).unwrap_or(0);

        let flush_level = |array: &mut PimArray,
                           level_outputs: &mut Vec<[usize; 3]>,
                           checker: &mut TrimChecker,
                           errors_detected: &mut u64,
                           corrections_written_back: &mut u64|
         -> Result<(), ProtectedExecError> {
            if level_outputs.is_empty() {
                return Ok(());
            }
            let primary_cols: Vec<usize> = level_outputs.iter().map(|c| c[0]).collect();
            let copy1_cols: Vec<usize> = level_outputs.iter().map(|c| c[1]).collect();
            let copy2_cols: Vec<usize> = level_outputs.iter().map(|c| c[2]).collect();
            let primary = array.read_bits(row, &primary_cols)?;
            let copy1 = array.read_bits(row, &copy1_cols)?;
            let copy2 = array.read_bits(row, &copy2_cols)?;
            let result = checker.check_level(&primary, &copy1, &copy2);
            if result.error_detected {
                *errors_detected += 1;
            }
            // Write the voted value back into every copy that disagreed.
            let voted: BitVec = result.corrected_data;
            for (i, cols) in level_outputs.iter().enumerate() {
                let v = voted.get(i);
                for (copy_idx, &col) in cols.iter().enumerate() {
                    let current = match copy_idx {
                        0 => primary.get(i),
                        1 => copy1.get(i),
                        _ => copy2.get(i),
                    };
                    if current != v {
                        array.write_cell(row, col, v)?;
                        *corrections_written_back += 1;
                    }
                }
            }
            level_outputs.clear();
            Ok(())
        };

        for sg in &schedule.gates {
            let gate = &netlist.gates[sg.index];
            if sg.level != current_level {
                flush_level(
                    array,
                    &mut level_outputs,
                    &mut checker,
                    &mut errors_detected,
                    &mut corrections_written_back,
                )?;
                current_level = sg.level;
            }
            self.materialize_inputs(netlist, sg, array, row, inputs, &mut tracker)?;

            let is_constant = matches!(sg.op, LogicOp::Zero | LogicOp::One);
            if is_constant || !used.contains(&gate.output) {
                self.execute_plain_gate(sg, array, row, &[])?;
                continue;
            }

            match self.config.gate_style {
                GateStyle::MultiOutput => {
                    // One 3-output gate produces the value and both copies.
                    self.execute_plain_gate(sg, array, row, &[])?;
                    metadata_gate_ops += 2;
                }
                GateStyle::SingleOutput => {
                    // Three independent single-output gates, each reading its
                    // own copy of the operands (separate partitions).
                    for copy in 0..3 {
                        let inputs_for_copy = sg.input_cols_per_copy
                            [copy.min(sg.input_cols_per_copy.len() - 1)]
                        .clone();
                        let kind = match sg.op {
                            LogicOp::Nor => GateKind::NOR2,
                            LogicOp::Thr => GateKind::THR,
                            LogicOp::Copy => GateKind::Copy,
                            LogicOp::Zero | LogicOp::One => unreachable!("constants handled above"),
                        };
                        let kind = if sg.op == LogicOp::Nor {
                            GateKind::Nor { outputs: 1 }
                        } else {
                            kind
                        };
                        array.execute_gate(&GateOp::new(
                            kind,
                            row,
                            inputs_for_copy,
                            vec![sg.output_cols[copy]],
                        ))?;
                        if copy > 0 {
                            metadata_gate_ops += 1;
                        }
                    }
                }
            }
            level_outputs.push([sg.output_cols[0], sg.output_cols[1], sg.output_cols[2]]);
        }
        flush_level(
            array,
            &mut level_outputs,
            &mut checker,
            &mut errors_detected,
            &mut corrections_written_back,
        )?;

        Ok(ProtectedRunReport {
            outputs: self.read_outputs(netlist, schedule, array, row, inputs)?,
            checks: checker.checks(),
            errors_detected,
            corrections_written_back,
            uncorrectable: 0,
            metadata_gate_ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvpim_compiler::builder::CircuitBuilder;
    use nvpim_compiler::schedule::map_netlist;
    use nvpim_sim::fault::{ErrorRates, FaultInjector};
    use nvpim_sim::technology::Technology;

    fn to_bits(value: u64, width: usize) -> Vec<bool> {
        (0..width).map(|i| (value >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    fn mac_netlist() -> Netlist {
        let mut b = CircuitBuilder::new();
        let acc = b.input_word(8);
        let x = b.input_word(4);
        let y = b.input_word(4);
        let out = b.mac(&acc, &x, &y);
        b.mark_output_word(&out);
        b.finish()
    }

    fn run_clean(config: DesignConfig) -> (ProtectedRunReport, u64) {
        let netlist = mac_netlist();
        let executor = ProtectedExecutor::new(config.clone());
        let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
        let mut array = PimArray::standard(config.technology);
        let mut inputs = to_bits(100, 8);
        inputs.extend(to_bits(9, 4));
        inputs.extend(to_bits(13, 4));
        let report = executor
            .run(&netlist, &schedule, &mut array, 0, &inputs)
            .unwrap();
        let expected = 100 + 9 * 13;
        (report, expected)
    }

    #[test]
    fn unprotected_execution_is_functionally_correct_without_faults() {
        let (report, expected) = run_clean(DesignConfig::unprotected(Technology::SttMram));
        assert_eq!(from_bits(&report.outputs), expected);
        assert_eq!(report.checks, 0);
        assert_eq!(report.metadata_gate_ops, 0);
    }

    #[test]
    fn ecim_execution_is_functionally_correct_without_faults() {
        let (report, expected) = run_clean(DesignConfig::ecim(Technology::SttMram));
        assert_eq!(from_bits(&report.outputs), expected);
        assert!(report.checks > 0);
        assert_eq!(report.errors_detected, 0);
        assert_eq!(report.corrections_written_back, 0);
        assert!(report.metadata_gate_ops > 0);
    }

    #[test]
    fn ecim_single_output_style_also_correct() {
        let (report, expected) =
            run_clean(DesignConfig::ecim(Technology::ReRam).with_single_output_gates());
        assert_eq!(from_bits(&report.outputs), expected);
        assert_eq!(report.errors_detected, 0);
    }

    #[test]
    fn trim_execution_is_functionally_correct_without_faults() {
        for style in [GateStyle::MultiOutput, GateStyle::SingleOutput] {
            let mut config = DesignConfig::trim(Technology::SotSheMram);
            config.gate_style = style;
            let (report, expected) = run_clean(config);
            assert_eq!(from_bits(&report.outputs), expected, "{style}");
            assert!(report.checks > 0);
            assert_eq!(report.errors_detected, 0);
        }
    }

    #[test]
    fn ecim_corrects_computation_errors_that_corrupt_the_unprotected_run() {
        // A modest gate error rate corrupts unprotected results but ECiM's
        // logic-level checks repair them. We pick a rate low enough that at
        // most one error lands per logic level (the SEP operating regime).
        let netlist = mac_netlist();
        let mut inputs = to_bits(77, 8);
        inputs.extend(to_bits(11, 4));
        inputs.extend(to_bits(7, 4));
        let expected = 77 + 11 * 7;
        // Low enough that (with these fixed seeds) at most one error lands in
        // any logic level — the SEP operating regime.
        let rates = ErrorRates {
            gate: 0.0003,
            ..ErrorRates::NONE
        };

        let mut ecim_failures = 0;
        let mut detections = 0;
        for seed in 0..20u64 {
            let config = DesignConfig::ecim(Technology::SttMram);
            let executor = ProtectedExecutor::new(config.clone());
            let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
            let mut array = PimArray::standard(config.technology)
                .with_fault_injector(FaultInjector::new(rates, seed));
            let report = executor
                .run(&netlist, &schedule, &mut array, 0, &inputs)
                .unwrap();
            detections += report.errors_detected;
            if from_bits(&report.outputs) != expected {
                ecim_failures += 1;
            }
        }
        assert!(detections > 0, "fault injection should trigger detections");
        assert_eq!(
            ecim_failures, 0,
            "ECiM must correct single errors per level"
        );
    }

    #[test]
    fn trim_corrects_computation_errors() {
        let netlist = mac_netlist();
        let mut inputs = to_bits(5, 8);
        inputs.extend(to_bits(15, 4));
        inputs.extend(to_bits(15, 4));
        let expected = 5 + 15 * 15;
        let rates = ErrorRates {
            gate: 0.002,
            ..ErrorRates::NONE
        };
        let mut failures = 0;
        let mut detections = 0;
        for seed in 100..120u64 {
            let config = DesignConfig::trim(Technology::SttMram).with_single_output_gates();
            let executor = ProtectedExecutor::new(config.clone());
            let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
            let mut array = PimArray::standard(config.technology)
                .with_fault_injector(FaultInjector::new(rates, seed));
            let report = executor
                .run(&netlist, &schedule, &mut array, 0, &inputs)
                .unwrap();
            detections += report.errors_detected;
            if from_bits(&report.outputs) != expected {
                failures += 1;
            }
        }
        assert!(detections > 0);
        assert_eq!(failures, 0, "TRiM must correct single errors per level");
    }

    #[test]
    fn unprotected_execution_is_corrupted_by_the_same_error_regime() {
        let netlist = mac_netlist();
        let mut inputs = to_bits(200, 8);
        inputs.extend(to_bits(12, 4));
        inputs.extend(to_bits(3, 4));
        let expected = 200 + 12 * 3;
        let rates = ErrorRates {
            gate: 0.002,
            ..ErrorRates::NONE
        };
        let mut failures = 0;
        for seed in 0..20u64 {
            let config = DesignConfig::unprotected(Technology::SttMram);
            let executor = ProtectedExecutor::new(config.clone());
            let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
            let mut array = PimArray::standard(config.technology)
                .with_fault_injector(FaultInjector::new(rates, seed));
            let report = executor
                .run(&netlist, &schedule, &mut array, 0, &inputs)
                .unwrap();
            if from_bits(&report.outputs) != expected {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "the unprotected baseline should be corrupted at least once over 20 seeds"
        );
    }

    #[test]
    fn layout_mismatch_is_rejected() {
        let netlist = mac_netlist();
        let config = DesignConfig::ecim(Technology::SttMram);
        let executor = ProtectedExecutor::new(config);
        // Schedule compiled for the *unprotected* layout.
        let schedule = map_netlist(
            &netlist,
            DesignConfig::unprotected(Technology::SttMram).row_layout(),
        )
        .unwrap();
        let mut array = PimArray::standard(Technology::SttMram);
        let err = executor.run(&netlist, &schedule, &mut array, 0, &[false; 16]);
        assert_eq!(err, Err(ProtectedExecError::LayoutMismatch));
    }

    #[test]
    fn wrong_input_count_is_rejected() {
        let netlist = mac_netlist();
        let config = DesignConfig::unprotected(Technology::ReRam);
        let executor = ProtectedExecutor::new(config.clone());
        let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
        let mut array = PimArray::standard(Technology::ReRam);
        let err = executor.run(&netlist, &schedule, &mut array, 0, &[true; 2]);
        assert!(matches!(
            err,
            Err(ProtectedExecError::InputArityMismatch {
                expected: 16,
                got: 2
            })
        ));
    }
}
