//! Regenerates Table V: energy overhead of ECiM and TRiM (multi-output and
//! single-output gate designs) relative to the unprotected iso-area
//! baseline, for all three technologies.
//!
//! Pass `--sweep` to additionally run the Monte Carlo fault-injection
//! campaign (protection efficacy alongside the analytic cost table),
//! `--connect HOST:PORT` to run it on a remote `nvpim-serviced`, or
//! `--serve HOST:PORT` to stay up as a campaign daemon afterwards.

use nvpim_bench::{finish_harness, print_table, sweep_benchmark, HarnessOptions};
use nvpim_sim::technology::Technology;
use serde::Serialize;

#[derive(Serialize)]
struct EnergyRow {
    benchmark: String,
    technology: String,
    ecim_multi_output: f64,
    ecim_single_output: f64,
    trim_multi_output: f64,
    trim_single_output: f64,
}

fn main() {
    let opts = HarnessOptions::from_args();
    println!("Table V — energy overhead vs unprotected iso-area baseline (ratio)\n");
    let mut rows = Vec::new();
    for bench in opts.suite() {
        for tech in Technology::ALL {
            let sweep = sweep_benchmark(bench, tech);
            rows.push(EnergyRow {
                benchmark: sweep.benchmark.clone(),
                technology: sweep.technology.clone(),
                ecim_multi_output: sweep.ecim.energy_overhead,
                ecim_single_output: sweep.ecim_single_output_energy,
                trim_multi_output: sweep.trim.energy_overhead,
                trim_single_output: sweep.trim_single_output_energy,
            });
        }
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.technology.clone(),
                format!("{:.2}", r.ecim_multi_output),
                format!("{:.2}", r.ecim_single_output),
                format!("{:.2}", r.trim_multi_output),
                format!("{:.2}", r.trim_single_output),
            ]
        })
        .collect();
    print_table(
        &[
            "benchmark",
            "technology",
            "ECiM m-o",
            "ECiM s-o",
            "TRiM m-o",
            "TRiM s-o",
        ],
        &table,
    );
    finish_harness(&opts, &rows);
}
