//! # nvpim
//!
//! Umbrella crate of the `nvpim` workspace — a from-scratch Rust
//! reproduction of *"On Error Correction for Nonvolatile
//! Processing-In-Memory"* (Cılasun et al., ISCA 2024).
//!
//! The workspace implements the paper's two single-error-protection designs
//! for processing-in-memory architectures that compute inside nonvolatile
//! memory arrays, together with every substrate they need:
//!
//! | Layer | Crate | Re-export |
//! |---|---|---|
//! | ECC substrate (GF(2), Hamming, BCH, voting) | `nvpim-ecc` | [`ecc`] |
//! | PiM array substrate (cells, gates, faults, electrical model) | `nvpim-sim` | [`sim`] |
//! | Application mapping (NOR synthesis, scheduling, reclaims) | `nvpim-compiler` | [`compiler`] |
//! | ECiM / TRiM, Checker, SEP analysis, system model | `nvpim-core` | [`core`] |
//! | Benchmarks (mm, mnist, fft) | `nvpim-workloads` | [`workloads`] |
//! | Monte Carlo fault-sweep campaigns | `nvpim-sweep` | [`sweep`] |
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment index.
//!
//! # Examples
//!
//! ```
//! use nvpim::core::config::DesignConfig;
//! use nvpim::core::system::{compare, evaluate};
//! use nvpim::sim::technology::Technology;
//! use nvpim::workloads::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = Benchmark::MatMul { dim: 8 };
//! let netlist = bench.row_netlist();
//! let shape = bench.shape();
//! let tech = Technology::SttMram;
//!
//! let baseline = evaluate(&netlist, &shape, &DesignConfig::unprotected(tech))?;
//! let ecim = evaluate(&netlist, &shape, &DesignConfig::ecim(tech))?;
//! let overhead = compare(&ecim, &baseline);
//! println!("ECiM time overhead on mm8: {:.1}%", overhead.time_overhead_pct);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use nvpim_compiler as compiler;
pub use nvpim_core as core;
pub use nvpim_ecc as ecc;
pub use nvpim_sim as sim;
pub use nvpim_sweep as sweep;
pub use nvpim_workloads as workloads;
