//! Regenerates Table IV: the number of area reclaims each benchmark incurs
//! under ECiM and TRiM with the iso-area 256-column row budget.

use nvpim_bench::{print_json, print_table, HarnessOptions};
use nvpim_compiler::schedule::map_netlist;
use nvpim_core::config::DesignConfig;
use nvpim_sim::technology::Technology;
use serde::Serialize;

#[derive(Serialize)]
struct ReclaimRow {
    benchmark: String,
    unprotected: usize,
    ecim: usize,
    trim: usize,
}

fn main() {
    let opts = HarnessOptions::from_args();
    println!("Table IV — number of area reclaims (iso-area, Hamming(255,247))\n");
    // Reclaim counts depend only on the layout, not the technology.
    let tech = Technology::SttMram;
    let mut rows = Vec::new();
    for bench in opts.suite() {
        let netlist = bench.row_netlist();
        let reclaims = |config: &DesignConfig| {
            map_netlist(&netlist, config.row_layout())
                .expect("paper workloads fit the 256-column row")
                .reclaim_count()
        };
        rows.push(ReclaimRow {
            benchmark: bench.name(),
            unprotected: reclaims(&DesignConfig::unprotected(tech)),
            ecim: reclaims(&DesignConfig::ecim(tech)),
            trim: reclaims(&DesignConfig::trim(tech)),
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.unprotected.to_string(),
                r.ecim.to_string(),
                r.trim.to_string(),
            ]
        })
        .collect();
    print_table(&["benchmark", "unprotected", "ECiM", "TRiM"], &table);
    if opts.json {
        print_json(&rows);
    }
}
