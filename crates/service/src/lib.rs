//! # nvpim-service
//!
//! A concurrent campaign server over the `nvpim-sweep` Monte Carlo engine:
//! the one-shot `run_campaign` path becomes a long-running daemon that
//! amortizes compilation and caches whole reports across many concurrent
//! campaign submissions.
//!
//! * [`service::ServiceHandle`] — the in-process API: a bounded **priority
//!   job queue** with backpressure, a **worker pool** sharing one
//!   process-wide [`nvpim_sweep::ScheduleCache`], and a
//!   **content-addressed report store** ([`store::ReportStore`]) keyed by
//!   the plan's canonical-JSON SHA-256 — resubmitting an identical plan
//!   returns byte-identical report JSON with zero recompute, and identical
//!   *in-flight* plans coalesce onto one campaign.
//! * [`protocol`] — the newline-delimited JSON wire protocol (`submit`,
//!   `status`, `result`, `cancel`, `stats`, `metrics`, `ping`,
//!   `run_shard`, `shutdown`) with structured errors and streamed
//!   per-chunk progress events.
//! * [`server`] — the TCP front end behind the `nvpim-serviced` binary.
//! * [`client`] — the blocking client used by `nvpim-cli` and the tests.
//! * [`coordinator`] — the fleet layer behind the `nvpim-coordinator`
//!   binary: shards one campaign's trial grid across several daemons,
//!   health-checks them over the protocol, and re-assigns shards away
//!   from dead, stalled, or draining workers without recomputing their
//!   checkpointed chunks. See `docs/robustness.md`.
//!
//! The implementation is std-only (threads + channels/condvars, no async
//! runtime): the build environment is offline and the workspace's external
//! dependencies are local stubs.
//!
//! # Examples
//!
//! ```
//! use nvpim_service::service::{ServiceConfig, ServiceHandle};
//! use nvpim_sweep::SweepPlan;
//!
//! let service = ServiceHandle::start(ServiceConfig::default());
//! let mut plan = SweepPlan::quick();
//! plan.seeds_per_point = 2;
//! let submitted = service.submit(plan.clone(), 5).expect("queue has room");
//! let report = service.wait(submitted.job, None).expect("campaign runs");
//! // An identical resubmission is a content-address hit: same bytes, no work.
//! let again = service.submit(plan, 5).expect("queue has room");
//! assert!(again.cached);
//! assert_eq!(*service.wait(again.job, None).unwrap(), *report);
//! service.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod flags;
pub mod job;
pub mod journal;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod service;
pub mod store;

pub use client::Client;
pub use coordinator::{FleetConfig, FleetError, FleetOutcome, FleetStats, WorkerStats};
pub use job::{CancelOutcome, JobId, JobState};
pub use journal::{Journal, JournalRecord, Replay, ReplayedJob, ReplayedTerminal};
pub use protocol::MAX_LINE_BYTES;
pub use server::{run_server, serve};
pub use service::{
    JobStatus, LatencySummary, ServiceConfig, ServiceHandle, ServiceStats, SubmitOutcome,
};
pub use store::ReportStore;

/// Errors surfaced by the in-process service API (the wire protocol maps
/// each to a structured `{"code", "message"}` error object).
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The bounded job queue is full — backpressure. Carries a hint for
    /// when a slot is likely to free up (derived from observed run
    /// latency and queue depth); the wire error is `overloaded` with a
    /// `retry_after_ms` field clients feed into their backoff loop.
    Overloaded {
        /// Suggested client back-off before resubmitting, in milliseconds.
        retry_after_ms: u64,
    },
    /// The service is shutting down (or draining) and accepts no new work.
    ShuttingDown,
    /// No job with this id.
    UnknownJob(u64),
    /// The submitted plan failed validation or decoding.
    InvalidPlan(nvpim_sweep::SweepError),
    /// A `run_shard` request carried an invalid range or resume prefix.
    BadShard(String),
    /// The job's campaign failed to run (carries the description).
    JobFailed(String),
    /// The job was cancelled.
    JobCancelled,
    /// The job has not finished yet (or a wait timed out).
    NotDone,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { retry_after_ms } => {
                write!(f, "job queue is full — retry in ~{retry_after_ms} ms")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::UnknownJob(id) => write!(f, "no job with id {id}"),
            ServiceError::InvalidPlan(e) => write!(f, "invalid plan: {e}"),
            ServiceError::BadShard(detail) => write!(f, "invalid shard request: {detail}"),
            ServiceError::JobFailed(e) => write!(f, "job failed: {e}"),
            ServiceError::JobCancelled => write!(f, "job was cancelled"),
            ServiceError::NotDone => write!(f, "job has not finished yet"),
        }
    }
}

impl std::error::Error for ServiceError {}
