//! ParityDetect — detection-only even parity with SECDED-style
//! detect-and-retry accounting.
//!
//! The lightest protection regime in the design space between the
//! unprotected baseline and full in-memory ECC: every protected gate output
//! is folded (via the same two-step in-array XOR primitive ECiM uses) into
//! a **single** running parity cell, and at every logic-level boundary an
//! external parity Checker reads the level's outputs plus the parity cell
//! and flags a mismatch. The scheme cannot locate the flipped bit, so
//! nothing is written back; instead each detection is accounted as one
//! would-be *retry* of the level (the `uncorrectable` counter doubles as
//! the retry count — in a deployed detect-and-retry system the level would
//! be re-executed, which costs time, not correctness). Even parity detects
//! every odd-weight error pattern per level — in the paper's
//! single-error-per-level (SEP) operating regime that is *every* error —
//! so ParityDetect converts silent corruptions into detected ones at a
//! fraction of ECiM's metadata footprint (1 running parity bit vs `n − k`).
//!
//! This scheme landed **after** the scheme-as-plugin redesign, through the
//! plugin path only: one file plus one registry line, with zero edits to
//! the executors, the sweep engine, the service protocol or the CLIs. Use
//! it as the template for new schemes.
//!
//! Metadata-region layout (columns `0..5`):
//!
//! ```text
//! 0  ping running-parity cell
//! 1  pong running-parity cell
//! 2  XOR working cell s1
//! 3  XOR working cell s2
//! 4  redundant-copy cell r (the gate's extra output, folded into parity)
//! ```

use nvpim_compiler::netlist::{LogicOp, Netlist};
use nvpim_compiler::schedule::RowSchedule;
use nvpim_sim::array::PimArray;
use nvpim_sim::gates::GateKind;
use nvpim_sim::sliced::SlicedPimArray;

use crate::checker::CheckerCostModel;
use crate::config::{DesignConfig, GateStyle};
use crate::executor::{ExecScratch, ProtectedExecError, ProtectedExecutor, ProtectedRunReport};
use crate::scheme::{CostEnv, SchemeRuntime};
use crate::sliced::{SlicedExecScratch, SlicedExecutor, SlicedRunReport};
use crate::system::{CostBreakdown, CHECKER_EXPOSED_FRACTION};

/// Column indices within the metadata region.
const PING: usize = 0;
const PONG: usize = 1;
const WORK_S1: usize = 2;
const WORK_S2: usize = 3;
const R_CELL: usize = 4;
/// Columns the scheme reserves per row.
const METADATA_COLUMNS: usize = 5;

/// ParityDetect's runtime (registered as `"ParityDetect"`).
#[derive(Debug)]
pub struct ParityDetectScheme;

/// The external detection-only parity Checker: XOR-reduces a level's data
/// bits against the running parity cell. Counts checks and detections;
/// never corrects — each detection is one would-be retry.
#[derive(Debug, Default)]
pub struct ParityDetectChecker {
    checks: u64,
    detections: u64,
}

impl ParityDetectChecker {
    /// A fresh checker with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of level checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of parity mismatches observed (= would-be retries).
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Checks one level: `data_parity` is the XOR-reduction of the level's
    /// read-back data bits, `stored_parity` the running parity cell.
    /// Returns whether a mismatch (an odd-weight error) was detected.
    pub fn check_level(&mut self, data_parity: bool, stored_parity: bool) -> bool {
        self.checks += 1;
        let mismatch = data_parity != stored_parity;
        if mismatch {
            self.detections += 1;
        }
        mismatch
    }

    /// Lane-parallel level check for the sliced backend: `data_words`
    /// holds each data cell's lane word, `parity_word` the running parity
    /// cell's. Returns the mask of valid lanes whose parity mismatched —
    /// per lane, exactly the boolean [`Self::check_level`] returns for
    /// that lane's bits. Counts one check (the Checker block decodes all
    /// lanes in one invocation, mirroring the scalar accounting).
    pub fn check_level_lanes(&mut self, data_words: &[u64], parity_word: u64, valid: u64) -> u64 {
        self.checks += 1;
        let mut acc = parity_word;
        for &word in data_words {
            acc ^= word;
        }
        let mismatch = acc & valid;
        self.detections += u64::from(mismatch.count_ones());
        mismatch
    }
}

impl SchemeRuntime for ParityDetectScheme {
    fn wire_name(&self) -> &'static str {
        "ParityDetect"
    }

    fn display_name(&self) -> &'static str {
        "parity"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["parity-detect", "ParityDetectScheme"]
    }

    fn metadata_columns(&self, _config: &DesignConfig) -> usize {
        METADATA_COLUMNS
    }

    fn sliceable(&self) -> bool {
        true
    }

    fn detect_only(&self) -> bool {
        true
    }

    fn parity_bits(&self, _config: &DesignConfig) -> usize {
        1
    }

    fn checker_cost(&self, config: &DesignConfig) -> CheckerCostModel {
        CheckerCostModel::for_parity(config.data_bits())
    }

    fn metadata_costs(
        &self,
        schedule: &RowSchedule,
        config: &DesignConfig,
        env: &CostEnv,
        b: &mut CostBreakdown,
    ) -> u64 {
        // ECiM's pipeline model with w = 1: one redundant copy per output,
        // one two-step XOR fold into the single running parity cell. The
        // folds form a dependence chain through that one cell (the run
        // paths serialize them in schedule order), so unlike ECiM there is
        // no parity-block parallelism to divide by.
        let parity_parallelism = 1.0;
        let checker_cost = self.checker_cost(config);
        let mut checker_traffic_bits = 0u64;
        let mut meta_ops_total = 0.0f64;
        for level in &schedule.level_profile {
            let outputs = (level.nor_ops + level.thr_ops + level.copy_ops) as f64;
            if outputs == 0.0 {
                continue;
            }
            let (r_ops, xor_steps) = if env.multi_output {
                (0.0f64, 2.0f64)
            } else {
                (1.0, 3.0)
            };
            meta_ops_total += outputs * (r_ops + xor_steps);

            let xor_energy = if env.multi_output {
                2.0 * env.nor_e + env.thr_e
            } else {
                3.0 * env.nor_e + env.thr_e + env.write_e
            };
            let r_gen_energy = if env.multi_output {
                env.nor_e
            } else {
                2.0 * env.nor_e + env.write_e
            };
            b.metadata_energy_fj += outputs * (r_gen_energy + xor_energy);
            // The single running parity cell is reset at every level
            // boundary.
            b.write_energy_fj += env.write_e;

            // Checker communication: level outputs + the parity bit.
            let bits = outputs as usize + 1;
            checker_traffic_bits += bits as u64;
            b.checker_time_ns += CHECKER_EXPOSED_FRACTION * env.periphery.read_latency(bits);
            b.checker_comm_energy_fj += env.periphery.read_energy(bits);
            b.checker_logic_energy_fj += checker_cost.energy_per_check_fj;
        }
        b.metadata_time_ns +=
            ((meta_ops_total / parity_parallelism) * env.t_gate - b.compute_time_ns).max(0.0);
        checker_traffic_bits
    }

    fn run_scalar(
        &self,
        exec: &ProtectedExecutor,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
        scratch: &mut ExecScratch,
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        let config = exec.config();
        assert!(
            config.metadata_columns() >= METADATA_COLUMNS,
            "ParityDetect metadata region too small"
        );
        scratch.parity_in_pong.clear();
        scratch.parity_in_pong.resize(1, false);
        scratch.chunk_cols.clear();

        let mut checker = ParityDetectChecker::new();
        let mut metadata_gate_ops = 0u64;
        let mut errors_detected = 0u64;
        let mut retries = 0u64;

        reset_parity(array, row, scratch)?;
        let mut current_level = schedule.gates.first().map(|g| g.level).unwrap_or(0);

        for sg in &schedule.gates {
            let gate = &netlist.gates[sg.index];
            if sg.level != current_level {
                flush_level(
                    array,
                    row,
                    &mut checker,
                    scratch,
                    &mut errors_detected,
                    &mut retries,
                )?;
                reset_parity(array, row, scratch)?;
                current_level = sg.level;
            }
            exec.materialize_inputs(netlist, sg, array, row, inputs, scratch)?;

            let is_constant = matches!(sg.op, LogicOp::Zero | LogicOp::One);
            if is_constant || !scratch.used_nets[gate.output] {
                exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols)?;
                continue;
            }

            // Produce the redundant copy r (the gate's extra output for
            // multi-output designs, a separate re-execution otherwise) …
            match config.gate_style {
                GateStyle::MultiOutput => {
                    exec.execute_plain_gate(sg, array, row, &[R_CELL], &mut scratch.out_cols)?;
                    metadata_gate_ops += 1;
                }
                GateStyle::SingleOutput => {
                    exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols)?;
                    let kind = match sg.op {
                        LogicOp::Nor => GateKind::NOR2,
                        LogicOp::Thr => GateKind::THR,
                        LogicOp::Copy => GateKind::Copy,
                        LogicOp::Zero | LogicOp::One => unreachable!("constants handled above"),
                    };
                    array.execute_gate_with(kind, row, &sg.input_cols, &[R_CELL])?;
                    metadata_gate_ops += 1;
                }
            }

            // … and fold it into the running parity cell (ping/pong
            // two-step XOR, same primitive and fault sites as ECiM's).
            let (src, dst) = if scratch.parity_in_pong[0] {
                (PONG, PING)
            } else {
                (PING, PONG)
            };
            array.execute_xor2_step(row, src, R_CELL, WORK_S1, WORK_S2, dst)?;
            scratch.parity_in_pong[0] = !scratch.parity_in_pong[0];
            metadata_gate_ops += 2;

            scratch.chunk_cols.push(sg.output_cols[0]);
        }
        flush_level(
            array,
            row,
            &mut checker,
            scratch,
            &mut errors_detected,
            &mut retries,
        )?;

        Ok(ProtectedRunReport {
            outputs: exec.read_outputs(netlist, schedule, array, row, inputs)?,
            checks: checker.checks(),
            errors_detected,
            corrections_written_back: 0,
            // Detection-only: every detection is a would-be retry, surfaced
            // through the uncorrectable counter so failures are never
            // silent.
            uncorrectable: retries,
            metadata_gate_ops,
        })
    }

    fn run_sliced(
        &self,
        exec: &SlicedExecutor,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut SlicedPimArray,
        row: usize,
        inputs: &[u64],
        scratch: &mut SlicedExecScratch,
    ) -> Result<SlicedRunReport, ProtectedExecError> {
        let config = exec.config();
        assert!(
            config.metadata_columns() >= METADATA_COLUMNS,
            "ParityDetect metadata region too small"
        );
        scratch.parity_in_pong.clear();
        scratch.parity_in_pong.resize(1, false);
        scratch.chunk_cols.clear();

        let mut checker = ParityDetectChecker::new();
        let mut report = SlicedRunReport::new();

        array.preset_range(row, PING..PONG + 1, false);
        scratch.parity_in_pong[0] = false;
        let mut current_level = schedule.gates.first().map(|g| g.level).unwrap_or(0);

        for sg in &schedule.gates {
            let gate = &netlist.gates[sg.index];
            if sg.level != current_level {
                sliced_flush_level(array, row, &mut checker, scratch, &mut report);
                array.preset_range(row, PING..PONG + 1, false);
                scratch.parity_in_pong[0] = false;
                current_level = sg.level;
            }
            exec.materialize_inputs(netlist, sg, array, row, inputs, scratch);

            let is_constant = matches!(sg.op, LogicOp::Zero | LogicOp::One);
            if is_constant || !scratch.used_nets[gate.output] {
                exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols);
                continue;
            }

            match config.gate_style {
                GateStyle::MultiOutput => {
                    exec.execute_plain_gate(sg, array, row, &[R_CELL], &mut scratch.out_cols);
                    report.metadata_gate_ops += 1;
                }
                GateStyle::SingleOutput => {
                    exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols);
                    match sg.op {
                        LogicOp::Nor => array.gate_nor(row, &sg.input_cols, &[R_CELL]),
                        LogicOp::Thr => array.gate_thr(row, &sg.input_cols, R_CELL),
                        LogicOp::Copy => array.gate_copy(row, sg.input_cols[0], R_CELL),
                        LogicOp::Zero | LogicOp::One => unreachable!("constants handled above"),
                    }
                    report.metadata_gate_ops += 1;
                }
            }

            let (src, dst) = if scratch.parity_in_pong[0] {
                (PONG, PING)
            } else {
                (PING, PONG)
            };
            array.gate_xor2(row, src, R_CELL, WORK_S1, WORK_S2, dst);
            scratch.parity_in_pong[0] = !scratch.parity_in_pong[0];
            report.metadata_gate_ops += 2;

            scratch.chunk_cols.push(sg.output_cols[0]);
        }
        sliced_flush_level(array, row, &mut checker, scratch, &mut report);

        exec.read_outputs(netlist, schedule, array, row, inputs, scratch);
        report.checks = checker.checks();
        Ok(report)
    }
}

fn reset_parity(
    array: &mut PimArray,
    row: usize,
    scratch: &mut ExecScratch,
) -> Result<(), ProtectedExecError> {
    array.preset_cells(row, PING..PONG + 1, false)?;
    scratch.parity_in_pong[0] = false;
    Ok(())
}

fn flush_level(
    array: &mut PimArray,
    row: usize,
    checker: &mut ParityDetectChecker,
    scratch: &mut ExecScratch,
    errors_detected: &mut u64,
    retries: &mut u64,
) -> Result<(), ProtectedExecError> {
    if scratch.chunk_cols.is_empty() {
        return Ok(());
    }
    // Conventional memory read of the level outputs and the parity cell.
    let parity_col = if scratch.parity_in_pong[0] {
        PONG
    } else {
        PING
    };
    scratch.cols_b.clear();
    scratch.cols_b.push(parity_col);
    array.read_bits_into(row, &scratch.chunk_cols, &mut scratch.bits_a)?;
    array.read_bits_into(row, &scratch.cols_b, &mut scratch.bits_b)?;
    let data_parity = scratch.bits_a.iter_ones().count() % 2 == 1;
    if checker.check_level(data_parity, scratch.bits_b.get(0)) {
        *errors_detected += 1;
        *retries += 1;
    }
    scratch.chunk_cols.clear();
    Ok(())
}

fn sliced_flush_level(
    array: &mut SlicedPimArray,
    row: usize,
    checker: &mut ParityDetectChecker,
    scratch: &mut SlicedExecScratch,
    report: &mut SlicedRunReport,
) {
    if scratch.chunk_cols.is_empty() {
        return;
    }
    let SlicedExecScratch {
        chunk_cols,
        parity_in_pong,
        data_words,
        ..
    } = scratch;
    data_words.clear();
    data_words.extend(chunk_cols.iter().map(|&c| array.cell(row, c)));
    let parity_col = if parity_in_pong[0] { PONG } else { PING };
    let parity_word = array.cell(row, parity_col);
    let valid = array.injector().valid_mask();
    let mut mismatch = checker.check_level_lanes(data_words, parity_word, valid);
    while mismatch != 0 {
        let lane = mismatch.trailing_zeros() as usize;
        mismatch &= mismatch - 1;
        report.errors_detected[lane] += 1;
        report.uncorrectable[lane] += 1;
    }
    chunk_cols.clear();
}
