//! Fault models and fault injection (§II-C of the paper).
//!
//! The paper's error model targets *direct* soft errors: faults induced by
//! intended operations — an in-array gate whose output fails to switch (or
//! switches spuriously), a faulty write, or a bit flip in a stored cell.
//! Regardless of physical origin (thermal noise, retention failure, TMR-ratio
//! variation, oxygen-vacancy diffusion, …), these manifest as single bit
//! flips, uniformly distributed across the array during row-parallel
//! computation. Optional spatial and temporal correlation knobs model the
//! correlated-error discussion of §IV-E.

use rand::Rng;
use rand::RngCore;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The kind of operation a fault can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// Output of an in-array Boolean gate operation (a *logic* error).
    GateOutput,
    /// A cell being written through the normal write path.
    Write,
    /// A cell being read (sensing error).
    Read,
    /// A cell at rest (retention / storage error).
    Retention,
}

/// Per-operation bit-flip probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorRates {
    /// Probability that a gate operation produces a flipped output bit.
    pub gate: f64,
    /// Probability that a write stores the flipped value.
    pub write: f64,
    /// Probability that a read senses the flipped value.
    pub read: f64,
    /// Probability (per cell, per check interval) of a retention flip.
    pub retention: f64,
}

impl ErrorRates {
    /// No faults at all (functional-validation mode).
    pub const NONE: ErrorRates = ErrorRates {
        gate: 0.0,
        write: 0.0,
        read: 0.0,
        retention: 0.0,
    };

    /// A uniform single-error regime: the same probability everywhere.
    pub fn uniform(p: f64) -> Self {
        Self {
            gate: p,
            write: p,
            read: p,
            retention: p,
        }
    }

    /// Rate for a given fault site.
    pub fn for_site(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::GateOutput => self.gate,
            FaultSite::Write => self.write,
            FaultSite::Read => self.read,
            FaultSite::Retention => self.retention,
        }
    }
}

impl Default for ErrorRates {
    fn default() -> Self {
        ErrorRates::NONE
    }
}

/// Correlation model for injected errors (§IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CorrelationModel {
    /// When a fault fires, also flip up to this many *spatially adjacent*
    /// outputs in the same row (0 = independent errors).
    pub spatial_burst: usize,
    /// When a fault fires, multiply the fault probability of the next
    /// `temporal_window` operations in the same row by `temporal_factor`
    /// (models back-to-back errors).
    pub temporal_window: usize,
    /// Multiplier applied during a temporal burst window.
    pub temporal_factor: f64,
}

/// A single injected fault, for logging and analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// Where the fault struck.
    pub site: FaultSite,
    /// Array row.
    pub row: usize,
    /// Array column.
    pub col: usize,
    /// Simulation step at which it was injected.
    pub step: u64,
}

/// How the injector turns per-operation fault probabilities into decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultSampling {
    /// Geometric skip-ahead sampling (the default): one RNG draw per
    /// *injected fault* picks the index of the next faulting operation, and
    /// the operations in between only decrement a counter. At paper-regime
    /// rates (~1e-4) this removes ~99.99% of the RNG work while producing
    /// exactly the same Bernoulli(p) marginal per operation.
    #[default]
    SkipAhead,
    /// One Bernoulli draw per operation — the pre-optimization behavior,
    /// kept as a reference for statistical-equivalence tests and as the
    /// baseline mode of the `trial_throughput` benchmark.
    PerOp,
}

/// Pending skip-ahead state for one fault site: `remaining` clean
/// operations will pass (at probability `p` each) before the next fault.
#[derive(Debug, Clone, Copy)]
struct PendingSkip {
    p: f64,
    remaining: u64,
}

/// A deterministic, seedable fault injector.
///
/// The injector is consulted by the array on every gate output, write and
/// read; it decides whether the produced bit is flipped, and keeps a log of
/// every injected fault so tests and experiments can verify coverage claims.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rates: ErrorRates,
    correlation: CorrelationModel,
    rng: ChaCha8Rng,
    step: u64,
    temporal_boost_remaining: usize,
    log: Vec<InjectedFault>,
    sampling: FaultSampling,
    /// Skip-ahead state per [`FaultSite`] (indexed by `site_index`).
    skips: [Option<PendingSkip>; 4],
}

impl FaultInjector {
    /// Creates an injector with the given rates and a fixed seed.
    pub fn new(rates: ErrorRates, seed: u64) -> Self {
        Self {
            rates,
            correlation: CorrelationModel::default(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            step: 0,
            temporal_boost_remaining: 0,
            log: Vec::new(),
            sampling: FaultSampling::default(),
            skips: [None; 4],
        }
    }

    /// Creates an injector that never injects faults.
    pub fn disabled() -> Self {
        Self::new(ErrorRates::NONE, 0)
    }

    /// Sets the correlation model.
    pub fn with_correlation(mut self, correlation: CorrelationModel) -> Self {
        self.correlation = correlation;
        self
    }

    /// Switches to per-operation Bernoulli sampling (the reference mode).
    pub fn with_per_op_sampling(mut self) -> Self {
        self.sampling = FaultSampling::PerOp;
        self
    }

    /// The sampling strategy in use.
    pub fn sampling(&self) -> FaultSampling {
        self.sampling
    }

    /// Re-seeds the injector in place for a fresh trial: new rates, a fresh
    /// RNG stream, cleared log (keeping its allocation), step 0, and no
    /// pending skip state. Equivalent to `FaultInjector::new(rates, seed)`
    /// with the same sampling mode and correlation model.
    pub fn reset(&mut self, rates: ErrorRates, seed: u64) {
        self.rates = rates;
        self.rng = ChaCha8Rng::seed_from_u64(seed);
        self.step = 0;
        self.temporal_boost_remaining = 0;
        self.log.clear();
        self.skips = [None; 4];
    }

    /// The configured error rates.
    pub fn rates(&self) -> &ErrorRates {
        &self.rates
    }

    /// Advances the logical time step (one per array-level operation batch).
    pub fn advance_step(&mut self) {
        self.step += 1;
        self.temporal_boost_remaining = self.temporal_boost_remaining.saturating_sub(1);
    }

    /// Current logical step.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Decides whether a bit produced at (`row`, `col`) by `site` is flipped,
    /// returning the possibly-corrupted value.
    pub fn apply(&mut self, site: FaultSite, row: usize, col: usize, value: bool) -> bool {
        let mut p = self.rates.for_site(site);
        if self.temporal_boost_remaining > 0 {
            p = (p * self.correlation.temporal_factor).min(1.0);
        }
        let faulted = match self.sampling {
            FaultSampling::PerOp => p > 0.0 && self.rng.gen_bool(p),
            FaultSampling::SkipAhead => self.skip_decide(Self::site_index(site), p),
        };
        if faulted {
            self.log.push(InjectedFault {
                site,
                row,
                col,
                step: self.step,
            });
            if self.correlation.temporal_window > 0 {
                self.temporal_boost_remaining = self.correlation.temporal_window;
            }
            !value
        } else {
            value
        }
    }

    #[inline]
    fn site_index(site: FaultSite) -> usize {
        match site {
            FaultSite::GateOutput => 0,
            FaultSite::Write => 1,
            FaultSite::Read => 2,
            FaultSite::Retention => 3,
        }
    }

    /// Skip-ahead decision for one operation at probability `p`.
    ///
    /// The pending counter for a site is valid only for the probability it
    /// was sampled under; when `p` changes (e.g. a temporal-correlation
    /// boost window opens or closes) the counter is re-sampled. Operations
    /// at `p == 0` pass through without consuming skip state — geometric
    /// inter-arrival times are memoryless, so pausing and resuming a
    /// counter preserves the Bernoulli(p) marginal exactly.
    #[inline]
    fn skip_decide(&mut self, site_idx: usize, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            self.skips[site_idx] = None;
            return true;
        }
        let needs_sample = !matches!(self.skips[site_idx], Some(s) if s.p == p);
        if needs_sample {
            let remaining = Self::sample_geometric(&mut self.rng, p);
            self.skips[site_idx] = Some(PendingSkip { p, remaining });
        }
        let pending = self.skips[site_idx]
            .as_mut()
            .expect("skip state just ensured");
        if pending.remaining == 0 {
            pending.remaining = Self::sample_geometric(&mut self.rng, p);
            true
        } else {
            pending.remaining -= 1;
            false
        }
    }

    /// Number of clean operations before the next fault: a geometric sample
    /// `floor(ln(1 − u) / ln(1 − p))` with `u` uniform in `[0, 1)`, which
    /// makes each operation fault with exactly probability `p`.
    ///
    /// `pub(crate)` so the lane-parallel injector
    /// ([`crate::sliced::SlicedFaultInjector`]) draws the *identical*
    /// skip distribution from each lane's RNG stream.
    #[inline]
    pub(crate) fn sample_geometric(rng: &mut ChaCha8Rng, p: f64) -> u64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let skip = (1.0 - u).ln() / (-p).ln_1p();
        if skip >= u64::MAX as f64 {
            u64::MAX
        } else {
            skip as u64
        }
    }

    /// Forces a fault at the given location (used by directed tests and the
    /// SEP-guarantee analysis, which enumerates error sites exhaustively).
    pub fn force(&mut self, site: FaultSite, row: usize, col: usize) {
        self.log.push(InjectedFault {
            site,
            row,
            col,
            step: self.step,
        });
    }

    /// Log of all injected faults so far.
    pub fn log(&self) -> &[InjectedFault] {
        &self.log
    }

    /// Number of injected faults.
    pub fn fault_count(&self) -> usize {
        self.log.len()
    }

    /// Clears the fault log (keeps rates, correlation and RNG state).
    pub fn clear_log(&mut self) {
        self.log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_flips() {
        let mut inj = FaultInjector::disabled();
        for i in 0..1000 {
            assert!(inj.apply(FaultSite::GateOutput, 0, i, true));
            assert!(!inj.apply(FaultSite::Write, 0, i, false));
        }
        assert_eq!(inj.fault_count(), 0);
    }

    #[test]
    fn always_faulty_injector_always_flips() {
        let mut inj = FaultInjector::new(ErrorRates::uniform(1.0), 1);
        assert!(!inj.apply(FaultSite::GateOutput, 0, 0, true));
        assert!(inj.apply(FaultSite::Write, 1, 2, false));
        assert_eq!(inj.fault_count(), 2);
        assert_eq!(inj.log()[0].site, FaultSite::GateOutput);
        assert_eq!(inj.log()[1].row, 1);
    }

    #[test]
    fn fault_rate_is_approximately_respected() {
        let mut inj = FaultInjector::new(
            ErrorRates {
                gate: 0.1,
                write: 0.0,
                read: 0.0,
                retention: 0.0,
            },
            42,
        );
        let n = 20_000;
        for i in 0..n {
            inj.apply(FaultSite::GateOutput, 0, i, false);
        }
        let rate = inj.fault_count() as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "observed rate {rate}");
        // Write path should have zero faults.
        inj.clear_log();
        for i in 0..n {
            inj.apply(FaultSite::Write, 0, i, false);
        }
        assert_eq!(inj.fault_count(), 0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(ErrorRates::uniform(0.05), seed);
            (0..500)
                .map(|i| inj.apply(FaultSite::GateOutput, 0, i, false))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn same_seed_yields_the_identical_fault_sequence() {
        // Not just the same flip decisions: the logged fault sequence
        // (site, row, col, step) must be identical event for event, across
        // a mixed-site operation stream.
        let run = |seed| {
            let mut inj = FaultInjector::new(ErrorRates::uniform(0.02), seed);
            for i in 0..2_000usize {
                let site = match i % 4 {
                    0 => FaultSite::GateOutput,
                    1 => FaultSite::Write,
                    2 => FaultSite::Read,
                    _ => FaultSite::Retention,
                };
                inj.apply(site, i % 7, i % 253, i % 2 == 0);
                if i % 5 == 0 {
                    inj.advance_step();
                }
            }
            inj.log().to_vec()
        };
        let first = run(99);
        assert!(!first.is_empty(), "this regime must inject faults");
        assert_eq!(first, run(99), "same seed => identical fault log");
        assert_ne!(first, run(100), "different seed => different log");
    }

    #[test]
    fn temporal_correlation_boosts_following_operations() {
        let correlated = CorrelationModel {
            spatial_burst: 0,
            temporal_window: 50,
            temporal_factor: 20.0,
        };
        let count_faults = |corr: Option<CorrelationModel>| {
            let mut inj = FaultInjector::new(ErrorRates::uniform(0.01), 3);
            if let Some(c) = corr {
                inj = inj.with_correlation(c);
            }
            for i in 0..5_000 {
                inj.apply(FaultSite::GateOutput, 0, i, false);
                inj.advance_step();
            }
            inj.fault_count()
        };
        let base = count_faults(None);
        let boosted = count_faults(Some(correlated));
        assert!(
            boosted > base * 2,
            "temporal correlation should raise the fault count ({base} vs {boosted})"
        );
    }

    #[test]
    fn forced_faults_are_logged() {
        let mut inj = FaultInjector::disabled();
        inj.force(FaultSite::Retention, 3, 200);
        assert_eq!(inj.fault_count(), 1);
        assert_eq!(inj.log()[0].col, 200);
    }

    #[test]
    fn skip_sampling_matches_bernoulli_rate_within_confidence_interval() {
        // The geometric skip sampler must reproduce the Bernoulli(p)
        // marginal: over n ops the empirical rate of both modes must sit
        // within a 4σ binomial confidence interval of p, for rates spanning
        // the paper regime.
        for p in [1e-2, 1e-3] {
            let n: usize = 2_000_000;
            let sigma = (p * (1.0 - p) / n as f64).sqrt();
            let tolerance = 4.0 * sigma;

            let count_mode = |per_op: bool| {
                let rates = ErrorRates {
                    gate: p,
                    ..ErrorRates::NONE
                };
                let mut inj = FaultInjector::new(rates, 0xFA57);
                if per_op {
                    inj = inj.with_per_op_sampling();
                }
                for i in 0..n {
                    inj.apply(FaultSite::GateOutput, 0, i % 251, false);
                }
                inj.fault_count() as f64 / n as f64
            };

            let skip_rate = count_mode(false);
            let bernoulli_rate = count_mode(true);
            assert!(
                (skip_rate - p).abs() < tolerance,
                "skip-ahead rate {skip_rate} vs p={p} (±{tolerance})"
            );
            assert!(
                (bernoulli_rate - p).abs() < tolerance,
                "per-op rate {bernoulli_rate} vs p={p} (±{tolerance})"
            );
        }
    }

    #[test]
    fn skip_sampling_is_deterministic_and_resets_cleanly() {
        let rates = ErrorRates {
            gate: 0.01,
            ..ErrorRates::NONE
        };
        let run = |inj: &mut FaultInjector| {
            (0..5_000)
                .map(|i| inj.apply(FaultSite::GateOutput, 0, i % 61, false))
                .collect::<Vec<_>>()
        };
        let mut fresh = FaultInjector::new(rates, 77);
        let baseline = run(&mut fresh);
        // Reset-in-place must reproduce the fresh stream exactly.
        fresh.reset(rates, 77);
        assert_eq!(run(&mut fresh), baseline);
        // A once-used injector reset to a different seed diverges.
        fresh.reset(rates, 78);
        assert_ne!(run(&mut fresh), baseline);
    }

    #[test]
    fn skip_state_survives_interleaved_zero_rate_sites() {
        // Ops at p == 0 (e.g. writes in a gate-only regime) must not consume
        // or invalidate the gate site's pending skip counter.
        let rates = ErrorRates {
            gate: 0.02,
            ..ErrorRates::NONE
        };
        let gates_only = {
            let mut inj = FaultInjector::new(rates, 5);
            (0..4_000)
                .map(|i| inj.apply(FaultSite::GateOutput, 0, i % 17, false))
                .collect::<Vec<_>>()
        };
        let interleaved = {
            let mut inj = FaultInjector::new(rates, 5);
            (0..4_000)
                .map(|i| {
                    inj.apply(FaultSite::Write, 0, i % 17, true);
                    inj.apply(FaultSite::GateOutput, 0, i % 17, false)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(gates_only, interleaved);
    }
}
