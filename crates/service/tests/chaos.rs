//! Chaos suite: crash/recovery drills for the durable campaign service.
//!
//! Six failure families, per the robustness tentpole:
//!
//! 1. **Checkpoint/resume byte-identity** — a crafted journal (exactly what
//!    a daemon killed at a chunk boundary leaves behind) is replayed for
//!    every backend × estimator combination; the resumed report must be
//!    byte-identical to an uninterrupted run.
//! 2. **Panic isolation** — a test-only panicking [`ExecutionBackend`]
//!    injected through the `ServiceConfig::execution_backend` seam poisons
//!    only its own job; retries resume from the last checkpoint and the
//!    worker pool keeps serving healthy jobs.
//! 3. **Journal/store corruption** — empty journals, torn tails, duplicate
//!    terminal transitions and store files whose contents no longer match
//!    their digest all degrade to recomputation, never to wrong bytes.
//! 4. **SIGKILL + restart** — the real `nvpim-serviced` binary is killed
//!    mid-campaign and restarted over the same `--state-dir`; the recovered
//!    report must match a clean baseline and no job may be orphaned.
//! 5. **Fleet chaos** — three real daemons serve one sharded campaign
//!    through the coordinator while one is SIGKILLed and another SIGSTOPped
//!    mid-run; losing workers must shrink throughput, never correctness:
//!    the merged report stays byte-identical to a single-node run for every
//!    backend × estimator combination, with the re-assignments recorded.
//! 6. **Restart coalescing** — clients racing duplicate submissions against
//!    a daemon restart coalesce onto the one recovered campaign instead of
//!    forking duplicate executions.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use nvpim_service::client::{request, Client};
use nvpim_service::coordinator::{run_fleet, FleetConfig};
use nvpim_service::journal::JOURNAL_FILE;
use nvpim_service::service::{ServiceConfig, ServiceHandle};
use nvpim_service::{Journal, JournalRecord, ServiceError};
use nvpim_sweep::{
    execution_backend, prepare_campaign, run_campaign_with_backend, CampaignControl, EstimatorMode,
    ExecutionBackend, PointContext, ScheduleCache, SimBackend, SweepPlan, SweepWorkload,
    TaskOutcomes, TrialArena, TrialOutcome,
};
use nvpim_telemetry::{Counter, Telemetry};
use serde::Value;

/// Fresh scratch state directory for one test.
fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nvpim-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create state dir");
    dir
}

/// Report bytes stored on disk for `digest` (the body after the integrity
/// header line) — the ground truth the byte-identity assertions compare.
fn store_body(dir: &Path, digest: &str) -> String {
    let path = dir.join("reports").join(format!("{digest}.json"));
    let raw = std::fs::read_to_string(&path).expect("stored report exists");
    let (_header, body) = raw.split_once('\n').expect("store file has a header");
    body.to_string()
}

/// A small multi-chunk plan: 9 points × 2 seeds = 18 trials.
fn tiny_plan(seed: u64) -> SweepPlan {
    let mut plan = SweepPlan::quick();
    plan.seeds_per_point = 2;
    plan.campaign_seed = seed;
    plan
}

fn submit_record(plan: &SweepPlan, job: u64) -> JournalRecord {
    JournalRecord::Submit {
        job,
        digest: plan.content_digest(),
        priority: 0,
        trials_total: 18,
        plan_json: plan.canonical_json(),
    }
}

/// Tentpole assertion 1: for both backends and both estimator modes, a
/// campaign resumed from a crafted mid-flight journal produces report bytes
/// identical to an uninterrupted run, recomputing only the unfinished
/// trials.
#[test]
fn resume_from_checkpoint_is_byte_identical_across_backends_and_estimators() {
    for (i, backend) in [SimBackend::Scalar, SimBackend::Sliced]
        .into_iter()
        .enumerate()
    {
        for (j, estimator) in [EstimatorMode::Exact, EstimatorMode::Stratified]
            .into_iter()
            .enumerate()
        {
            let mut plan = tiny_plan(0xc4a0_5000 + (i * 2 + j) as u64);
            plan.estimator = estimator;
            let clean = run_campaign_with_backend(&plan, backend)
                .expect("clean run")
                .to_json();

            // Capture the first two chunks (4 trials each) the way a real
            // worker would have journaled them before dying.
            let mut cache = ScheduleCache::new();
            let prepared = prepare_campaign(&plan, &mut cache).expect("prepare");
            let mut captured: Vec<TrialOutcome> = Vec::new();
            let mut chunks = 0usize;
            let _ = prepared.run_chunked_resumable(
                execution_backend(backend),
                4,
                Vec::new(),
                |checkpoint| {
                    if chunks < 2 {
                        captured.extend_from_slice(checkpoint.new_outcomes);
                        chunks += 1;
                        CampaignControl::Continue
                    } else {
                        CampaignControl::Cancel
                    }
                },
            );
            assert_eq!(captured.len(), 8, "two four-trial chunks captured");

            let dir = state_dir(&format!("resume-{i}-{j}"));
            {
                let mut journal =
                    Journal::open(dir.join(JOURNAL_FILE), 1).expect("open crafted journal");
                journal.append(&submit_record(&plan, 1)).expect("submit");
                journal
                    .append(&JournalRecord::Start { job: 1 })
                    .expect("start");
                journal
                    .append(&JournalRecord::Chunk {
                        job: 1,
                        trials_done: 4,
                        outcomes: captured[..4].to_vec(),
                    })
                    .expect("chunk 1");
                journal
                    .append(&JournalRecord::Chunk {
                        job: 1,
                        trials_done: 8,
                        outcomes: captured[4..].to_vec(),
                    })
                    .expect("chunk 2");
            }

            let service = ServiceHandle::start(ServiceConfig {
                workers: 1,
                chunk_trials: 4,
                backend,
                state_dir: Some(dir.clone()),
                ..ServiceConfig::default()
            });
            let report = service
                .wait(1, Some(Duration::from_secs(120)))
                .expect("recovered job runs to completion");
            assert_eq!(
                report.as_str(),
                clean,
                "resumed report must be byte-identical ({backend:?}, {estimator:?})"
            );

            let stats = service.stats();
            assert_eq!(stats.recovered_jobs, 1);
            assert_eq!(stats.resumed_chunks, 2);
            assert_eq!(stats.journal_records_replayed, 4);
            assert_eq!(
                stats.trials_executed, 10,
                "only the 10 unfinished trials recompute; 8 resume from the journal"
            );
            assert_eq!(store_body(&dir, &plan.content_digest()), clean);
            service.shutdown();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Accuracy campaigns are as crash-safe as error campaigns: a job resumed
/// from a mid-flight journal reproduces the uninterrupted report byte for
/// byte (stuck-at defect maps and inference predictions included), its
/// cumulative accuracy tally is re-seeded from the checkpointed prefix,
/// and the service's accuracy counters track only newly executed trials.
#[test]
fn accuracy_job_resumes_from_checkpoint_byte_identically() {
    let mut plan = SweepPlan::accuracy_quick();
    plan.seeds_per_point = 4;
    plan.campaign_seed = 0xACC_0C4A;
    let clean = run_campaign_with_backend(&plan, SimBackend::Sliced)
        .expect("clean run")
        .to_json();
    assert!(clean.contains("\"schema_version\": 3"));

    // Capture the first two chunks the way a worker killed at the third
    // chunk boundary would have journaled them.
    let mut cache = ScheduleCache::new();
    let prepared = prepare_campaign(&plan, &mut cache).expect("prepare");
    let mut captured: Vec<TrialOutcome> = Vec::new();
    let mut chunks = 0usize;
    let _ = prepared.run_chunked_resumable(
        execution_backend(SimBackend::Sliced),
        4,
        Vec::new(),
        |checkpoint| {
            if chunks < 2 {
                captured.extend_from_slice(checkpoint.new_outcomes);
                chunks += 1;
                CampaignControl::Continue
            } else {
                CampaignControl::Cancel
            }
        },
    );
    assert_eq!(captured.len(), 8, "two four-trial chunks captured");
    assert!(
        captured.iter().all(|o| o.correct.is_some()),
        "accuracy outcomes carry predictions"
    );

    let dir = state_dir("accuracy-resume");
    {
        let mut journal = Journal::open(dir.join(JOURNAL_FILE), 1).expect("open crafted journal");
        journal
            .append(&JournalRecord::Submit {
                job: 1,
                digest: plan.content_digest(),
                priority: 0,
                trials_total: plan.trial_count(),
                plan_json: plan.canonical_json(),
            })
            .expect("submit");
        journal
            .append(&JournalRecord::Start { job: 1 })
            .expect("start");
        journal
            .append(&JournalRecord::Chunk {
                job: 1,
                trials_done: 4,
                outcomes: captured[..4].to_vec(),
            })
            .expect("chunk 1");
        journal
            .append(&JournalRecord::Chunk {
                job: 1,
                trials_done: 8,
                outcomes: captured[4..].to_vec(),
            })
            .expect("chunk 2");
    }

    let service = ServiceHandle::start(ServiceConfig {
        workers: 1,
        chunk_trials: 4,
        backend: SimBackend::Sliced,
        state_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let report = service
        .wait(1, Some(Duration::from_secs(300)))
        .expect("recovered accuracy job runs to completion");
    assert_eq!(
        report.as_str(),
        clean,
        "resumed accuracy report must be byte-identical"
    );

    let total = plan.trial_count();
    let stats = service.stats();
    assert_eq!(stats.recovered_jobs, 1);
    assert_eq!(stats.resumed_chunks, 2);
    assert_eq!(stats.trials_executed, total - 8);
    assert_eq!(
        stats.accuracy_trials_evaluated,
        total - 8,
        "resumed outcomes must not be re-counted as executed work"
    );
    assert!(stats.accuracy_trials_correct <= stats.accuracy_trials_evaluated);
    // The job's own streamed tally is cumulative across the restart:
    // checkpointed prefix plus newly executed trials.
    let core = service.job(1).expect("job tracked");
    let (correct, evaluated) = core.accuracy_progress().expect("accuracy progress present");
    assert_eq!(evaluated, total);
    let resumed_correct = captured.iter().filter(|o| o.correct == Some(true)).count() as u64;
    assert_eq!(correct, stats.accuracy_trials_correct + resumed_correct);
    // Accuracy demand is counted at acceptance, so journal recovery (which
    // bypasses submit) contributes nothing — but a resubmission of the same
    // plan, served byte-identically from the store, does.
    assert_eq!(stats.accuracy_jobs, 0);
    let resubmit = service.submit(plan.clone(), 0).expect("resubmit");
    assert!(resubmit.cached, "report store serves the recovered bytes");
    assert_eq!(service.stats().accuracy_jobs, 1);
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A chaos-only backend: behaves exactly like the sliced backend, except
/// that campaigns whose seed matches `poison_seed` panic on the
/// `panics_after`-th (and, if `once` is false, every later) task.
#[derive(Debug)]
struct PanicAfterN {
    poison_seed: u64,
    panics_after: usize,
    once: bool,
    calls: AtomicUsize,
}

impl PanicAfterN {
    fn leaked(poison_seed: u64, panics_after: usize, once: bool) -> &'static Self {
        Box::leak(Box::new(Self {
            poison_seed,
            panics_after,
            once,
            calls: AtomicUsize::new(0),
        }))
    }
}

impl ExecutionBackend for PanicAfterN {
    fn name(&self) -> &'static str {
        "chaos-panic"
    }

    fn task_width(&self, point: &PointContext) -> usize {
        execution_backend(SimBackend::Sliced).task_width(point)
    }

    fn run_task(
        &self,
        point: &PointContext,
        campaign_seed: u64,
        point_index: u64,
        first_trial: u64,
        count: usize,
        arena: &mut TrialArena,
    ) -> TaskOutcomes {
        if campaign_seed == self.poison_seed {
            let call = self.calls.fetch_add(1, Ordering::Relaxed);
            let hit = if self.once {
                call == self.panics_after
            } else {
                call >= self.panics_after
            };
            if hit {
                panic!("injected chaos panic (task call {call})");
            }
        }
        execution_backend(SimBackend::Sliced).run_task(
            point,
            campaign_seed,
            point_index,
            first_trial,
            count,
            arena,
        )
    }
}

/// Tentpole assertion 2a: a single injected panic is contained, the job is
/// retried from its last checkpoint, and the final report is byte-identical
/// to a clean run — the panic costs one retry, not correctness.
#[test]
fn injected_panic_retries_from_checkpoint_and_stays_byte_identical() {
    const POISON: u64 = 0xdead_0001;
    let plan = tiny_plan(POISON);
    let clean = run_campaign_with_backend(&plan, SimBackend::Sliced)
        .expect("clean run")
        .to_json();
    let service = ServiceHandle::start(ServiceConfig {
        workers: 1,
        chunk_trials: 4,
        max_job_retries: 2,
        retry_backoff_ms: 1,
        execution_backend: Some(PanicAfterN::leaked(POISON, 5, true)),
        ..ServiceConfig::default()
    });
    let outcome = service.submit(plan, 0).expect("submit");
    let report = service
        .wait(outcome.job, Some(Duration::from_secs(120)))
        .expect("job survives one injected panic via retry");
    assert_eq!(report.as_str(), clean);
    let stats = service.stats();
    assert_eq!(stats.jobs_retried, 1);
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.jobs_failed, 0);
    service.shutdown();
}

/// Tentpole assertion 2b: a persistently panicking campaign exhausts its
/// retry budget and fails *terminally and alone* — concurrent healthy jobs
/// complete with correct bytes, and the pool keeps serving afterwards.
#[test]
fn persistent_panic_fails_only_its_own_job_and_pool_survives() {
    const POISON: u64 = 0xdead_0002;
    let healthy_a = tiny_plan(0x600d_0001);
    let healthy_b = tiny_plan(0x600d_0002);
    let clean_a = run_campaign_with_backend(&healthy_a, SimBackend::Sliced)
        .expect("clean run")
        .to_json();
    let service = ServiceHandle::start(ServiceConfig {
        workers: 2,
        chunk_trials: 4,
        max_job_retries: 1,
        retry_backoff_ms: 1,
        execution_backend: Some(PanicAfterN::leaked(POISON, 0, false)),
        ..ServiceConfig::default()
    });
    let poison = service.submit(tiny_plan(POISON), 0).expect("submit poison");
    let job_a = service.submit(healthy_a, 0).expect("submit healthy A");
    let job_b = service.submit(healthy_b, 0).expect("submit healthy B");

    let err = service
        .wait(poison.job, Some(Duration::from_secs(120)))
        .expect_err("poison job must fail terminally");
    match err {
        ServiceError::JobFailed(msg) => {
            assert!(
                msg.contains("campaign panicked"),
                "failure carries the panic payload, got: {msg}"
            );
        }
        other => panic!("expected JobFailed, got {other:?}"),
    }
    let report_a = service
        .wait(job_a.job, Some(Duration::from_secs(120)))
        .expect("healthy job A completes");
    assert_eq!(report_a.as_str(), clean_a);
    service
        .wait(job_b.job, Some(Duration::from_secs(120)))
        .expect("healthy job B completes");

    // The pool still serves new work after containing the panics.
    let after = service
        .submit(tiny_plan(0x600d_0003), 0)
        .expect("submit after panic");
    service
        .wait(after.job, Some(Duration::from_secs(120)))
        .expect("post-panic submission completes");

    let stats = service.stats();
    assert_eq!(stats.jobs_failed, 1);
    assert_eq!(stats.jobs_completed, 3);
    assert_eq!(stats.jobs_retried, 1, "one retry, then the budget is spent");
    service.shutdown();
}

/// Satellite (c): an empty journal file is a valid empty state.
#[test]
fn empty_journal_recovers_to_empty_state() {
    let dir = state_dir("empty-journal");
    std::fs::write(dir.join(JOURNAL_FILE), b"").expect("write empty journal");
    let service = ServiceHandle::start(ServiceConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let stats = service.stats();
    assert_eq!(stats.journal_records_replayed, 0);
    assert_eq!(stats.recovered_jobs, 0);
    // Fresh ids start at 1.
    let outcome = service.submit(tiny_plan(0xe321), 0).expect("submit");
    assert_eq!(outcome.job, 1);
    service
        .wait(1, Some(Duration::from_secs(120)))
        .expect("job completes");
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite (c): a torn final record (crash mid-append) is discarded; the
/// intact prefix still recovers, the job recomputes byte-identically, and —
/// because reopening truncates the tear — a *second* restart still replays
/// everything, including records appended after the tear.
#[test]
fn torn_journal_tail_recovers_and_survives_a_second_restart() {
    let plan = tiny_plan(0x7042);
    let clean = run_campaign_with_backend(&plan, SimBackend::Sliced)
        .expect("clean run")
        .to_json();
    let dir = state_dir("torn-tail");
    {
        let mut journal = Journal::open(dir.join(JOURNAL_FILE), 1).expect("open journal");
        journal.append(&submit_record(&plan, 1)).expect("submit");
    }
    // Crash mid-append: a partial chunk record with no trailing newline.
    let mut bytes = std::fs::read(dir.join(JOURNAL_FILE)).expect("read journal");
    bytes.extend_from_slice(br#"{"type":"chunk","job":1,"trials_done":4,"outc"#);
    std::fs::write(dir.join(JOURNAL_FILE), &bytes).expect("tear journal");

    let service = ServiceHandle::start(ServiceConfig {
        workers: 1,
        chunk_trials: 4,
        state_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let report = service
        .wait(1, Some(Duration::from_secs(120)))
        .expect("job recovered from the intact prefix");
    assert_eq!(report.as_str(), clean);
    let stats = service.stats();
    assert_eq!(stats.recovered_jobs, 1);
    assert_eq!(stats.resumed_chunks, 0, "the torn chunk never counts");
    service.shutdown();

    // Second restart: the tear was truncated at first reopen, so the
    // records appended after it (chunks + done) replay cleanly and the
    // finished job is restored straight from the store.
    let service = ServiceHandle::start(ServiceConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let report = service
        .wait(1, Some(Duration::from_secs(120)))
        .expect("done job restored on second restart");
    assert_eq!(report.as_str(), clean);
    let status = service.status(1).expect("status");
    assert_eq!(status.state, "done");
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite (c): duplicate terminal transitions — the first one wins, the
/// conflicting later record is discarded.
#[test]
fn duplicate_terminal_transitions_keep_the_first() {
    let plan = tiny_plan(0xd0d0);
    let dir = state_dir("dup-terminal");
    {
        let mut journal = Journal::open(dir.join(JOURNAL_FILE), 1).expect("open journal");
        journal.append(&submit_record(&plan, 1)).expect("submit");
        journal
            .append(&JournalRecord::Start { job: 1 })
            .expect("start");
        journal
            .append(&JournalRecord::Failed {
                job: 1,
                error: "first terminal wins".into(),
            })
            .expect("failed");
        journal
            .append(&JournalRecord::Done { job: 1 })
            .expect("done");
    }
    let service = ServiceHandle::start(ServiceConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let status = service.status(1).expect("status");
    assert_eq!(status.state, "failed");
    assert_eq!(status.error.as_deref(), Some("first terminal wins"));
    match service.result(1) {
        Err(ServiceError::JobFailed(msg)) => assert!(msg.contains("first terminal wins")),
        other => panic!("expected JobFailed, got {other:?}"),
    }
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite (c): a store file whose contents no longer match its digest
/// filename is rejected on read; the `done` job demotes to in-flight and
/// recomputes byte-identical bytes, healing the store.
#[test]
fn corrupt_store_entry_recomputes_byte_identical_report() {
    let plan = tiny_plan(0xbadc);
    let clean = run_campaign_with_backend(&plan, SimBackend::Sliced)
        .expect("clean run")
        .to_json();
    let digest = plan.content_digest();
    let dir = state_dir("corrupt-store");
    {
        let mut journal = Journal::open(dir.join(JOURNAL_FILE), 1).expect("open journal");
        journal.append(&submit_record(&plan, 1)).expect("submit");
        journal
            .append(&JournalRecord::Start { job: 1 })
            .expect("start");
        journal
            .append(&JournalRecord::Done { job: 1 })
            .expect("done");
    }
    // The journal says done, but the stored report was flipped: the header
    // hash no longer matches the body.
    let reports = dir.join("reports");
    std::fs::create_dir_all(&reports).expect("create reports dir");
    std::fs::write(
        reports.join(format!("{digest}.json")),
        format!("{}\n{{\"tampered\":true}}", "0".repeat(64)),
    )
    .expect("plant corrupt store file");

    let service = ServiceHandle::start(ServiceConfig {
        workers: 1,
        chunk_trials: 4,
        state_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let report = service
        .wait(1, Some(Duration::from_secs(120)))
        .expect("job recomputes after store corruption");
    assert_eq!(
        report.as_str(),
        clean,
        "recomputation matches the clean run"
    );
    assert_eq!(store_body(&dir, &digest), clean, "the store is healed");
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reads the `nvpim-serviced listening on <addr>` announcement from a
/// freshly spawned daemon's stdout.
fn scrape_announced_addr(child: &mut std::process::Child) -> String {
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).expect("read announcement");
    line.trim()
        .rsplit(' ')
        .next()
        .expect("announcement carries the address")
        .to_string()
}

/// Spawns the real daemon binary over `dir`, scraping the OS-assigned port
/// from its announcement line.
fn spawn_daemon_process(dir: &Path) -> (std::process::Child, String) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_nvpim-serviced"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--chunk-trials",
            "4",
            "--state-dir",
        ])
        .arg(dir)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn nvpim-serviced");
    let addr = scrape_announced_addr(&mut child);
    (child, addr)
}

/// Tentpole assertion 4: SIGKILL the real daemon mid-campaign, restart it
/// over the same state directory, and the recovered report bytes equal a
/// clean in-process baseline; the job reaches `done` and nothing is
/// orphaned in the queue. (The kill races the campaign by design — both
/// outcomes, killed-in-flight and killed-after-done, must recover.)
#[test]
fn sigkill_and_restart_recovers_byte_identical_report() {
    let plan = SweepPlan::quick(); // 72 trials, 18 chunks of 4
    let clean = run_campaign_with_backend(&plan, SimBackend::Sliced)
        .expect("clean run")
        .to_json();
    let digest = plan.content_digest();
    let plan_value: Value = serde_json::from_str(&plan.canonical_json()).expect("plan JSON parses");
    let dir = state_dir("sigkill");

    let (mut child, addr) = spawn_daemon_process(&dir);
    let mut client = Client::connect(&addr).expect("connect to first daemon");
    let accepted = client
        .request(&request(
            "submit",
            vec![("plan".to_string(), plan_value.clone())],
        ))
        .expect("submit");
    assert_eq!(accepted.get("ok").and_then(Value::as_bool), Some(true));
    let job = accepted.get("job").and_then(Value::as_u64).expect("job id");
    // The acceptance response means the submit record is journaled and
    // fsync'd (fsync_every defaults to 1) — SIGKILL now, wherever the
    // campaign happens to be.
    child.kill().expect("SIGKILL the daemon");
    let _ = child.wait();

    let (mut child2, addr2) = spawn_daemon_process(&dir);
    let mut client2 = Client::connect(&addr2).expect("connect to restarted daemon");
    let result = client2
        .request(&request(
            "result",
            vec![
                ("job".to_string(), Value::UInt(job)),
                ("wait".to_string(), Value::Bool(true)),
                ("timeout_ms".to_string(), Value::UInt(120_000)),
            ],
        ))
        .expect("result after recovery");
    assert_eq!(
        result.get("ok").and_then(Value::as_bool),
        Some(true),
        "recovered job must complete: {result:?}"
    );
    assert_eq!(
        store_body(&dir, &digest),
        clean,
        "recovered bytes match the clean baseline"
    );

    // No orphans: the job is terminal and the queue is drained.
    let stats = client2.request(&request("stats", vec![])).expect("stats");
    let stats = stats.get("stats").expect("stats payload");
    assert_eq!(stats.get("queue_depth").and_then(Value::as_u64), Some(0));
    assert_eq!(
        stats.get("recovered_jobs").and_then(Value::as_u64),
        Some(1),
        "the killed daemon's job was recovered from the journal"
    );
    let status = client2
        .request(&request(
            "status",
            vec![("job".to_string(), Value::UInt(job))],
        ))
        .expect("status");
    assert_eq!(
        status
            .get("status")
            .and_then(|s| s.get("state"))
            .and_then(Value::as_str),
        Some("done")
    );

    // A resubmission of the same plan now hits the durable report store.
    let resubmit = client2
        .request(&request("submit", vec![("plan".to_string(), plan_value)]))
        .expect("resubmit");
    assert_eq!(resubmit.get("cached").and_then(Value::as_bool), Some(true));

    let shutdown = client2
        .request(&request("shutdown", vec![]))
        .expect("shutdown");
    assert_eq!(shutdown.get("ok").and_then(Value::as_bool), Some(true));
    let _ = child2.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns a stateless fleet worker daemon on an OS-assigned port.
fn spawn_fleet_worker(backend: SimBackend) -> (std::process::Child, String) {
    let backend = match backend {
        SimBackend::Scalar => "scalar",
        SimBackend::Sliced => "sliced",
    };
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_nvpim-serviced"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--backend",
            backend,
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn fleet worker");
    let addr = scrape_announced_addr(&mut child);
    (child, addr)
}

/// Sends `sig` (e.g. `-STOP`, `-CONT`) to process `pid` via `kill(1)`.
fn signal(pid: u32, sig: &str) {
    let status = std::process::Command::new("kill")
        .args([sig, &pid.to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill {sig} {pid} failed");
}

/// A heavyweight-per-trial fleet plan: one 16-bit multiplier workload
/// across the paper's protection trio and a dense error-rate grid — 9
/// points, `seeds_per_point` seeds each. The dense rates keep the
/// stratified estimator's conditioned trials as expensive as exact ones,
/// so both modes give chaos a wide mid-campaign window.
fn fleet_chaos_plan(seed: u64, estimator: EstimatorMode, seeds_per_point: u64) -> SweepPlan {
    let mut plan = SweepPlan::quick();
    plan.workloads = vec![SweepWorkload::Multiplier { bits: 16 }];
    plan.gate_error_rates = vec![3e-3, 1e-2, 3e-2];
    plan.seeds_per_point = seeds_per_point;
    plan.campaign_seed = seed;
    plan.estimator = estimator;
    plan
}

/// Tentpole assertion 5: three real daemons serve one sharded campaign;
/// one is SIGKILLed (disconnect) and another SIGSTOPped (stall past the
/// heartbeat deadline) mid-run. For both backends and both estimator
/// modes the merged report must be byte-identical to a single-node run,
/// both chaos victims must be evicted, and the shard hand-offs must be
/// recorded in the fleet stats and the telemetry registry.
///
/// Chaos timing is self-calibrating: the signals land at fractions of the
/// *measured* single-node duration. Three workers need at least ~1/3 of
/// that wall clock (more after each loss), so at 15% and 30% both victims
/// are still mid-shard — per-shard compute is ~1/9 of the single-node run
/// while the scheduling gaps between shards are sub-millisecond.
#[test]
fn fleet_survives_sigkill_and_sigstop_with_byte_identical_reports() {
    for (i, backend) in [SimBackend::Scalar, SimBackend::Sliced]
        .into_iter()
        .enumerate()
    {
        for (j, estimator) in [EstimatorMode::Exact, EstimatorMode::Stratified]
            .into_iter()
            .enumerate()
        {
            // Scalar trials run an order of magnitude slower than sliced
            // ones, and trial cost varies severalfold across the protection
            // schemes inside one plan — size the grid and the chunk so each
            // combination keeps a multi-second chaos window while even the
            // slowest single chunk stays far below the heartbeat deadline.
            let (seeds_per_point, chunk_trials) = match backend {
                SimBackend::Scalar => (60, 5),
                SimBackend::Sliced => (360, 45),
            };
            let plan =
                fleet_chaos_plan(0xf1ee_7000 + (i * 2 + j) as u64, estimator, seeds_per_point);
            let started = Instant::now();
            let clean = run_campaign_with_backend(&plan, backend)
                .expect("clean run")
                .to_json();
            let single = started.elapsed();

            let mut daemons: Vec<(std::process::Child, String)> =
                (0..3).map(|_| spawn_fleet_worker(backend)).collect();
            let cfg = FleetConfig {
                workers: daemons.iter().map(|(_, addr)| addr.clone()).collect(),
                shards: 9,
                chunk_trials,
                heartbeat_timeout_ms: 2_000,
                retry_backoff_ms: 10,
                ..FleetConfig::default()
            };
            let telemetry = Telemetry::new();
            let fleet_result = std::thread::scope(|scope| {
                let fleet = scope.spawn(|| run_fleet(&plan, &cfg, &telemetry));
                std::thread::sleep(single.mul_f64(0.15));
                daemons[0].0.kill().expect("SIGKILL worker 0");
                std::thread::sleep(single.mul_f64(0.15));
                signal(daemons[1].0.id(), "-STOP");
                fleet.join().expect("fleet thread")
            });

            // Clean up the processes before asserting so a failed assertion
            // never leaves a SIGSTOPped daemon behind.
            signal(daemons[1].0.id(), "-CONT");
            for (child, _) in &mut daemons {
                let _ = child.kill();
                let _ = child.wait();
            }

            let outcome = fleet_result.expect("fleet survives the chaos");
            assert_eq!(
                outcome.report.to_json(),
                clean,
                "merged fleet report must be byte-identical to a single-node \
                 run ({backend:?}, {estimator:?})"
            );
            assert!(
                outcome.stats.shards_reassigned > 0,
                "killing and stalling workers mid-shard must hand shards off \
                 ({backend:?}, {estimator:?}): {:?}",
                outcome.stats
            );
            assert_eq!(
                outcome.stats.worker_evictions, 2,
                "both chaos victims are evicted ({backend:?}, {estimator:?})"
            );
            assert!(
                outcome.stats.heartbeat_misses > 0,
                "the SIGSTOPped worker misses its heartbeat deadline"
            );
            let survivor = outcome
                .stats
                .workers
                .iter()
                .find(|w| !w.evicted)
                .expect("one worker survives");
            assert!(survivor.shards_completed > 0);

            let snapshot = telemetry.snapshot();
            assert_eq!(
                snapshot.counter(Counter::ShardsReassigned),
                outcome.stats.shards_reassigned,
                "telemetry mirrors the fleet's re-assignment count"
            );
            let rendered = snapshot.render_prometheus();
            assert!(rendered.contains("nvpim_shards_reassigned_total"));
            assert!(rendered.contains("nvpim_worker_evictions_total"));
            assert!(rendered.contains("nvpim_heartbeat_misses_total"));
        }
    }
}

/// Tentpole assertion 6: two clients submitting the same plan digest while
/// the daemon restarts coalesce onto the one recovered campaign — a single
/// execution, byte-identical report bytes for everyone.
#[test]
fn concurrent_resubmission_during_restart_coalesces_to_one_campaign() {
    // Heavyweight trials so the first daemon is killed mid-campaign and the
    // restarted daemon's recovery run is still in flight when the two
    // resubmitters race it.
    let plan = fleet_chaos_plan(0xc0a1_e5ce, EstimatorMode::Exact, 100);
    let clean = run_campaign_with_backend(&plan, SimBackend::Sliced)
        .expect("clean run")
        .to_json();
    let digest = plan.content_digest();
    let plan_value: Value = serde_json::from_str(&plan.canonical_json()).expect("plan JSON parses");
    let dir = state_dir("coalesce-restart");

    let (mut child, addr) = spawn_daemon_process(&dir);
    let mut client = Client::connect(&addr).expect("connect to first daemon");
    let accepted = client
        .request(&request(
            "submit",
            vec![("plan".to_string(), plan_value.clone())],
        ))
        .expect("submit");
    assert_eq!(accepted.get("ok").and_then(Value::as_bool), Some(true));
    child.kill().expect("SIGKILL the daemon");
    let _ = child.wait();

    // Restart over the same state dir; the journaled job recovers and two
    // clients race duplicate submissions against that recovery.
    let (mut child2, addr2) = spawn_daemon_process(&dir);
    let responses: Vec<(bool, bool, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let addr2 = &addr2;
                let plan_value = plan_value.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr2).expect("connect resubmitter");
                    let resubmit = client
                        .request(&request("submit", vec![("plan".to_string(), plan_value)]))
                        .expect("resubmit");
                    assert_eq!(
                        resubmit.get("ok").and_then(Value::as_bool),
                        Some(true),
                        "resubmission accepted: {resubmit:?}"
                    );
                    let job = resubmit.get("job").and_then(Value::as_u64).expect("job id");
                    let coalesced = resubmit
                        .get("coalesced")
                        .and_then(Value::as_bool)
                        .unwrap_or(false);
                    let cached = resubmit
                        .get("cached")
                        .and_then(Value::as_bool)
                        .unwrap_or(false);
                    let result = client
                        .request(&request(
                            "result",
                            vec![
                                ("job".to_string(), Value::UInt(job)),
                                ("wait".to_string(), Value::Bool(true)),
                                ("timeout_ms".to_string(), Value::UInt(120_000)),
                            ],
                        ))
                        .expect("result");
                    assert_eq!(
                        result.get("ok").and_then(Value::as_bool),
                        Some(true),
                        "result delivered: {result:?}"
                    );
                    let report = serde_json::to_string(result.get("report").expect("report"))
                        .expect("serialize report");
                    (coalesced, cached, report)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("resubmitter thread"))
            .collect()
    });

    for (coalesced, cached, _) in &responses {
        assert!(
            *coalesced || *cached,
            "a duplicate digest must coalesce onto the recovered job (or hit \
             the store if recovery already finished), never fork a new run"
        );
    }
    assert_eq!(
        responses[0].2, responses[1].2,
        "both clients read identical report bytes"
    );
    assert_eq!(
        store_body(&dir, &digest),
        clean,
        "the one recovered campaign produced the clean baseline bytes"
    );

    let mut client2 = Client::connect(&addr2).expect("connect for stats");
    let stats = client2.request(&request("stats", vec![])).expect("stats");
    let stats = stats.get("stats").expect("stats payload");
    assert_eq!(
        stats.get("jobs_completed").and_then(Value::as_u64),
        Some(1),
        "exactly one campaign executed: {stats:?}"
    );
    assert_eq!(stats.get("recovered_jobs").and_then(Value::as_u64), Some(1));
    assert_eq!(stats.get("queue_depth").and_then(Value::as_u64), Some(0));

    let shutdown = client2
        .request(&request("shutdown", vec![]))
        .expect("shutdown");
    assert_eq!(shutdown.get("ok").and_then(Value::as_bool), Some(true));
    let _ = child2.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
