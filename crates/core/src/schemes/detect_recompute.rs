//! DetectRecompute — online parity detection with bounded software
//! recompute of the affected logic level.
//!
//! The scheme keeps ParityDetect's detection machinery byte for byte: every
//! protected gate output is folded (two-step in-array XOR) into a single
//! running parity cell, and at every logic-level boundary the external
//! Checker XOR-reduces the level's read-back outputs against it. The
//! difference is what happens on a mismatch. ParityDetect can only account
//! a would-be retry; DetectRecompute *recovers*: the Checker already holds
//! the level's gate list, re-evaluates each protected gate of the level in
//! periphery logic from the currently stored input cells, and writes any
//! disagreeing output back through the verified write port. The recompute
//! is bounded — one logic level, the detection granularity — and is
//! data-driven only in *whether* it runs, never in the in-array operation
//! sequence, which stays a pure function of the schedule. That keeps the
//! scheme sliceable (64 lanes share one gate program; recompute patches
//! only the mismatching lanes with no RNG consumption) and keeps its
//! zero-fault trials analytically settleable.
//!
//! Under permanent stuck-at defects the verified write-back cannot repair a
//! broken cell: a recomputed value landing on a defective output cell stays
//! pinned, and the scheme reports each such residually wrong gate as
//! `uncorrectable` — detected, recomputed, and still lost to the hardware.
//! Like parity detection generally, even-weight error patterns within one
//! level escape the fold and are neither detected nor recomputed.
//!
//! Metadata-region layout (columns `0..5`), identical to ParityDetect:
//!
//! ```text
//! 0  ping running-parity cell
//! 1  pong running-parity cell
//! 2  XOR working cell s1
//! 3  XOR working cell s2
//! 4  redundant-copy cell r (the gate's extra output, folded into parity)
//! ```

use nvpim_compiler::netlist::{LogicOp, Netlist};
use nvpim_compiler::schedule::RowSchedule;
use nvpim_ecc::gf2::lanes::at_least_three_zeros;
use nvpim_sim::array::PimArray;
use nvpim_sim::gates::GateKind;
use nvpim_sim::sliced::SlicedPimArray;

use crate::checker::CheckerCostModel;
use crate::config::{DesignConfig, GateStyle};
use crate::executor::{ExecScratch, ProtectedExecError, ProtectedExecutor, ProtectedRunReport};
use crate::scheme::{CostEnv, SchemeRuntime};
use crate::schemes::parity_detect::ParityDetectChecker;
use crate::sliced::{SlicedExecScratch, SlicedExecutor, SlicedRunReport};
use crate::system::{CostBreakdown, CHECKER_EXPOSED_FRACTION};

/// Column indices within the metadata region.
const PING: usize = 0;
const PONG: usize = 1;
const WORK_S1: usize = 2;
const WORK_S2: usize = 3;
const R_CELL: usize = 4;
/// Columns the scheme reserves per row.
const METADATA_COLUMNS: usize = 5;

/// DetectRecompute's runtime (registered as `"DetectRecompute"`).
#[derive(Debug)]
pub struct DetectRecomputeScheme;

/// Whether a scheduled gate participates in the parity fold (and therefore
/// in a level recompute): constants and dead nets run plain.
fn is_protected(netlist: &Netlist, used_nets: &[bool], sg_index: usize, op: &LogicOp) -> bool {
    !matches!(op, LogicOp::Zero | LogicOp::One) && used_nets[netlist.gates[sg_index].output]
}

impl SchemeRuntime for DetectRecomputeScheme {
    fn wire_name(&self) -> &'static str {
        "DetectRecompute"
    }

    fn display_name(&self) -> &'static str {
        "detect-recompute"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["recompute", "DetectRecomputeScheme"]
    }

    fn metadata_columns(&self, _config: &DesignConfig) -> usize {
        METADATA_COLUMNS
    }

    fn sliceable(&self) -> bool {
        true
    }

    fn detect_only(&self) -> bool {
        false
    }

    fn recompute(&self) -> bool {
        true
    }

    fn stuck_at_aware(&self) -> bool {
        true
    }

    fn parity_bits(&self, _config: &DesignConfig) -> usize {
        1
    }

    fn checker_cost(&self, config: &DesignConfig) -> CheckerCostModel {
        CheckerCostModel::for_parity(config.data_bits())
    }

    fn metadata_costs(
        &self,
        schedule: &RowSchedule,
        config: &DesignConfig,
        env: &CostEnv,
        b: &mut CostBreakdown,
    ) -> u64 {
        // Identical steady-state pipeline to ParityDetect: one redundant
        // copy per output, one two-step XOR fold into the single running
        // parity cell, serialized through that cell. Recompute cost is
        // event-driven (per detection), so it shows up in the Monte Carlo
        // counters, not in this analytic steady-state model.
        let parity_parallelism = 1.0;
        let checker_cost = self.checker_cost(config);
        let mut checker_traffic_bits = 0u64;
        let mut meta_ops_total = 0.0f64;
        for level in &schedule.level_profile {
            let outputs = (level.nor_ops + level.thr_ops + level.copy_ops) as f64;
            if outputs == 0.0 {
                continue;
            }
            let (r_ops, xor_steps) = if env.multi_output {
                (0.0f64, 2.0f64)
            } else {
                (1.0, 3.0)
            };
            meta_ops_total += outputs * (r_ops + xor_steps);

            let xor_energy = if env.multi_output {
                2.0 * env.nor_e + env.thr_e
            } else {
                3.0 * env.nor_e + env.thr_e + env.write_e
            };
            let r_gen_energy = if env.multi_output {
                env.nor_e
            } else {
                2.0 * env.nor_e + env.write_e
            };
            b.metadata_energy_fj += outputs * (r_gen_energy + xor_energy);
            b.write_energy_fj += env.write_e;

            let bits = outputs as usize + 1;
            checker_traffic_bits += bits as u64;
            b.checker_time_ns += CHECKER_EXPOSED_FRACTION * env.periphery.read_latency(bits);
            b.checker_comm_energy_fj += env.periphery.read_energy(bits);
            b.checker_logic_energy_fj += checker_cost.energy_per_check_fj;
        }
        b.metadata_time_ns +=
            ((meta_ops_total / parity_parallelism) * env.t_gate - b.compute_time_ns).max(0.0);
        checker_traffic_bits
    }

    fn run_scalar(
        &self,
        exec: &ProtectedExecutor,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
        scratch: &mut ExecScratch,
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        let config = exec.config();
        assert!(
            config.metadata_columns() >= METADATA_COLUMNS,
            "DetectRecompute metadata region too small"
        );
        scratch.parity_in_pong.clear();
        scratch.parity_in_pong.resize(1, false);
        scratch.chunk_cols.clear();

        let mut checker = ParityDetectChecker::new();
        let mut metadata_gate_ops = 0u64;
        let mut errors_detected = 0u64;
        let mut corrections = 0u64;
        let mut uncorrectable = 0u64;

        array.preset_cells(row, PING..PONG + 1, false)?;
        scratch.parity_in_pong[0] = false;
        let mut current_level = schedule.gates.first().map(|g| g.level).unwrap_or(0);

        for sg in &schedule.gates {
            if sg.level != current_level {
                flush_and_recompute(
                    netlist,
                    schedule,
                    array,
                    row,
                    current_level,
                    &mut checker,
                    scratch,
                    &mut errors_detected,
                    &mut corrections,
                    &mut uncorrectable,
                )?;
                array.preset_cells(row, PING..PONG + 1, false)?;
                scratch.parity_in_pong[0] = false;
                current_level = sg.level;
            }
            exec.materialize_inputs(netlist, sg, array, row, inputs, scratch)?;

            if !is_protected(netlist, &scratch.used_nets, sg.index, &sg.op) {
                exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols)?;
                continue;
            }

            match config.gate_style {
                GateStyle::MultiOutput => {
                    exec.execute_plain_gate(sg, array, row, &[R_CELL], &mut scratch.out_cols)?;
                    metadata_gate_ops += 1;
                }
                GateStyle::SingleOutput => {
                    exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols)?;
                    let kind = match sg.op {
                        LogicOp::Nor => GateKind::NOR2,
                        LogicOp::Thr => GateKind::THR,
                        LogicOp::Copy => GateKind::Copy,
                        LogicOp::Zero | LogicOp::One => unreachable!("constants handled above"),
                    };
                    array.execute_gate_with(kind, row, &sg.input_cols, &[R_CELL])?;
                    metadata_gate_ops += 1;
                }
            }

            let (src, dst) = if scratch.parity_in_pong[0] {
                (PONG, PING)
            } else {
                (PING, PONG)
            };
            array.execute_xor2_step(row, src, R_CELL, WORK_S1, WORK_S2, dst)?;
            scratch.parity_in_pong[0] = !scratch.parity_in_pong[0];
            metadata_gate_ops += 2;

            scratch.chunk_cols.push(sg.output_cols[0]);
        }
        flush_and_recompute(
            netlist,
            schedule,
            array,
            row,
            current_level,
            &mut checker,
            scratch,
            &mut errors_detected,
            &mut corrections,
            &mut uncorrectable,
        )?;

        Ok(ProtectedRunReport {
            outputs: exec.read_outputs(netlist, schedule, array, row, inputs)?,
            checks: checker.checks(),
            errors_detected,
            corrections_written_back: corrections,
            uncorrectable,
            metadata_gate_ops,
        })
    }

    fn run_sliced(
        &self,
        exec: &SlicedExecutor,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut SlicedPimArray,
        row: usize,
        inputs: &[u64],
        scratch: &mut SlicedExecScratch,
    ) -> Result<SlicedRunReport, ProtectedExecError> {
        let config = exec.config();
        assert!(
            config.metadata_columns() >= METADATA_COLUMNS,
            "DetectRecompute metadata region too small"
        );
        scratch.parity_in_pong.clear();
        scratch.parity_in_pong.resize(1, false);
        scratch.chunk_cols.clear();

        let mut checker = ParityDetectChecker::new();
        let mut report = SlicedRunReport::new();

        array.preset_range(row, PING..PONG + 1, false);
        scratch.parity_in_pong[0] = false;
        let mut current_level = schedule.gates.first().map(|g| g.level).unwrap_or(0);

        for sg in &schedule.gates {
            if sg.level != current_level {
                sliced_flush_and_recompute(
                    netlist,
                    schedule,
                    array,
                    row,
                    current_level,
                    &mut checker,
                    scratch,
                    &mut report,
                );
                array.preset_range(row, PING..PONG + 1, false);
                scratch.parity_in_pong[0] = false;
                current_level = sg.level;
            }
            exec.materialize_inputs(netlist, sg, array, row, inputs, scratch);

            if !is_protected(netlist, &scratch.used_nets, sg.index, &sg.op) {
                exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols);
                continue;
            }

            match config.gate_style {
                GateStyle::MultiOutput => {
                    exec.execute_plain_gate(sg, array, row, &[R_CELL], &mut scratch.out_cols);
                    report.metadata_gate_ops += 1;
                }
                GateStyle::SingleOutput => {
                    exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols);
                    match sg.op {
                        LogicOp::Nor => array.gate_nor(row, &sg.input_cols, &[R_CELL]),
                        LogicOp::Thr => array.gate_thr(row, &sg.input_cols, R_CELL),
                        LogicOp::Copy => array.gate_copy(row, sg.input_cols[0], R_CELL),
                        LogicOp::Zero | LogicOp::One => unreachable!("constants handled above"),
                    }
                    report.metadata_gate_ops += 1;
                }
            }

            let (src, dst) = if scratch.parity_in_pong[0] {
                (PONG, PING)
            } else {
                (PING, PONG)
            };
            array.gate_xor2(row, src, R_CELL, WORK_S1, WORK_S2, dst);
            scratch.parity_in_pong[0] = !scratch.parity_in_pong[0];
            report.metadata_gate_ops += 2;

            scratch.chunk_cols.push(sg.output_cols[0]);
        }
        sliced_flush_and_recompute(
            netlist,
            schedule,
            array,
            row,
            current_level,
            &mut checker,
            scratch,
            &mut report,
        );

        exec.read_outputs(netlist, schedule, array, row, inputs, scratch);
        report.checks = checker.checks();
        Ok(report)
    }
}

/// Level-boundary flush: parity check, then — on a mismatch — re-evaluate
/// every protected gate of the level from the currently stored input cells
/// and write disagreeing outputs back through the verified write port.
/// Write-backs that a stuck cell pins to the wrong value are counted as
/// uncorrectable (the recompute was right; the hardware cannot hold it).
#[allow(clippy::too_many_arguments)]
fn flush_and_recompute(
    netlist: &Netlist,
    schedule: &RowSchedule,
    array: &mut PimArray,
    row: usize,
    level: usize,
    checker: &mut ParityDetectChecker,
    scratch: &mut ExecScratch,
    errors_detected: &mut u64,
    corrections: &mut u64,
    uncorrectable: &mut u64,
) -> Result<(), ProtectedExecError> {
    if scratch.chunk_cols.is_empty() {
        return Ok(());
    }
    let parity_col = if scratch.parity_in_pong[0] {
        PONG
    } else {
        PING
    };
    scratch.cols_b.clear();
    scratch.cols_b.push(parity_col);
    array.read_bits_into(row, &scratch.chunk_cols, &mut scratch.bits_a)?;
    array.read_bits_into(row, &scratch.cols_b, &mut scratch.bits_b)?;
    let data_parity = scratch.bits_a.iter_ones().count() % 2 == 1;
    if checker.check_level(data_parity, scratch.bits_b.get(0)) {
        *errors_detected += 1;
        // Bounded recompute: the schedule's gates of this level, in
        // schedule order. Within a level no gate feeds another, so the
        // stored input cells are exactly the pre-level state.
        for sg in schedule.gates.iter().filter(|g| g.level == level) {
            if !is_protected(netlist, &scratch.used_nets, sg.index, &sg.op) {
                continue;
            }
            let ideal = match sg.op {
                LogicOp::Nor => {
                    let mut any = false;
                    for &c in &sg.input_cols {
                        any |= array.peek(row, c)?;
                    }
                    !any
                }
                LogicOp::Thr => {
                    let mut zeros = 0u32;
                    for &c in &sg.input_cols {
                        zeros += u32::from(!array.peek(row, c)?);
                    }
                    zeros >= 3
                }
                LogicOp::Copy => array.peek(row, sg.input_cols[0])?,
                LogicOp::Zero | LogicOp::One => unreachable!("constants are never protected"),
            };
            // The Checker rewrites every output of the level (it cannot
            // know which bit slipped); counters record what the write
            // actually achieved against the stored state.
            for &col in &sg.output_cols {
                let before = array.peek(row, col)?;
                array.write_verified(row, col, ideal)?;
                let after = array.peek(row, col)?;
                if after == ideal && after != before {
                    *corrections += 1;
                } else if after != ideal {
                    *uncorrectable += 1;
                }
            }
        }
    }
    scratch.chunk_cols.clear();
    Ok(())
}

/// Lane-parallel twin of [`flush_and_recompute`]: the recompute patches
/// only the mismatching lanes (word surgery under the mismatch mask) and
/// consumes no RNG, so lane streams stay bit-identical to scalar trials.
#[allow(clippy::too_many_arguments)]
fn sliced_flush_and_recompute(
    netlist: &Netlist,
    schedule: &RowSchedule,
    array: &mut SlicedPimArray,
    row: usize,
    level: usize,
    checker: &mut ParityDetectChecker,
    scratch: &mut SlicedExecScratch,
    report: &mut SlicedRunReport,
) {
    if scratch.chunk_cols.is_empty() {
        return;
    }
    let SlicedExecScratch {
        chunk_cols,
        parity_in_pong,
        data_words,
        used_nets,
        ..
    } = scratch;
    data_words.clear();
    data_words.extend(chunk_cols.iter().map(|&c| array.cell(row, c)));
    let parity_col = if parity_in_pong[0] { PONG } else { PING };
    let parity_word = array.cell(row, parity_col);
    let valid = array.injector().valid_mask();
    let mismatch = checker.check_level_lanes(data_words, parity_word, valid);
    if mismatch != 0 {
        let mut flagged = mismatch;
        while flagged != 0 {
            let lane = flagged.trailing_zeros() as usize;
            flagged &= flagged - 1;
            report.errors_detected[lane] += 1;
        }
        for sg in schedule.gates.iter().filter(|g| g.level == level) {
            if !is_protected(netlist, used_nets, sg.index, &sg.op) {
                continue;
            }
            let ideal = match sg.op {
                LogicOp::Nor => {
                    let mut any = 0u64;
                    for &c in &sg.input_cols {
                        any |= array.cell(row, c);
                    }
                    !any
                }
                LogicOp::Thr => {
                    at_least_three_zeros(sg.input_cols.iter().map(|&c| array.cell(row, c)))
                }
                LogicOp::Copy => array.cell(row, sg.input_cols[0]),
                LogicOp::Zero | LogicOp::One => unreachable!("constants are never protected"),
            };
            for &col in &sg.output_cols {
                let before = array.cell(row, col);
                // Lane surgery: only the mismatching lanes receive the
                // verified write; stuck cells pin it exactly like the
                // scalar write-verified port.
                let (sa0, sa1) = array.injector().stuck_masks(row, col);
                let stored_ideal = (ideal & !sa0) | sa1;
                let after = (before & !mismatch) | (stored_ideal & mismatch);
                array.set_cell(row, col, after);
                let mut fixed = (before ^ after) & !(after ^ ideal) & mismatch & valid;
                while fixed != 0 {
                    let lane = fixed.trailing_zeros() as usize;
                    fixed &= fixed - 1;
                    report.corrections_written_back[lane] += 1;
                }
                let mut residual = (after ^ ideal) & mismatch & valid;
                while residual != 0 {
                    let lane = residual.trailing_zeros() as usize;
                    residual &= residual - 1;
                    report.uncorrectable[lane] += 1;
                }
            }
        }
    }
    chunk_cols.clear();
}
