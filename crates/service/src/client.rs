//! A minimal blocking client for the NDJSON protocol, shared by
//! `nvpim-cli`, the harness binaries' `--connect` mode and the protocol
//! tests.
//!
//! The client assumes nothing about TCP framing: writes loop until the
//! whole line is on the wire (a single `write` may be short), and reads
//! accumulate bytes in an internal buffer until a `\n` arrives (one read
//! may return a partial frame, or several frames at once). Connect and
//! read timeouts are supported so a wedged daemon cannot hang a caller
//! forever — a read timeout surfaces as `WouldBlock`/`TimedOut`, with any
//! partial frame preserved for the next `recv` call.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use serde::Value;

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Received bytes not yet consumed as a complete frame: short reads
    /// and timeouts leave their partial data here instead of dropping it.
    buf: Vec<u8>,
    /// Lifetime bytes written to the socket (per-worker transfer
    /// accounting for fleet coordinators, in the style of per-party
    /// channel statistics).
    bytes_sent: u64,
    /// Lifetime bytes read off the socket.
    bytes_received: u64,
}

impl Client {
    /// Connects to a running `nvpim-serviced` with no timeouts (blocks
    /// until the OS gives up).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(Self {
            stream,
            buf: Vec::new(),
            bytes_sent: 0,
            bytes_received: 0,
        })
    }

    /// Connects with an optional connect timeout and an optional read
    /// timeout on subsequent `recv` calls (`None` = block indefinitely).
    ///
    /// # Errors
    ///
    /// Address resolution or connection failures (including
    /// [`ErrorKind::TimedOut`] when the connect timeout elapses).
    pub fn connect_with_timeouts(
        addr: &str,
        connect_timeout: Option<Duration>,
        read_timeout: Option<Duration>,
    ) -> std::io::Result<Self> {
        let stream = match connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(timeout) => {
                let mut last_err = None;
                let mut connected = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(err) => last_err = Some(err),
                    }
                }
                match connected {
                    Some(stream) => stream,
                    None => {
                        return Err(last_err.unwrap_or_else(|| {
                            std::io::Error::new(
                                ErrorKind::InvalidInput,
                                format!("address `{addr}` did not resolve"),
                            )
                        }))
                    }
                }
            }
        };
        stream.set_read_timeout(read_timeout)?;
        Ok(Self {
            stream,
            buf: Vec::new(),
            bytes_sent: 0,
            bytes_received: 0,
        })
    }

    /// Lifetime bytes this client has written to the socket.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Lifetime bytes this client has read off the socket.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send(&mut self, request: &Value) -> std::io::Result<()> {
        let mut text = serde_json::to_string(request)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
        text.push('\n');
        self.write_fully(text.as_bytes())
    }

    /// Sends a raw, possibly malformed line (testing hook).
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.write_fully(&framed)
    }

    /// Writes every byte of `data`, looping over short writes (one TCP
    /// `write` is not guaranteed to take a whole NDJSON frame).
    fn write_fully(&mut self, data: &[u8]) -> std::io::Result<()> {
        let mut written = 0;
        while written < data.len() {
            match self.stream.write(&data[written..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "connection closed mid-frame",
                    ))
                }
                Ok(n) => {
                    written += n;
                    self.bytes_sent += n as u64;
                }
                Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                Err(err) => return Err(err),
            }
        }
        self.stream.flush()
    }

    /// Receives one response line; `None` on clean EOF.
    ///
    /// Bytes are accumulated across reads until a full `\n`-terminated
    /// frame arrives; a read timeout (`WouldBlock`/`TimedOut`) keeps any
    /// partial frame buffered so a later `recv` can finish it.
    ///
    /// # Errors
    ///
    /// Socket read failures, EOF mid-frame, or a response that is not
    /// valid JSON.
    pub fn recv(&mut self) -> std::io::Result<Option<Value>> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let frame: Vec<u8> = self.buf.drain(..=pos).collect();
                let text = String::from_utf8(frame).map_err(|e| {
                    std::io::Error::new(ErrorKind::InvalidData, format!("non-UTF-8 response: {e}"))
                })?;
                return serde_json::from_str(text.trim_end())
                    .map(Some)
                    .map_err(|e| {
                        std::io::Error::new(
                            ErrorKind::InvalidData,
                            format!("invalid response JSON: {e}"),
                        )
                    });
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.is_empty() {
                        return Ok(None);
                    }
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ));
                }
                Ok(n) => {
                    self.bytes_received += n as u64;
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                Err(err) => return Err(err),
            }
        }
    }

    /// Sends a request and returns the first response line.
    ///
    /// # Errors
    ///
    /// I/O failures or an unexpectedly closed connection.
    pub fn request(&mut self, request: &Value) -> std::io::Result<Value> {
        self.send(request)?;
        self.recv()?.ok_or_else(|| {
            std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }
}

/// Convenience constructor for request objects.
pub fn request(cmd: &str, fields: Vec<(String, Value)>) -> Value {
    let mut pairs = vec![("cmd".to_string(), Value::Str(cmd.to_string()))];
    pairs.extend(fields);
    Value::Object(pairs)
}
