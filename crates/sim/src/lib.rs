//! # nvpim-sim
//!
//! Nonvolatile processing-in-memory array substrate for the `nvpim`
//! reproduction of *"On Error Correction for Nonvolatile
//! Processing-In-Memory"* (ISCA 2024).
//!
//! This crate models the three in-array computing technologies the paper
//! evaluates (ReRAM, STT-MRAM and SOT/SHE-MRAM) at the level the paper's
//! error-correction designs need:
//!
//! * [`technology`] — device parameters (Table III) and resistance↔logic
//!   encodings,
//! * [`gates`] — in-array NOR / multi-output NOR / THR gate semantics and
//!   the 2-step / 3-step XOR constructions of Table I,
//! * [`array`] — a functional array simulator with per-operation energy and
//!   latency accounting and fault injection,
//! * [`partition`] — logic-line-switch partitioning and the "one gate per
//!   partition" concurrency rule,
//! * [`fault`] — the direct-soft-error model of §II-C,
//! * [`sliced`] — the transposed, bit-sliced batch backend (one trial per
//!   `u64` lane) with lane-masked fault injection,
//! * [`electrical`] — the Appendix's bias-window / noise-margin analysis for
//!   multi-output gates (Fig. 9),
//! * [`periphery`] — the NVSim-substitute peripheral cost model,
//! * [`stats`] — operation / energy / latency counters.
//!
//! # Examples
//!
//! Running the paper's 2-step XOR (Table I) inside a simulated STT-MRAM
//! array:
//!
//! ```
//! use nvpim_sim::array::{GateOp, PimArray};
//! use nvpim_sim::gates::GateKind;
//! use nvpim_sim::technology::Technology;
//!
//! # fn main() -> Result<(), nvpim_sim::array::ArrayError> {
//! let mut array = PimArray::new(Technology::SttMram, 1, 8);
//! array.poke(0, 0, true)?;  // a = 1
//! array.poke(0, 1, false)?; // b = 0
//!
//! // Step 1: s1 = s2 = NOR22(a, b)
//! array.execute_gate(&GateOp::new(GateKind::NOR22, 0, vec![0, 1], vec![2, 3]))?;
//! // Step 2: out = THR(a, b, s1, s2)
//! let out = array.execute_gate(&GateOp::new(GateKind::THR, 0, vec![0, 1, 2, 3], vec![4]))?;
//! assert_eq!(out, true ^ false);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod array;
pub mod electrical;
pub mod fault;
pub mod gates;
pub mod partition;
pub mod periphery;
pub mod sliced;
pub mod stats;
pub mod technology;

pub use array::{ArrayError, GateOp, PimArray};
pub use electrical::{ElectricalModel, OutputPlacement};
pub use fault::{ErrorRates, FaultInjector, FaultSite};
pub use gates::GateKind;
pub use partition::PartitionConfig;
pub use periphery::PeripheryModel;
pub use sliced::{SlicedFaultInjector, SlicedPimArray, LANES};
pub use stats::ArrayStats;
pub use technology::{ResistanceState, Technology, TechnologyParams};
