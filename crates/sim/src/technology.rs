//! Nonvolatile PiM technology models and parameters (Table III of the paper).
//!
//! Three representative in-array computing technologies are modeled:
//! ReRAM (MAGIC-style), STT-MRAM and SOT/SHE-MRAM computational RAM. Memory
//! cells encode logic values in their resistance state; the mapping between
//! resistance level and logic value differs between ReRAM and the MRAM
//! variants (§II-A).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The resistance state of a nonvolatile memory cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ResistanceState {
    /// Low resistance (`R_low` / `R_ON` / `R_P`).
    #[default]
    Low,
    /// High resistance (`R_high` / `R_OFF` / `R_AP`).
    High,
}

impl ResistanceState {
    /// The opposite resistance state.
    pub fn toggled(self) -> Self {
        match self {
            ResistanceState::Low => ResistanceState::High,
            ResistanceState::High => ResistanceState::Low,
        }
    }
}

/// A nonvolatile PiM technology evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technology {
    /// Memristive ReRAM (MAGIC-style stateful logic).
    ReRam,
    /// Spin-transfer-torque MRAM computational RAM.
    SttMram,
    /// Spin-orbit-torque / spin-Hall-effect MRAM computational RAM.
    SotSheMram,
    /// Selector-per-cell (1S1R) ReRAM crossbar — the dense array
    /// organization of the neuromorphic inference literature. Same
    /// resistance-to-logic convention as MAGIC-style ReRAM, but the series
    /// selector raises absolute resistances, slows switching and makes the
    /// technology the canonical host for permanent stuck-at (SA0/SA1)
    /// defects in accuracy-under-fault campaigns.
    ReramCrossbar,
}

impl Technology {
    /// The paper's three technologies, in Table III / Table V order.
    ///
    /// Deliberately excludes [`Technology::ReramCrossbar`]: the stock
    /// `paper_scale` campaign plan iterates this array, and its serialized
    /// bytes (and therefore report digests) must not change when new
    /// technologies land. Use [`Technology::ALL_EXTENDED`] to iterate every
    /// modeled technology.
    pub const ALL: [Technology; 3] = [
        Technology::ReRam,
        Technology::SttMram,
        Technology::SotSheMram,
    ];

    /// Every modeled technology, including post-paper additions.
    pub const ALL_EXTENDED: [Technology; 4] = [
        Technology::ReRam,
        Technology::SttMram,
        Technology::SotSheMram,
        Technology::ReramCrossbar,
    ];

    /// Maps a resistance state to a logic value for this technology.
    ///
    /// STT and SOT/SHE MRAM encode logic 0 in the low-resistance (parallel)
    /// state and logic 1 in the high-resistance state; ReRAM uses the
    /// opposite convention (§II-A).
    pub fn logic_value(self, state: ResistanceState) -> bool {
        match self {
            Technology::ReRam | Technology::ReramCrossbar => state == ResistanceState::Low,
            Technology::SttMram | Technology::SotSheMram => state == ResistanceState::High,
        }
    }

    /// Maps a logic value to the resistance state that encodes it.
    pub fn resistance_for(self, logic: bool) -> ResistanceState {
        if self.logic_value(ResistanceState::Low) == logic {
            ResistanceState::Low
        } else {
            ResistanceState::High
        }
    }

    /// Number of dummy inputs `D` added to NOR gates so that NOR and THR
    /// share a bias-voltage window (Appendix): 4 for STT, 5 for SOT/SHE,
    /// 2 for ReRAM.
    pub fn dummy_inputs(self) -> usize {
        match self {
            Technology::ReRam | Technology::ReramCrossbar => 2,
            Technology::SttMram => 4,
            Technology::SotSheMram => 5,
        }
    }

    /// Default device parameters for this technology (Table III).
    pub fn parameters(self) -> TechnologyParams {
        TechnologyParams::for_technology(self)
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Technology::ReRam => write!(f, "ReRAM"),
            Technology::SttMram => write!(f, "STT-MRAM"),
            Technology::SotSheMram => write!(f, "SOT-MRAM"),
            Technology::ReramCrossbar => write!(f, "ReRAM-Xbar"),
        }
    }
}

/// Accepts both the serialized variant name (`"SttMram"`, what the JSON
/// wire format carries) and the display label (`"STT-MRAM"`), so campaign
/// plans written by hand or round-tripped through JSON both parse.
impl std::str::FromStr for Technology {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ReRam" | "ReRAM" => Ok(Technology::ReRam),
            "SttMram" | "STT-MRAM" => Ok(Technology::SttMram),
            "SotSheMram" | "SOT-MRAM" => Ok(Technology::SotSheMram),
            "ReramCrossbar" | "ReRAM-Xbar" | "reram-crossbar" => Ok(Technology::ReramCrossbar),
            other => Err(format!(
                "unknown technology `{other}` (expected ReRam, SttMram, SotSheMram or ReramCrossbar)"
            )),
        }
    }
}

/// Device and energy parameters of a PiM technology (Table III).
///
/// Resistances are in kΩ, currents in µA, voltages in V, times in ns and
/// energies in fJ, matching the paper's units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechnologyParams {
    /// Technology these parameters describe.
    pub technology: Technology,
    /// Low resistance `R_low` / `R_ON` / `R_P` (kΩ).
    pub r_low_kohm: f64,
    /// High resistance `R_high` / `R_OFF` / `R_AP` (kΩ).
    pub r_high_kohm: f64,
    /// SHE-channel resistance (kΩ), only meaningful for SOT/SHE-MRAM.
    pub r_she_kohm: Option<f64>,
    /// Critical switching current `I_C` (µA), MRAM variants only.
    pub critical_current_ua: Option<f64>,
    /// ReRAM `V_OFF` threshold (V), ReRAM only.
    pub v_off: Option<f64>,
    /// ReRAM `V_ON` threshold (V), ReRAM only.
    pub v_on: Option<f64>,
    /// Switching time / gate delay `t_switch` (ns).
    pub t_switch_ns: f64,
    /// Energy of a (2-input, single-output) NOR gate operation (fJ).
    pub nor_energy_fj: f64,
    /// Energy of a 4-input THR gate operation (fJ).
    pub thr_energy_fj: f64,
    /// Energy of a single-cell write (fJ).
    pub write_energy_fj: f64,
}

impl TechnologyParams {
    /// Table III parameters for `technology`.
    pub fn for_technology(technology: Technology) -> Self {
        match technology {
            Technology::SttMram => Self {
                technology,
                r_low_kohm: 3.15,
                r_high_kohm: 7.34,
                r_she_kohm: None,
                critical_current_ua: Some(50.0),
                v_off: None,
                v_on: None,
                t_switch_ns: 1.0,
                nor_energy_fj: 10.5,
                thr_energy_fj: 11.2,
                write_energy_fj: 1.03,
            },
            Technology::SotSheMram => Self {
                technology,
                r_low_kohm: 253.97,
                r_high_kohm: 507.94,
                r_she_kohm: Some(64.0),
                critical_current_ua: Some(3.0),
                v_off: None,
                v_on: None,
                t_switch_ns: 1.0,
                nor_energy_fj: 2.45,
                thr_energy_fj: 1.31,
                write_energy_fj: 0.01,
            },
            Technology::ReRam => Self {
                technology,
                r_low_kohm: 10.0,
                r_high_kohm: 1000.0,
                r_she_kohm: None,
                critical_current_ua: None,
                v_off: Some(0.3),
                v_on: Some(-1.5),
                t_switch_ns: 1.3,
                nor_energy_fj: 19.68,
                thr_energy_fj: 20.99,
                write_energy_fj: 23.8,
            },
            // 1S1R crossbar ReRAM: the series selector adds resistance in
            // both states (the HRS/LRS ratio is preserved), slows switching
            // and raises per-op energies relative to MAGIC-style ReRAM.
            Technology::ReramCrossbar => Self {
                technology,
                r_low_kohm: 25.0,
                r_high_kohm: 2500.0,
                r_she_kohm: None,
                critical_current_ua: None,
                v_off: Some(0.35),
                v_on: Some(-1.7),
                t_switch_ns: 2.1,
                nor_energy_fj: 26.4,
                thr_energy_fj: 28.3,
                write_energy_fj: 31.5,
            },
        }
    }

    /// Tunneling magnetoresistance ratio `TMR = (R_high − R_low)/R_low`,
    /// meaningful for the MRAM variants (also used by the electrical model).
    pub fn tmr_ratio(&self) -> f64 {
        (self.r_high_kohm - self.r_low_kohm) / self.r_low_kohm
    }

    /// Resistance (kΩ) of a cell in the given state.
    pub fn resistance(&self, state: ResistanceState) -> f64 {
        match state {
            ResistanceState::Low => self.r_low_kohm,
            ResistanceState::High => self.r_high_kohm,
        }
    }

    /// Energy (fJ) of an `n_outputs`-output NOR gate operation.
    ///
    /// Multiple-output gates have a power consumption that grows linearly
    /// with the number of outputs (§IV-D).
    pub fn nor_energy(&self, n_outputs: usize) -> f64 {
        self.nor_energy_fj * n_outputs.max(1) as f64
    }

    /// Energy (fJ) of a THR gate operation.
    pub fn thr_energy(&self) -> f64 {
        self.thr_energy_fj
    }

    /// Energy (fJ) of writing `bits` cells.
    pub fn write_energy(&self, bits: usize) -> f64 {
        self.write_energy_fj * bits as f64
    }

    /// Gate delay (ns) of one in-array logic step (preset + switch).
    pub fn gate_delay_ns(&self) -> f64 {
        self.t_switch_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_encoding_differs_between_reram_and_mram() {
        assert!(Technology::ReRam.logic_value(ResistanceState::Low));
        assert!(!Technology::ReRam.logic_value(ResistanceState::High));
        assert!(!Technology::SttMram.logic_value(ResistanceState::Low));
        assert!(Technology::SttMram.logic_value(ResistanceState::High));
        assert!(Technology::SotSheMram.logic_value(ResistanceState::High));
    }

    #[test]
    fn resistance_for_roundtrip() {
        for tech in Technology::ALL {
            for logic in [false, true] {
                assert_eq!(tech.logic_value(tech.resistance_for(logic)), logic);
            }
        }
    }

    #[test]
    fn table3_values_transcribed() {
        let stt = TechnologyParams::for_technology(Technology::SttMram);
        assert_eq!(stt.r_low_kohm, 3.15);
        assert_eq!(stt.r_high_kohm, 7.34);
        assert_eq!(stt.critical_current_ua, Some(50.0));
        assert_eq!(stt.nor_energy_fj, 10.5);
        assert_eq!(stt.write_energy_fj, 1.03);

        let sot = TechnologyParams::for_technology(Technology::SotSheMram);
        assert_eq!(sot.r_she_kohm, Some(64.0));
        assert_eq!(sot.critical_current_ua, Some(3.0));
        assert_eq!(sot.write_energy_fj, 0.01);

        let reram = TechnologyParams::for_technology(Technology::ReRam);
        assert_eq!(reram.v_off, Some(0.3));
        assert_eq!(reram.v_on, Some(-1.5));
        assert_eq!(reram.t_switch_ns, 1.3);
        assert_eq!(reram.write_energy_fj, 23.8);
    }

    #[test]
    fn tmr_ratio_positive() {
        for tech in Technology::ALL {
            assert!(tech.parameters().tmr_ratio() > 0.0);
        }
    }

    #[test]
    fn multi_output_energy_scales_linearly() {
        let p = Technology::SttMram.parameters();
        assert_eq!(p.nor_energy(1), p.nor_energy_fj);
        assert_eq!(p.nor_energy(3), 3.0 * p.nor_energy_fj);
        assert_eq!(p.nor_energy(0), p.nor_energy_fj); // clamps to 1 output
    }

    #[test]
    fn dummy_inputs_match_appendix() {
        assert_eq!(Technology::SttMram.dummy_inputs(), 4);
        assert_eq!(Technology::SotSheMram.dummy_inputs(), 5);
        assert_eq!(Technology::ReRam.dummy_inputs(), 2);
    }

    #[test]
    fn crossbar_matches_reram_logic_convention_but_not_its_devices() {
        let xbar = Technology::ReramCrossbar;
        assert!(xbar.logic_value(ResistanceState::Low));
        assert_eq!(xbar.dummy_inputs(), Technology::ReRam.dummy_inputs());
        let p = xbar.parameters();
        let reram = Technology::ReRam.parameters();
        assert!(p.r_low_kohm > reram.r_low_kohm);
        assert!(p.t_switch_ns > reram.t_switch_ns);
        // HRS/LRS ratio preserved by the series selector.
        assert_eq!(p.r_high_kohm / p.r_low_kohm, 100.0);
        assert_eq!("ReRAM-Xbar".parse::<Technology>().unwrap(), xbar);
        assert_eq!("ReramCrossbar".parse::<Technology>().unwrap(), xbar);
        // The paper-scale axis is frozen; the extended list appends.
        assert_eq!(Technology::ALL.len(), 3);
        assert_eq!(Technology::ALL_EXTENDED.len(), 4);
        assert_eq!(Technology::ALL_EXTENDED[3], xbar);
        assert!(!Technology::ALL.contains(&xbar));
    }

    #[test]
    fn toggled_is_involution() {
        assert_eq!(
            ResistanceState::Low.toggled().toggled(),
            ResistanceState::Low
        );
        assert_eq!(ResistanceState::High.toggled(), ResistanceState::Low);
    }
}
