//! The fixed phase and counter taxonomy the pipeline is instrumented with.
//!
//! Phases and counters are closed enums rather than string names so the
//! per-thread fold state is a pair of plain `u64` arrays (no hashing, no
//! allocation on the hot path) and so the exposition output enumerates in a
//! single stable order.

/// A named pipeline phase whose wall-clock time is accumulated by span
/// timers.
///
/// The taxonomy covers the full campaign pipeline, from plan intake to
/// report emission. Per-trial phases (fault injection, gate execution,
/// analytic clean settle, estimator redraw) are recorded through the
/// per-thread [`LocalTelemetry`](crate::LocalTelemetry) fold so the sliced
/// hot path never touches a shared atomic per trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Validating the campaign plan before any compilation.
    PlanValidation,
    /// Compiling a kernel schedule on a schedule-cache miss.
    ScheduleCompile,
    /// Serving a kernel schedule from the schedule cache.
    ScheduleCacheHit,
    /// Capturing (and double-probing) the analytic zero-fault clean profile.
    CleanProbe,
    /// Drawing fault positions / resetting injectors for a trial or batch.
    FaultInjection,
    /// Executing compiled gate schedules against the simulated array.
    GateExecution,
    /// Settling a trial or batch analytically via the zero-fault fast path.
    AnalyticCleanSettle,
    /// Redrawing a conditioned trial for the stratified estimator.
    EstimatorRedraw,
    /// Aggregating per-trial outcomes into per-point summaries.
    Aggregation,
    /// Serializing the final report to JSON.
    ReportSerialization,
}

/// Number of phases in the taxonomy (array sizes derive from this).
pub const PHASE_COUNT: usize = 10;

impl Phase {
    /// Every phase, in stable exposition order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::PlanValidation,
        Phase::ScheduleCompile,
        Phase::ScheduleCacheHit,
        Phase::CleanProbe,
        Phase::FaultInjection,
        Phase::GateExecution,
        Phase::AnalyticCleanSettle,
        Phase::EstimatorRedraw,
        Phase::Aggregation,
        Phase::ReportSerialization,
    ];

    /// Stable snake_case name used in exposition output and timing tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::PlanValidation => "plan_validation",
            Phase::ScheduleCompile => "schedule_compile",
            Phase::ScheduleCacheHit => "schedule_cache_hit",
            Phase::CleanProbe => "clean_probe",
            Phase::FaultInjection => "fault_injection",
            Phase::GateExecution => "gate_execution",
            Phase::AnalyticCleanSettle => "analytic_clean_settle",
            Phase::EstimatorRedraw => "estimator_redraw",
            Phase::Aggregation => "aggregation",
            Phase::ReportSerialization => "report_serialization",
        }
    }

    /// Dense array index of this phase.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A first-class event counter maintained alongside the phase timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Trials settled by the analytic zero-fault fast path (PR 6) without
    /// executing any gates.
    CleanSettledTrials,
    /// Whole 64-lane batches settled by the analytic zero-fault fast path.
    CleanSettledBatches,
    /// Trials (or lanes) whose fault draw was redrawn/conditioned by the
    /// stratified estimator.
    EstimatorRedraws,
    /// Trials fully executed (including analytically settled ones).
    TrialsExecuted,
    /// Schedule-cache compilations (misses).
    ScheduleCompiles,
    /// Schedule-cache hits.
    ScheduleCacheHits,
    /// Job attempts retried after a contained panic (service layer).
    JobRetries,
    /// Terminal jobs restored from the durable journal on daemon startup.
    RecoveredJobs,
    /// Checkpointed chunks whose outcomes were resumed (not recomputed)
    /// when an in-flight campaign was restarted from the journal.
    ResumedChunks,
    /// Journal records successfully replayed on daemon startup.
    JournalRecordsReplayed,
    /// Shards handed to a replacement worker after their original worker
    /// died, stalled past its heartbeat deadline, or disconnected.
    ShardsReassigned,
    /// Workers evicted from a coordinator fleet after a missed heartbeat
    /// deadline or transport failure.
    WorkerEvictions,
    /// Heartbeat deadlines missed by fleet workers (a worker may miss
    /// several before the campaign ends).
    HeartbeatMisses,
}

/// Number of counters in the taxonomy (array sizes derive from this).
pub const COUNTER_COUNT: usize = 13;

impl Counter {
    /// Every counter, in stable exposition order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::CleanSettledTrials,
        Counter::CleanSettledBatches,
        Counter::EstimatorRedraws,
        Counter::TrialsExecuted,
        Counter::ScheduleCompiles,
        Counter::ScheduleCacheHits,
        Counter::JobRetries,
        Counter::RecoveredJobs,
        Counter::ResumedChunks,
        Counter::JournalRecordsReplayed,
        Counter::ShardsReassigned,
        Counter::WorkerEvictions,
        Counter::HeartbeatMisses,
    ];

    /// Stable snake_case name used in exposition output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::CleanSettledTrials => "clean_settled_trials",
            Counter::CleanSettledBatches => "clean_settled_batches",
            Counter::EstimatorRedraws => "estimator_redraws",
            Counter::TrialsExecuted => "trials_executed",
            Counter::ScheduleCompiles => "schedule_compiles",
            Counter::ScheduleCacheHits => "schedule_cache_hits",
            Counter::JobRetries => "job_retries",
            Counter::RecoveredJobs => "recovered_jobs",
            Counter::ResumedChunks => "resumed_chunks",
            Counter::JournalRecordsReplayed => "journal_records_replayed",
            Counter::ShardsReassigned => "shards_reassigned",
            Counter::WorkerEvictions => "worker_evictions",
            Counter::HeartbeatMisses => "heartbeat_misses",
        }
    }

    /// Dense array index of this counter.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_all_order() {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
        for (i, counter) in Counter::ALL.iter().enumerate() {
            assert_eq!(counter.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.extend(Counter::ALL.iter().map(|c| c.name()));
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
    }
}
