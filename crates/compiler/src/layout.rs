//! Row layout: how the 256 columns of a PiM row are split between operand
//! staging, scratch space for computation, and error-correction metadata
//! (§III-B's row-wise check-symbol layout and §IV-C's parity blocks).

use serde::{Deserialize, Serialize};

/// The column budget of a single PiM row, under the paper's iso-area
/// constraint: protected designs must fit computation *and* their metadata
/// in the same row width as the unprotected baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowLayout {
    /// Total columns in the row (256 in the paper's arrays).
    pub total_columns: usize,
    /// Columns reserved for ECC metadata: the running parity bits plus the
    /// left/right parity pipeline blocks for ECiM, or zero for TRiM (whose
    /// redundant copies live with each value) and for the unprotected
    /// baseline.
    pub metadata_columns: usize,
    /// Number of cells every computed value occupies: 1 for the baseline and
    /// ECiM, 3 for TRiM (the value plus its two redundant copies, §IV-D).
    pub cells_per_value: usize,
}

impl RowLayout {
    /// Layout of the unprotected iso-area baseline.
    pub fn unprotected(total_columns: usize) -> Self {
        Self {
            total_columns,
            metadata_columns: 0,
            cells_per_value: 1,
        }
    }

    /// Columns available as scratch space for computation.
    ///
    /// # Panics
    ///
    /// Panics if the metadata does not fit in the row.
    pub fn scratch_columns(&self) -> usize {
        assert!(
            self.metadata_columns < self.total_columns,
            "metadata ({}) must leave scratch space in a {}-column row",
            self.metadata_columns,
            self.total_columns
        );
        self.total_columns - self.metadata_columns
    }

    /// Number of distinct *values* the scratch region can hold at once.
    pub fn value_capacity(&self) -> usize {
        self.scratch_columns() / self.cells_per_value.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_uses_every_column() {
        let l = RowLayout::unprotected(256);
        assert_eq!(l.scratch_columns(), 256);
        assert_eq!(l.value_capacity(), 256);
    }

    #[test]
    fn metadata_reduces_scratch() {
        let l = RowLayout {
            total_columns: 256,
            metadata_columns: 40,
            cells_per_value: 1,
        };
        assert_eq!(l.scratch_columns(), 216);
        assert_eq!(l.value_capacity(), 216);
    }

    #[test]
    fn redundant_copies_divide_capacity() {
        let l = RowLayout {
            total_columns: 256,
            metadata_columns: 0,
            cells_per_value: 3,
        };
        assert_eq!(l.value_capacity(), 85);
    }

    #[test]
    #[should_panic(expected = "must leave scratch space")]
    fn metadata_cannot_consume_whole_row() {
        RowLayout {
            total_columns: 64,
            metadata_columns: 64,
            cells_per_value: 1,
        }
        .scratch_columns();
    }
}
