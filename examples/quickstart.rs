//! Quickstart: build a small fixed-point circuit, run it inside a simulated
//! nonvolatile PiM array with and without protection, inject computation
//! errors, and estimate the paper's headline overheads.
//!
//! Run with: `cargo run --release --example quickstart`

use nvpim::compiler::builder::CircuitBuilder;
use nvpim::compiler::schedule::map_netlist;
use nvpim::core::config::DesignConfig;
use nvpim::core::executor::ProtectedExecutor;
use nvpim::core::system::{compare, evaluate, WorkloadShape};
use nvpim::sim::array::PimArray;
use nvpim::sim::fault::{ErrorRates, FaultInjector};
use nvpim::sim::technology::Technology;

fn to_bits(value: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

fn from_bits(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a multiply-accumulate (acc + x*y) to the PiM-native
    //    NOR/THR gate library.
    let mut b = CircuitBuilder::new();
    let acc = b.input_word(8);
    let x = b.input_word(4);
    let y = b.input_word(4);
    let out = b.mac(&acc, &x, &y);
    b.mark_output_word(&out);
    let netlist = b.finish();
    println!(
        "synthesized MAC: {} NOR/THR gates, {} logic levels",
        netlist.gate_count(),
        netlist.stats().depth
    );

    let mut inputs = to_bits(100, 8);
    inputs.extend(to_bits(9, 4));
    inputs.extend(to_bits(13, 4));
    let expected = 100 + 9 * 13;

    // 2. Run it unprotected and under ECiM, with computation-induced errors.
    let tech = Technology::SttMram;
    let rates = ErrorRates {
        gate: 0.001,
        ..ErrorRates::NONE
    };
    for config in [DesignConfig::unprotected(tech), DesignConfig::ecim(tech)] {
        let executor = ProtectedExecutor::new(config.clone());
        let schedule = map_netlist(&netlist, config.row_layout())?;
        let mut correct = 0;
        let mut detected = 0;
        for seed in 0..50u64 {
            let mut array =
                PimArray::standard(tech).with_fault_injector(FaultInjector::new(rates, seed));
            let report = executor.run(&netlist, &schedule, &mut array, 0, &inputs)?;
            if from_bits(&report.outputs) == expected {
                correct += 1;
            }
            detected += report.errors_detected;
        }
        println!(
            "{:<24} correct results: {correct}/50, errors detected by the Checker: {detected}",
            config.label()
        );
    }

    // 3. Estimate the iso-area overheads the paper reports (Fig. 7 / Table V).
    let shape = WorkloadShape::new("quickstart-mac", 256, 1);
    let baseline = evaluate(&netlist, &shape, &DesignConfig::unprotected(tech))?;
    for config in [DesignConfig::ecim(tech), DesignConfig::trim(tech)] {
        let est = evaluate(&netlist, &shape, &config)?;
        let overhead = compare(&est, &baseline);
        println!(
            "{:<24} time overhead: {:>5.1}%   energy overhead: {:>5.2}x   area reclaims: {}",
            config.label(),
            overhead.time_overhead_pct,
            overhead.energy_overhead,
            overhead.reclaims
        );
    }
    Ok(())
}
