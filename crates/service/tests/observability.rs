//! Service observability: the `metrics` exposition, the `stats`
//! latency/counter extensions, the `trials_per_sec` null semantics and the
//! opt-in NDJSON event log.

use std::sync::Arc;
use std::time::Duration;

use nvpim_service::protocol::{dispatch, Outcome};
use nvpim_service::service::{ServiceConfig, ServiceHandle};
use nvpim_sweep::SweepPlan;
use serde::Value;

fn tiny_plan(seed: u64) -> SweepPlan {
    let mut plan = SweepPlan::quick();
    plan.seeds_per_point = 2;
    plan.campaign_seed = seed;
    plan
}

/// Dispatches one request line against the in-process handle (the same
/// code path the TCP server runs) and returns the response lines.
fn roundtrip(service: &ServiceHandle, line: &str) -> Vec<Value> {
    let mut out = Vec::new();
    let outcome = dispatch(service, line, &mut |v| {
        out.push(v.clone());
        Ok(())
    })
    .expect("in-memory sink never fails");
    assert_eq!(outcome, Outcome::Continue);
    out
}

/// Extracts the value of a plain (unlabeled) series from Prometheus text.
fn series_value(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()).is_some_and(|b| *b == b' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn fresh_service_reports_null_rate_and_no_latency_data() {
    let service = ServiceHandle::start(ServiceConfig {
        workers: 1,
        ..Default::default()
    });
    let stats = service.stats();
    assert_eq!(
        stats.trials_per_sec, None,
        "a service that never ran a trial has no rate, not a rate of 0"
    );
    assert!(stats.queue_wait.is_none() && stats.run_latency.is_none());
    // On the wire the distinction is `null`, not `0.0`.
    let lines = roundtrip(&service, r#"{"cmd":"stats"}"#);
    let stats_json = serde_json::to_string(&lines[0]).expect("serialize");
    assert!(
        stats_json.contains("\"trials_per_sec\":null"),
        "wire stats must carry null, got: {stats_json}"
    );
    service.shutdown();
}

#[test]
fn metrics_round_trip_exposes_core_series_and_stays_monotone() {
    let service = ServiceHandle::start(ServiceConfig {
        workers: 1,
        ..Default::default()
    });
    let plan = tiny_plan(90);
    let trials = plan.trial_count();
    let submitted = service.submit(plan, 0).unwrap();
    service.wait(submitted.job, None).unwrap();

    let lines = roundtrip(&service, r#"{"cmd":"metrics"}"#);
    assert_eq!(lines.len(), 1);
    let text = lines[0]
        .get("metrics")
        .and_then(Value::as_str)
        .expect("metrics payload is text")
        .to_string();

    // Service-level series.
    assert_eq!(series_value(&text, "nvpim_jobs_completed_total"), Some(1.0));
    assert_eq!(
        series_value(&text, "nvpim_service_trials_executed_total"),
        Some(trials as f64)
    );
    // Engine-level series flow through the shared sink.
    assert_eq!(
        series_value(&text, "nvpim_trials_executed_total"),
        Some(trials as f64)
    );
    assert!(text.contains("nvpim_phase_nanos_total{phase=\"gate_execution\"}"));
    assert!(text.contains("nvpim_phase_spans_total{phase=\"plan_validation\"}"));
    assert!(text.contains("nvpim_clean_settled_trials_total"));
    // Per-scheme / per-backend labeled trial counters.
    assert!(
        text.contains("nvpim_trials_by_backend{backend=\"sliced\"}"),
        "missing backend series in:\n{text}"
    );
    assert!(text.contains("nvpim_trials_by_scheme{scheme="));
    // Latency summaries render as quantile series once data exists.
    assert!(text.contains("nvpim_queue_wait_ns{quantile=\"0.5\"}"));
    assert!(text.contains("nvpim_run_latency_ns{quantile=\"0.99\"}"));

    // Monotonicity: a second campaign only moves counters up.
    let again = service.submit(tiny_plan(91), 0).unwrap();
    service.wait(again.job, None).unwrap();
    let text2 = roundtrip(&service, r#"{"cmd":"metrics"}"#)[0]
        .get("metrics")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    for name in [
        "nvpim_jobs_completed_total",
        "nvpim_service_trials_executed_total",
        "nvpim_trials_executed_total",
        "nvpim_jobs_submitted_total",
    ] {
        let before = series_value(&text, name).unwrap();
        let after = series_value(&text2, name).unwrap();
        assert!(
            after > before,
            "{name} must be monotone: {before} -> {after}"
        );
    }

    let stats = service.stats();
    assert_eq!(stats.queue_wait.as_ref().map(|s| s.count), Some(2));
    assert_eq!(stats.run_latency.as_ref().map(|s| s.count), Some(2));
    assert!(stats.trials_per_sec.unwrap_or(0.0) > 0.0);
    service.shutdown();
}

#[test]
fn event_log_records_the_job_lifecycle_as_valid_ndjson() {
    let log_path = std::env::temp_dir().join(format!(
        "nvpim-events-{}-{:?}.ndjson",
        std::process::id(),
        std::thread::current().id()
    ));
    let service = ServiceHandle::start(ServiceConfig {
        workers: 1,
        chunk_trials: 4,
        log_json: Some(log_path.clone()),
        ..Default::default()
    });
    let submitted = service.submit(tiny_plan(92), 0).unwrap();
    service.wait(submitted.job, None).unwrap();
    // A cache hit also logs its submission.
    let cached = service.submit(tiny_plan(92), 0).unwrap();
    assert!(cached.cached);
    service.shutdown();

    let text = std::fs::read_to_string(&log_path).expect("event log was written");
    let _ = std::fs::remove_file(&log_path);
    let events: Vec<Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("every event line is valid JSON"))
        .collect();
    assert!(events.len() >= 4, "expected a full lifecycle, got:\n{text}");

    let kinds: Vec<&str> = events
        .iter()
        .map(|e| e.get("event").and_then(Value::as_str).unwrap())
        .collect();
    assert_eq!(kinds.iter().filter(|k| **k == "submitted").count(), 2);
    assert!(kinds.contains(&"running"));
    assert!(kinds.contains(&"chunk"));
    assert_eq!(*kinds.last().unwrap(), "submitted", "cached submit is last");
    assert!(kinds.contains(&"done"));

    // Every event carries the standard envelope; all first-job events
    // share one trace id, and `seq` strictly increases.
    let trace = events[0].get("trace").and_then(Value::as_str).unwrap();
    assert!(trace.starts_with(&format!("job-{}-", submitted.job)));
    let mut last_seq = None;
    for event in &events {
        assert!(event.get("ts_ms").and_then(Value::as_u64).is_some());
        let seq = event.get("seq").and_then(Value::as_u64).unwrap();
        assert!(Some(seq) > last_seq, "seq must strictly increase");
        last_seq = Some(seq);
    }
    for event in events.iter().take(events.len() - 1) {
        assert_eq!(event.get("trace").and_then(Value::as_str), Some(trace));
    }
}

#[test]
fn cancelled_jobs_emit_a_cancelled_event() {
    let log_path =
        std::env::temp_dir().join(format!("nvpim-events-cancel-{}.ndjson", std::process::id()));
    let service = ServiceHandle::start(ServiceConfig {
        workers: 1,
        chunk_trials: 1,
        log_json: Some(log_path.clone()),
        ..Default::default()
    });
    let mut plan = tiny_plan(93);
    plan.seeds_per_point = 64;
    let submitted = service.submit(plan, 0).unwrap();
    while service.status(submitted.job).unwrap().state == "queued" {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(service.cancel(submitted.job).unwrap());
    let _ = service.wait(submitted.job, Some(Duration::from_secs(30)));
    service.shutdown();

    let text = std::fs::read_to_string(&log_path).expect("event log was written");
    let _ = std::fs::remove_file(&log_path);
    assert!(
        text.lines().any(|l| {
            let v: Value = serde_json::from_str(l).expect("valid JSON");
            v.get("event").and_then(Value::as_str) == Some("cancelled")
        }),
        "expected a cancelled event in:\n{text}"
    );
}

#[test]
fn coalesced_submissions_trace_back_to_the_primary_job() {
    let log_path = std::env::temp_dir().join(format!(
        "nvpim-events-coalesce-{}.ndjson",
        std::process::id()
    ));
    let service = ServiceHandle::start(ServiceConfig {
        workers: 1,
        chunk_trials: 1,
        log_json: Some(log_path.clone()),
        ..Default::default()
    });
    // Occupy the single worker so the next two submissions coalesce
    // while the first is queued or running.
    let mut blocker = tiny_plan(94);
    blocker.seeds_per_point = 64;
    let first = service.submit(blocker.clone(), 0).unwrap();
    let second = service.submit(blocker, 0).unwrap();
    assert!(second.coalesced);
    let a = service.wait(first.job, None).unwrap();
    let b = service.wait(second.job, None).unwrap();
    assert!(Arc::ptr_eq(&a, &b));
    service.shutdown();

    let text = std::fs::read_to_string(&log_path).expect("event log was written");
    let _ = std::fs::remove_file(&log_path);
    let coalesced: Vec<Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("valid JSON"))
        .filter(|v: &Value| v.get("event").and_then(Value::as_str) == Some("coalesced"))
        .collect();
    assert_eq!(coalesced.len(), 1);
    assert_eq!(
        coalesced[0].get("onto_job").and_then(Value::as_u64),
        Some(first.job)
    );
}
