//! `nvpim-serviced` — the campaign daemon.
//!
//! ```text
//! nvpim-serviced [--addr HOST:PORT] [--workers N] [--queue-capacity N] [--chunk-trials N]
//!                [--backend scalar|sliced] [--log-json PATH]
//! ```
//!
//! Binds the address (default `127.0.0.1:7171`; use port `0` for an
//! OS-assigned port), prints `nvpim-serviced listening on <addr>`, and
//! serves the NDJSON protocol until a client sends `{"cmd":"shutdown"}`.

use nvpim_service::flags::value_of;
use nvpim_service::service::{ServiceConfig, ServiceHandle};

fn numeric_arg(args: &[String], flag: &str, default: usize) -> usize {
    match value_of(args, flag) {
        None => default,
        Some(text) => text.parse().unwrap_or_else(|_| {
            eprintln!("nvpim-serviced: {flag} expects a number, got `{text}`");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "nvpim-serviced [--addr HOST:PORT] [--workers N] [--queue-capacity N] \
             [--chunk-trials N] [--backend scalar|sliced] [--log-json PATH]\n\n  \
             --log-json PATH  append one NDJSON event per job transition/chunk to PATH"
        );
        return;
    }
    let addr = value_of(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let defaults = ServiceConfig::default();
    let backend = match value_of(&args, "--backend") {
        None => defaults.backend,
        Some(text) => text.parse().unwrap_or_else(|e| {
            eprintln!("nvpim-serviced: {e}");
            std::process::exit(2);
        }),
    };
    let log_json = value_of(&args, "--log-json").map(std::path::PathBuf::from);
    let cfg = ServiceConfig {
        workers: numeric_arg(&args, "--workers", defaults.workers),
        queue_capacity: numeric_arg(&args, "--queue-capacity", defaults.queue_capacity),
        chunk_trials: numeric_arg(&args, "--chunk-trials", defaults.chunk_trials),
        backend,
        log_json,
        ..defaults
    };
    let service = ServiceHandle::start(cfg);
    if let Err(e) = nvpim_service::run_server(&addr, &service) {
        eprintln!("nvpim-serviced: {e}");
        std::process::exit(1);
    }
}
