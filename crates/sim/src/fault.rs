//! Fault models and fault injection (§II-C of the paper).
//!
//! The paper's error model targets *direct* soft errors: faults induced by
//! intended operations — an in-array gate whose output fails to switch (or
//! switches spuriously), a faulty write, or a bit flip in a stored cell.
//! Regardless of physical origin (thermal noise, retention failure, TMR-ratio
//! variation, oxygen-vacancy diffusion, …), these manifest as single bit
//! flips, uniformly distributed across the array during row-parallel
//! computation. Optional spatial and temporal correlation knobs model the
//! correlated-error discussion of §IV-E.

use rand::Rng;
use rand::RngCore;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The kind of operation a fault can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// Output of an in-array Boolean gate operation (a *logic* error).
    GateOutput,
    /// A cell being written through the normal write path.
    Write,
    /// A cell being read (sensing error).
    Read,
    /// A cell at rest (retention / storage error).
    Retention,
}

/// Per-operation bit-flip probabilities, plus the permanent-defect density.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorRates {
    /// Probability that a gate operation produces a flipped output bit.
    pub gate: f64,
    /// Probability that a write stores the flipped value.
    pub write: f64,
    /// Probability that a read senses the flipped value.
    pub read: f64,
    /// Probability (per cell, per check interval) of a retention flip.
    pub retention: f64,
    /// Probability that any given cell is a permanent stuck-at defect
    /// (SA0 or SA1 with equal probability). Unlike the transient rates
    /// above this is a per-*cell* density, not a per-operation one: the
    /// defect map is fixed for the whole trial and derived by hashing
    /// `(row, col)` against the trial's defect seed, so it consumes no
    /// RNG stream state (see [`stuck_at_state`]).
    pub stuck_at: f64,
}

impl ErrorRates {
    /// No faults at all (functional-validation mode).
    pub const NONE: ErrorRates = ErrorRates {
        gate: 0.0,
        write: 0.0,
        read: 0.0,
        retention: 0.0,
        stuck_at: 0.0,
    };

    /// A uniform single-error regime: the same probability on every
    /// *transient* site (permanent stuck-at defects stay disabled — they
    /// are a device property, not an operation error).
    pub fn uniform(p: f64) -> Self {
        Self {
            gate: p,
            write: p,
            read: p,
            retention: p,
            stuck_at: 0.0,
        }
    }

    /// Returns a copy with the given permanent stuck-at cell density.
    pub fn with_stuck_at(mut self, density: f64) -> Self {
        self.stuck_at = density;
        self
    }

    /// Rate for a given fault site.
    pub fn for_site(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::GateOutput => self.gate,
            FaultSite::Write => self.write,
            FaultSite::Read => self.read,
            FaultSite::Retention => self.retention,
        }
    }
}

impl Default for ErrorRates {
    fn default() -> Self {
        ErrorRates::NONE
    }
}

/// SplitMix64 finalizer — the stateless mixing function behind the
/// per-trial stuck-at defect maps. Kept in the sim crate (rather than
/// reusing the sweep engine's seed mixer) so the scalar and lane-parallel
/// injectors are equivalent by construction: both call this exact function.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Domain-separation salt between a trial's transient fault seed and its
/// permanent-defect map seed.
const STUCK_SALT: u64 = 0x5AD0_DEFE_C7A6_3A1B;

/// Derives the defect-map seed for a trial from its fault-stream seed.
/// Pure function — the ChaCha8 transient stream is untouched, so enabling
/// stuck-at defects never perturbs the transient fault sequence.
#[inline]
pub fn stuck_defect_seed(trial_fault_seed: u64) -> u64 {
    splitmix64(trial_fault_seed ^ STUCK_SALT)
}

/// Maps a stuck-at cell density to the 64-bit hash threshold under which a
/// cell's hash marks it defective.
#[inline]
pub fn stuck_threshold(density: f64) -> u64 {
    if density <= 0.0 {
        0
    } else if density >= 1.0 {
        u64::MAX
    } else {
        (density * u64::MAX as f64) as u64
    }
}

/// The permanent-defect status of cell (`row`, `col`) under a trial's
/// defect map: `Some(v)` means the cell is stuck at logic value `v`
/// (SA0/SA1), `None` means the cell is healthy.
///
/// O(1) and stateless: defective iff `h(seed, row, col) < threshold`, and
/// the stuck polarity comes from a *second* hash of `h` (so polarity is
/// independent of the magnitude comparison that selected the cell —
/// deriving it from `h`'s low bit would bias defective cells toward SA0).
#[inline]
pub fn stuck_at_state(defect_seed: u64, threshold: u64, row: usize, col: usize) -> Option<bool> {
    if threshold == 0 {
        return None;
    }
    let h = splitmix64(defect_seed ^ (((row as u64) << 32) | (col as u64 & 0xFFFF_FFFF)));
    if h < threshold {
        Some(splitmix64(h) & 1 == 1)
    } else {
        None
    }
}

/// Correlation model for injected errors (§IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CorrelationModel {
    /// When a fault fires, also flip up to this many *spatially adjacent*
    /// outputs in the same row (0 = independent errors).
    pub spatial_burst: usize,
    /// When a fault fires, multiply the fault probability of the next
    /// `temporal_window` operations in the same row by `temporal_factor`
    /// (models back-to-back errors).
    pub temporal_window: usize,
    /// Multiplier applied during a temporal burst window.
    pub temporal_factor: f64,
}

/// A single injected fault, for logging and analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// Where the fault struck.
    pub site: FaultSite,
    /// Array row.
    pub row: usize,
    /// Array column.
    pub col: usize,
    /// Simulation step at which it was injected.
    pub step: u64,
}

/// How the injector turns per-operation fault probabilities into decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultSampling {
    /// Geometric skip-ahead sampling (the default): one RNG draw per
    /// *injected fault* picks the index of the next faulting operation, and
    /// the operations in between only decrement a counter. At paper-regime
    /// rates (~1e-4) this removes ~99.99% of the RNG work while producing
    /// exactly the same Bernoulli(p) marginal per operation.
    #[default]
    SkipAhead,
    /// One Bernoulli draw per operation — the pre-optimization behavior,
    /// kept as a reference for statistical-equivalence tests and as the
    /// baseline mode of the `trial_throughput` benchmark.
    PerOp,
}

/// Pending skip-ahead state for one fault site: `remaining` clean
/// operations will pass (at probability `p` each) before the next fault.
#[derive(Debug, Clone, Copy)]
struct PendingSkip {
    p: f64,
    remaining: u64,
}

/// A deterministic, seedable fault injector.
///
/// The injector is consulted by the array on every gate output, write and
/// read; it decides whether the produced bit is flipped, and keeps a log of
/// every injected fault so tests and experiments can verify coverage claims.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rates: ErrorRates,
    correlation: CorrelationModel,
    rng: ChaCha8Rng,
    step: u64,
    temporal_boost_remaining: usize,
    log: Vec<InjectedFault>,
    sampling: FaultSampling,
    /// Skip-ahead state per [`FaultSite`] (indexed by `site_index`).
    skips: [Option<PendingSkip>; 4],
    /// Fault decisions made per [`FaultSite`] (indexed by `site_index`).
    /// Counted in every sampling mode, at every rate — including zero — so
    /// a fault-free probe run measures exactly how many decisions a real
    /// trial at the same design point will face per site.
    decisions: [u64; 4],
    /// Hash threshold of the permanent stuck-at defect map (0 = no defects).
    stuck_threshold: u64,
    /// Seed of the trial's defect map (see [`stuck_defect_seed`]).
    defect_seed: u64,
}

impl FaultInjector {
    /// Creates an injector with the given rates and a fixed seed.
    pub fn new(rates: ErrorRates, seed: u64) -> Self {
        Self {
            rates,
            correlation: CorrelationModel::default(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            step: 0,
            temporal_boost_remaining: 0,
            log: Vec::new(),
            sampling: FaultSampling::default(),
            skips: [None; 4],
            decisions: [0; 4],
            stuck_threshold: stuck_threshold(rates.stuck_at),
            defect_seed: stuck_defect_seed(seed),
        }
    }

    /// Creates an injector that never injects faults.
    pub fn disabled() -> Self {
        Self::new(ErrorRates::NONE, 0)
    }

    /// Sets the correlation model.
    pub fn with_correlation(mut self, correlation: CorrelationModel) -> Self {
        self.correlation = correlation;
        self
    }

    /// Switches to per-operation Bernoulli sampling (the reference mode).
    pub fn with_per_op_sampling(mut self) -> Self {
        self.sampling = FaultSampling::PerOp;
        self
    }

    /// The sampling strategy in use.
    pub fn sampling(&self) -> FaultSampling {
        self.sampling
    }

    /// Re-seeds the injector in place for a fresh trial: new rates, a fresh
    /// RNG stream, cleared log (keeping its allocation), step 0, and no
    /// pending skip state. Equivalent to `FaultInjector::new(rates, seed)`
    /// with the same sampling mode and correlation model.
    pub fn reset(&mut self, rates: ErrorRates, seed: u64) {
        self.rates = rates;
        self.rng = ChaCha8Rng::seed_from_u64(seed);
        self.step = 0;
        self.temporal_boost_remaining = 0;
        self.log.clear();
        self.skips = [None; 4];
        self.decisions = [0; 4];
        self.stuck_threshold = stuck_threshold(rates.stuck_at);
        self.defect_seed = stuck_defect_seed(seed);
    }

    /// Whether this trial's defect map contains any stuck-at cells in
    /// principle (`rates.stuck_at > 0`). Array fast paths that bypass
    /// per-cell injector consultation at zero transient rates must take
    /// the per-cell path when this holds.
    pub fn has_defects(&self) -> bool {
        self.stuck_threshold != 0
    }

    /// The permanent-defect status of (`row`, `col`) under this trial's
    /// defect map — `Some(v)` when the cell is stuck at `v`. Stateless:
    /// consumes no RNG and may be queried at any time.
    pub fn stuck_value(&self, row: usize, col: usize) -> Option<bool> {
        stuck_at_state(self.defect_seed, self.stuck_threshold, row, col)
    }

    /// The configured error rates.
    pub fn rates(&self) -> &ErrorRates {
        &self.rates
    }

    /// Advances the logical time step (one per array-level operation batch).
    pub fn advance_step(&mut self) {
        self.step += 1;
        self.temporal_boost_remaining = self.temporal_boost_remaining.saturating_sub(1);
    }

    /// Current logical step.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Decides whether a bit produced at (`row`, `col`) by `site` is flipped,
    /// returning the possibly-corrupted value.
    pub fn apply(&mut self, site: FaultSite, row: usize, col: usize, value: bool) -> bool {
        self.decisions[Self::site_index(site)] += 1;
        let mut p = self.rates.for_site(site);
        if self.temporal_boost_remaining > 0 {
            p = (p * self.correlation.temporal_factor).min(1.0);
        }
        let faulted = match self.sampling {
            FaultSampling::PerOp => p > 0.0 && self.rng.gen_bool(p),
            FaultSampling::SkipAhead => self.skip_decide(Self::site_index(site), p),
        };
        if faulted {
            self.log.push(InjectedFault {
                site,
                row,
                col,
                step: self.step,
            });
            if self.correlation.temporal_window > 0 {
                self.temporal_boost_remaining = self.correlation.temporal_window;
            }
        }
        let produced = if faulted { !value } else { value };
        // Permanent defects override whatever a *storing* operation tried
        // to leave in the cell — the transient decision above still runs
        // first (and consumes exactly its usual RNG state), so enabling
        // stuck-at never perturbs the transient fault stream. Reads report
        // the stored value faithfully (the stuck value was pinned when the
        // cell was last written), so sensing sites are not overridden.
        if self.stuck_threshold != 0 && matches!(site, FaultSite::GateOutput | FaultSite::Write) {
            if let Some(stuck) = self.stuck_value(row, col) {
                return stuck;
            }
        }
        produced
    }

    #[inline]
    fn site_index(site: FaultSite) -> usize {
        match site {
            FaultSite::GateOutput => 0,
            FaultSite::Write => 1,
            FaultSite::Read => 2,
            FaultSite::Retention => 3,
        }
    }

    /// Skip-ahead decision for one operation at probability `p`.
    ///
    /// The pending counter for a site is valid only for the probability it
    /// was sampled under; when `p` changes (e.g. a temporal-correlation
    /// boost window opens or closes) the counter is *discarded* and a fresh
    /// `Geometric(p)` skip is sampled. This is unbiased, not an
    /// approximation: a pending skip sampled at the old rate says only that
    /// no fault has fired yet, and the geometric distribution is memoryless
    /// — conditioned on "no fault so far", the number of further clean
    /// operations at the *new* per-op rate `p` is distributed exactly
    /// `Geometric(p)`, which is precisely what the resample draws. So every
    /// operation faults with exactly its own per-op probability, whatever
    /// rate the operations around it ran at (the alternating-rate
    /// statistical test below asserts this). Carrying the residual count
    /// across the change would instead keep the *old* rate's tail for the
    /// remainder of the skip — that is the biased option.
    ///
    /// Operations at `p == 0` pass through without consuming skip state —
    /// by the same memorylessness, pausing and resuming a counter preserves
    /// the Bernoulli(p) marginal exactly.
    #[inline]
    fn skip_decide(&mut self, site_idx: usize, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            self.skips[site_idx] = None;
            return true;
        }
        let needs_sample = !matches!(self.skips[site_idx], Some(s) if s.p == p);
        if needs_sample {
            let remaining = Self::sample_geometric(&mut self.rng, p);
            self.skips[site_idx] = Some(PendingSkip { p, remaining });
        }
        let pending = self.skips[site_idx]
            .as_mut()
            .expect("skip state just ensured");
        if pending.remaining == 0 {
            pending.remaining = Self::sample_geometric(&mut self.rng, p);
            true
        } else {
            pending.remaining -= 1;
            false
        }
    }

    /// Number of clean operations before the next fault: a geometric sample
    /// `floor(ln(1 − u) / ln(1 − p))` with `u` uniform in `[0, 1)`, which
    /// makes each operation fault with exactly probability `p`.
    ///
    /// Hardened against subnormal `p`: `ln_1p(-p)` can underflow to `-0.0`,
    /// making the quotient `NaN` (when `u` draws 0) or `+∞`. A float → int
    /// cast saturates `NaN` to **0**, which would turn a practically-zero
    /// rate into a fault on *every* operation; both non-finite cases mean
    /// "no fault in any reachable horizon" and map to `u64::MAX`.
    ///
    /// `pub(crate)` so the lane-parallel injector
    /// ([`crate::sliced::SlicedFaultInjector`]) draws the *identical*
    /// skip distribution from each lane's RNG stream.
    #[inline]
    pub(crate) fn sample_geometric(rng: &mut ChaCha8Rng, p: f64) -> u64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let skip = (1.0 - u).ln() / (-p).ln_1p();
        if skip.is_nan() || skip >= u64::MAX as f64 {
            u64::MAX
        } else {
            skip as u64
        }
    }

    /// A geometric sample conditioned on landing within the next `window`
    /// decisions: the distribution of "clean operations before the next
    /// fault" *given* that at least one fault occurs in `window` operations.
    ///
    /// Inversion sampling on the truncated CDF: with `P₁ = 1 − (1 − p)^w`
    /// the sample is `floor(ln(1 − u·P₁) / ln(1 − p))`, so
    /// `P(S = s) = (1 − p)^s · p / P₁` for `s ∈ [0, w)` — exactly the
    /// unconditional geometric probability rescaled by `P₁`, which is what
    /// makes the stratified estimator's reweighting unbiased. Consumes one
    /// RNG draw, like [`Self::sample_geometric`]. The `min` clamp guards
    /// the floating-point edge where the quotient rounds up to `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `p` is outside `(0, 1)` — callers gate on
    /// a nondegenerate regime.
    pub fn sample_truncated_geometric(rng: &mut ChaCha8Rng, p: f64, window: u64) -> u64 {
        assert!(window > 0, "conditioning window must be nonempty");
        assert!(
            p > 0.0 && p < 1.0,
            "truncated-geometric sampling needs p in (0, 1), got {p}"
        );
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let log_q = (-p).ln_1p();
        let p1 = -f64::exp_m1(window as f64 * log_q);
        let skip = f64::ln_1p(-u * p1) / log_q;
        if skip.is_nan() {
            return 0;
        }
        (skip as u64).min(window - 1)
    }

    /// Probability that at least one fault fires over `window` decisions at
    /// per-op rate `p`: `1 − (1 − p)^window`, computed in log space so
    /// paper-regime values (`window·p ≪ 1`) keep full precision.
    pub fn fault_within_probability(p: f64, window: u64) -> f64 {
        if window == 0 || p <= 0.0 {
            return 0.0;
        }
        if p >= 1.0 {
            return 1.0;
        }
        -f64::exp_m1(window as f64 * (-p).ln_1p())
    }

    /// Fault decisions made so far at `site` (in any sampling mode, at any
    /// rate — zero-rate decisions count too). A fault-free probe trial thus
    /// measures the decision window a real trial of the same design point
    /// spans, which is what the analytic zero-fault fast path and the
    /// stratified estimator condition on.
    pub fn decision_count(&self, site: FaultSite) -> u64 {
        self.decisions[Self::site_index(site)]
    }

    /// The number of clean upcoming decisions at `site` before the next
    /// fault fires (`Some(0)` = the very next decision faults,
    /// `Some(u64::MAX)` = never), or `None` when the question has no
    /// precomputed answer (per-op sampling, or an open temporal-boost
    /// window whose effective rate differs from the site's base rate).
    ///
    /// Priming is stream-preserving: if the site's first skip has not been
    /// sampled yet, this consumes exactly the RNG draw the first
    /// [`Self::apply`] at this site would have consumed, so peeking and
    /// then executing yields the identical fault pattern as executing
    /// blind. This is the scalar half of the analytic zero-fault fast path:
    /// when the returned index is at or beyond the trial's whole decision
    /// window, the trial is settled clean without simulating a gate.
    pub fn next_fault_in(&mut self, site: FaultSite) -> Option<u64> {
        if self.sampling != FaultSampling::SkipAhead || self.temporal_boost_remaining > 0 {
            return None;
        }
        let p = self.rates.for_site(site);
        if p <= 0.0 {
            return Some(u64::MAX);
        }
        if p >= 1.0 {
            return Some(0);
        }
        let idx = Self::site_index(site);
        if !matches!(self.skips[idx], Some(s) if s.p == p) {
            let remaining = Self::sample_geometric(&mut self.rng, p);
            self.skips[idx] = Some(PendingSkip { p, remaining });
        }
        self.skips[idx].map(|s| s.remaining)
    }

    /// Replaces the site's pending skip with one conditioned on a fault
    /// firing within the next `window` decisions (see
    /// [`Self::sample_truncated_geometric`]). Decisions after that first
    /// fault resample unconditionally, which together yields exactly the
    /// law of a fault sequence conditioned on "≥ 1 fault in the window" —
    /// the sampled stratum of the stratified estimator. No-op in regimes
    /// where conditioning is meaningless (`p ≤ 0`, `p ≥ 1`, empty window,
    /// per-op sampling).
    pub fn condition_first_fault(&mut self, site: FaultSite, window: u64) {
        if self.sampling != FaultSampling::SkipAhead {
            return;
        }
        let p = self.rates.for_site(site);
        if window == 0 || p <= 0.0 || p >= 1.0 {
            return;
        }
        let remaining = Self::sample_truncated_geometric(&mut self.rng, p, window);
        self.skips[Self::site_index(site)] = Some(PendingSkip { p, remaining });
    }

    /// Forces a fault at the given location (used by directed tests and the
    /// SEP-guarantee analysis, which enumerates error sites exhaustively).
    pub fn force(&mut self, site: FaultSite, row: usize, col: usize) {
        self.log.push(InjectedFault {
            site,
            row,
            col,
            step: self.step,
        });
    }

    /// Log of all injected faults so far.
    pub fn log(&self) -> &[InjectedFault] {
        &self.log
    }

    /// Number of injected faults.
    pub fn fault_count(&self) -> usize {
        self.log.len()
    }

    /// Clears the fault log (keeps rates, correlation and RNG state).
    pub fn clear_log(&mut self) {
        self.log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_flips() {
        let mut inj = FaultInjector::disabled();
        for i in 0..1000 {
            assert!(inj.apply(FaultSite::GateOutput, 0, i, true));
            assert!(!inj.apply(FaultSite::Write, 0, i, false));
        }
        assert_eq!(inj.fault_count(), 0);
    }

    #[test]
    fn always_faulty_injector_always_flips() {
        let mut inj = FaultInjector::new(ErrorRates::uniform(1.0), 1);
        assert!(!inj.apply(FaultSite::GateOutput, 0, 0, true));
        assert!(inj.apply(FaultSite::Write, 1, 2, false));
        assert_eq!(inj.fault_count(), 2);
        assert_eq!(inj.log()[0].site, FaultSite::GateOutput);
        assert_eq!(inj.log()[1].row, 1);
    }

    #[test]
    fn fault_rate_is_approximately_respected() {
        let mut inj = FaultInjector::new(
            ErrorRates {
                gate: 0.1,
                ..ErrorRates::NONE
            },
            42,
        );
        let n = 20_000;
        for i in 0..n {
            inj.apply(FaultSite::GateOutput, 0, i, false);
        }
        let rate = inj.fault_count() as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "observed rate {rate}");
        // Write path should have zero faults.
        inj.clear_log();
        for i in 0..n {
            inj.apply(FaultSite::Write, 0, i, false);
        }
        assert_eq!(inj.fault_count(), 0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(ErrorRates::uniform(0.05), seed);
            (0..500)
                .map(|i| inj.apply(FaultSite::GateOutput, 0, i, false))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn same_seed_yields_the_identical_fault_sequence() {
        // Not just the same flip decisions: the logged fault sequence
        // (site, row, col, step) must be identical event for event, across
        // a mixed-site operation stream.
        let run = |seed| {
            let mut inj = FaultInjector::new(ErrorRates::uniform(0.02), seed);
            for i in 0..2_000usize {
                let site = match i % 4 {
                    0 => FaultSite::GateOutput,
                    1 => FaultSite::Write,
                    2 => FaultSite::Read,
                    _ => FaultSite::Retention,
                };
                inj.apply(site, i % 7, i % 253, i % 2 == 0);
                if i % 5 == 0 {
                    inj.advance_step();
                }
            }
            inj.log().to_vec()
        };
        let first = run(99);
        assert!(!first.is_empty(), "this regime must inject faults");
        assert_eq!(first, run(99), "same seed => identical fault log");
        assert_ne!(first, run(100), "different seed => different log");
    }

    #[test]
    fn temporal_correlation_boosts_following_operations() {
        let correlated = CorrelationModel {
            spatial_burst: 0,
            temporal_window: 50,
            temporal_factor: 20.0,
        };
        let count_faults = |corr: Option<CorrelationModel>| {
            let mut inj = FaultInjector::new(ErrorRates::uniform(0.01), 3);
            if let Some(c) = corr {
                inj = inj.with_correlation(c);
            }
            for i in 0..5_000 {
                inj.apply(FaultSite::GateOutput, 0, i, false);
                inj.advance_step();
            }
            inj.fault_count()
        };
        let base = count_faults(None);
        let boosted = count_faults(Some(correlated));
        assert!(
            boosted > base * 2,
            "temporal correlation should raise the fault count ({base} vs {boosted})"
        );
    }

    #[test]
    fn forced_faults_are_logged() {
        let mut inj = FaultInjector::disabled();
        inj.force(FaultSite::Retention, 3, 200);
        assert_eq!(inj.fault_count(), 1);
        assert_eq!(inj.log()[0].col, 200);
    }

    #[test]
    fn skip_sampling_matches_bernoulli_rate_within_confidence_interval() {
        // The geometric skip sampler must reproduce the Bernoulli(p)
        // marginal: over n ops the empirical rate of both modes must sit
        // within a 4σ binomial confidence interval of p, for rates spanning
        // the paper regime.
        for p in [1e-2, 1e-3] {
            let n: usize = 2_000_000;
            let sigma = (p * (1.0 - p) / n as f64).sqrt();
            let tolerance = 4.0 * sigma;

            let count_mode = |per_op: bool| {
                let rates = ErrorRates {
                    gate: p,
                    ..ErrorRates::NONE
                };
                let mut inj = FaultInjector::new(rates, 0xFA57);
                if per_op {
                    inj = inj.with_per_op_sampling();
                }
                for i in 0..n {
                    inj.apply(FaultSite::GateOutput, 0, i % 251, false);
                }
                inj.fault_count() as f64 / n as f64
            };

            let skip_rate = count_mode(false);
            let bernoulli_rate = count_mode(true);
            assert!(
                (skip_rate - p).abs() < tolerance,
                "skip-ahead rate {skip_rate} vs p={p} (±{tolerance})"
            );
            assert!(
                (bernoulli_rate - p).abs() < tolerance,
                "per-op rate {bernoulli_rate} vs p={p} (±{tolerance})"
            );
        }
    }

    #[test]
    fn skip_sampling_stays_unbiased_across_an_alternating_rate_stream() {
        // The discard-and-resample behavior on a rate change must leave
        // every operation faulting at exactly its own rate. Drive the skip
        // decider with blocks that alternate between two rates — each rate
        // change lands mid-skip essentially always — and check each rate's
        // empirical marginal against its own 4σ binomial interval, plus the
        // pooled stream against the blended rate.
        let (p_lo, p_hi) = (2e-3, 2e-2);
        let block = 500usize;
        let blocks = 4_000usize;
        let mut inj = FaultInjector::new(
            ErrorRates {
                gate: p_lo,
                ..ErrorRates::NONE
            },
            0x00A1_7E41,
        );
        let (mut n_lo, mut k_lo, mut n_hi, mut k_hi) = (0u64, 0u64, 0u64, 0u64);
        for b in 0..blocks {
            let hi = b % 2 == 1;
            let p = if hi { p_hi } else { p_lo };
            for _ in 0..block {
                let faulted = inj.skip_decide(0, p);
                if hi {
                    n_hi += 1;
                    k_hi += u64::from(faulted);
                } else {
                    n_lo += 1;
                    k_lo += u64::from(faulted);
                }
            }
        }
        for (label, p, n, k) in [("lo", p_lo, n_lo, k_lo), ("hi", p_hi, n_hi, k_hi)] {
            let rate = k as f64 / n as f64;
            let tolerance = 4.0 * (p * (1.0 - p) / n as f64).sqrt();
            assert!(
                (rate - p).abs() < tolerance,
                "{label}-rate marginal {rate} vs p={p} (±{tolerance})"
            );
        }
        let blended = (p_lo + p_hi) / 2.0;
        let pooled = (k_lo + k_hi) as f64 / (n_lo + n_hi) as f64;
        let tol = 4.0 * (blended * (1.0 - blended) / (n_lo + n_hi) as f64).sqrt();
        assert!(
            (pooled - blended).abs() < tol,
            "pooled marginal {pooled} vs blended {blended} (±{tol})"
        );
    }

    #[test]
    fn subnormal_rates_never_fault_instead_of_always_faulting() {
        // ln_1p(-p) underflows toward -0.0 for subnormal p; the quotient in
        // sample_geometric can then be NaN, and `NaN as u64` saturates to 0
        // — i.e. a fault on every operation at a rate of ~5e-324. The NaN
        // guard must map that regime to "no fault in any horizon".
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..64 {
            let skip = FaultInjector::sample_geometric(&mut rng, f64::MIN_POSITIVE);
            assert_eq!(skip, u64::MAX, "subnormal p must skip forever");
        }
        let rates = ErrorRates {
            gate: f64::MIN_POSITIVE,
            ..ErrorRates::NONE
        };
        let mut inj = FaultInjector::new(rates, 0x5AB);
        for i in 0..10_000 {
            inj.apply(FaultSite::GateOutput, 0, i % 251, false);
        }
        assert_eq!(inj.fault_count(), 0, "p = f64::MIN_POSITIVE is ~never");
    }

    #[test]
    fn truncated_geometric_matches_the_conditioned_distribution() {
        // Every sample must land in [0, window), and the empirical pmf must
        // match (1-p)^s * p / P1 — the unconditional geometric rescaled by
        // the fault-within-window probability.
        let (p, window) = (0.05, 20u64);
        let p1 = FaultInjector::fault_within_probability(p, window);
        let n = 400_000usize;
        let mut counts = vec![0u64; window as usize];
        let mut rng = ChaCha8Rng::seed_from_u64(0x7121);
        for _ in 0..n {
            let s = FaultInjector::sample_truncated_geometric(&mut rng, p, window);
            assert!(s < window, "sample {s} outside window {window}");
            counts[s as usize] += 1;
        }
        for (s, &k) in counts.iter().enumerate() {
            let expect = (1.0 - p).powi(s as i32) * p / p1;
            let got = k as f64 / n as f64;
            let tol = 5.0 * (expect * (1.0 - expect) / n as f64).sqrt();
            assert!(
                (got - expect).abs() < tol,
                "pmf at s={s}: got {got}, want {expect} (±{tol})"
            );
        }
    }

    #[test]
    fn fault_within_probability_handles_degenerate_regimes() {
        assert_eq!(FaultInjector::fault_within_probability(0.0, 100), 0.0);
        assert_eq!(FaultInjector::fault_within_probability(0.5, 0), 0.0);
        assert_eq!(FaultInjector::fault_within_probability(1.0, 3), 1.0);
        let p1 = FaultInjector::fault_within_probability(1e-4, 1000);
        assert!((p1 - 0.09516).abs() < 1e-4, "got {p1}");
        // Deep rare-event regime: log-space evaluation keeps precision.
        let tiny = FaultInjector::fault_within_probability(1e-9, 10);
        assert!((tiny - 1e-8).abs() < 1e-12, "got {tiny}");
    }

    #[test]
    fn peeking_the_next_fault_preserves_the_decision_stream() {
        // next_fault_in primes the lazy first skip with the exact RNG draw
        // apply would have made, so peek-then-execute equals execute-blind.
        let rates = ErrorRates {
            gate: 0.01,
            ..ErrorRates::NONE
        };
        let run = |peek: bool| {
            let mut inj = FaultInjector::new(rates, 0xBEEF);
            let next = if peek {
                inj.next_fault_in(FaultSite::GateOutput)
            } else {
                None
            };
            let decisions: Vec<bool> = (0..2_000)
                .map(|i| inj.apply(FaultSite::GateOutput, 0, i % 13, false))
                .collect();
            (next, decisions)
        };
        let (next, peeked) = run(true);
        let (_, blind) = run(false);
        assert_eq!(peeked, blind, "peeking must not perturb the stream");
        let first_fault = peeked.iter().position(|&f| f);
        assert_eq!(
            first_fault.map(|i| i as u64),
            next.filter(|&n| n < 2_000),
            "the peeked index must be the first firing decision"
        );
        // Degenerate regimes answer without touching the RNG.
        let mut zero = FaultInjector::new(ErrorRates::NONE, 1);
        assert_eq!(zero.next_fault_in(FaultSite::GateOutput), Some(u64::MAX));
        let mut certain = FaultInjector::new(ErrorRates::uniform(1.0), 1);
        assert_eq!(certain.next_fault_in(FaultSite::GateOutput), Some(0));
        let mut per_op = FaultInjector::new(rates, 1).with_per_op_sampling();
        assert_eq!(per_op.next_fault_in(FaultSite::GateOutput), None);
    }

    #[test]
    fn conditioning_guarantees_a_fault_inside_the_window() {
        let rates = ErrorRates {
            gate: 1e-4,
            ..ErrorRates::NONE
        };
        let window = 500u64;
        for seed in 0..200 {
            let mut inj = FaultInjector::new(rates, seed);
            inj.condition_first_fault(FaultSite::GateOutput, window);
            let mut fired = false;
            for i in 0..window {
                if inj.apply(FaultSite::GateOutput, 0, i as usize % 251, false) {
                    fired = true;
                    break;
                }
            }
            assert!(fired, "seed {seed}: conditioned trial must fault in-window");
        }
        assert_eq!(
            FaultInjector::new(rates, 9).decision_count(FaultSite::GateOutput),
            0
        );
        let mut counted = FaultInjector::new(ErrorRates::NONE, 9);
        for i in 0..37 {
            counted.apply(FaultSite::GateOutput, 0, i, false);
        }
        counted.apply(FaultSite::Write, 0, 0, false);
        assert_eq!(counted.decision_count(FaultSite::GateOutput), 37);
        assert_eq!(counted.decision_count(FaultSite::Write), 1);
        counted.reset(ErrorRates::NONE, 9);
        assert_eq!(counted.decision_count(FaultSite::GateOutput), 0);
    }

    #[test]
    fn skip_sampling_is_deterministic_and_resets_cleanly() {
        let rates = ErrorRates {
            gate: 0.01,
            ..ErrorRates::NONE
        };
        let run = |inj: &mut FaultInjector| {
            (0..5_000)
                .map(|i| inj.apply(FaultSite::GateOutput, 0, i % 61, false))
                .collect::<Vec<_>>()
        };
        let mut fresh = FaultInjector::new(rates, 77);
        let baseline = run(&mut fresh);
        // Reset-in-place must reproduce the fresh stream exactly.
        fresh.reset(rates, 77);
        assert_eq!(run(&mut fresh), baseline);
        // A once-used injector reset to a different seed diverges.
        fresh.reset(rates, 78);
        assert_ne!(run(&mut fresh), baseline);
    }

    #[test]
    fn stuck_at_maps_are_reproducible_and_respect_the_density() {
        let rates = ErrorRates::NONE.with_stuck_at(0.05);
        let a = FaultInjector::new(rates, 0xD00D);
        let b = FaultInjector::new(rates, 0xD00D);
        let c = FaultInjector::new(rates, 0xD00E);
        let mut defects = 0usize;
        let mut sa1 = 0usize;
        let mut differs_from_other_seed = false;
        for row in 0..64 {
            for col in 0..256 {
                let s = a.stuck_value(row, col);
                assert_eq!(s, b.stuck_value(row, col), "same seed => same map");
                if s != c.stuck_value(row, col) {
                    differs_from_other_seed = true;
                }
                if let Some(v) = s {
                    defects += 1;
                    sa1 += usize::from(v);
                }
            }
        }
        assert!(differs_from_other_seed, "different seed => different map");
        let density = defects as f64 / (64.0 * 256.0);
        assert!(
            (density - 0.05).abs() < 0.01,
            "defect density {density} should approximate 0.05"
        );
        // Both polarities occur in roughly equal shares.
        let sa1_frac = sa1 as f64 / defects as f64;
        assert!(
            (sa1_frac - 0.5).abs() < 0.15,
            "SA1 fraction {sa1_frac} should be near 0.5"
        );
    }

    #[test]
    fn stuck_cells_pin_stores_without_perturbing_the_transient_stream() {
        let transient = ErrorRates {
            gate: 0.01,
            ..ErrorRates::NONE
        };
        let run = |rates: ErrorRates| {
            let mut inj = FaultInjector::new(rates, 0x57CC);
            (0..3_000)
                .map(|i| inj.apply(FaultSite::GateOutput, i % 5, i % 191, false))
                .collect::<Vec<_>>()
        };
        let plain = run(transient);
        let with_defects = run(transient.with_stuck_at(0.02));
        // The streams differ only at defective cells, where the stored bit
        // is pinned to the stuck value regardless of the transient outcome.
        let inj = FaultInjector::new(transient.with_stuck_at(0.02), 0x57CC);
        assert!(inj.has_defects());
        let mut overridden = 0usize;
        for (i, (&p, &d)) in plain.iter().zip(&with_defects).enumerate() {
            match inj.stuck_value(i % 5, i % 191) {
                Some(stuck) => {
                    assert_eq!(d, stuck, "op {i}: defective cell must read stuck value");
                    overridden += usize::from(p != d);
                }
                None => assert_eq!(p, d, "op {i}: healthy cells must be unaffected"),
            }
        }
        assert!(overridden > 0, "some stores must actually be overridden");
        // Reads are never overridden: the stored value already reflects the
        // defect, so a healthy transient read stream passes through.
        let mut reader = FaultInjector::new(ErrorRates::NONE.with_stuck_at(1.0), 3);
        assert!(reader.apply(FaultSite::Read, 0, 0, true));
        assert!(!reader.apply(FaultSite::Read, 0, 0, false));
        // But every store lands on a defect at density 1.0.
        let pinned = reader.apply(FaultSite::Write, 0, 0, true);
        assert_eq!(reader.apply(FaultSite::Write, 0, 0, !pinned), pinned);
    }

    #[test]
    fn defect_seed_derivation_is_salted_off_the_fault_stream() {
        // The defect map comes from a SplitMix hash of the trial seed, not
        // from the ChaCha stream — two injectors with the same seed but
        // different stuck densities produce identical transient decisions.
        assert_ne!(stuck_defect_seed(1), stuck_defect_seed(2));
        assert_ne!(stuck_defect_seed(7), splitmix64(7));
        assert_eq!(stuck_threshold(0.0), 0);
        assert_eq!(stuck_threshold(1.5), u64::MAX);
        assert!(stuck_threshold(0.5) > u64::MAX / 3);
        assert_eq!(stuck_at_state(9, 0, 3, 4), None);
    }

    #[test]
    fn skip_state_survives_interleaved_zero_rate_sites() {
        // Ops at p == 0 (e.g. writes in a gate-only regime) must not consume
        // or invalidate the gate site's pending skip counter.
        let rates = ErrorRates {
            gate: 0.02,
            ..ErrorRates::NONE
        };
        let gates_only = {
            let mut inj = FaultInjector::new(rates, 5);
            (0..4_000)
                .map(|i| inj.apply(FaultSite::GateOutput, 0, i % 17, false))
                .collect::<Vec<_>>()
        };
        let interleaved = {
            let mut inj = FaultInjector::new(rates, 5);
            (0..4_000)
                .map(|i| {
                    inj.apply(FaultSite::Write, 0, i % 17, true);
                    inj.apply(FaultSite::GateOutput, 0, i % 17, false)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(gates_only, interleaved);
    }
}
