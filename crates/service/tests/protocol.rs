//! Wire-protocol integration tests: a real `TcpListener` + the real
//! connection loop, driven through the blocking [`Client`].
//!
//! The satellite requirements: malformed JSON, unknown commands, oversized
//! lines and mid-job cancellation all produce *structured* errors and never
//! poison the worker pool (a subsequent well-formed submission still runs
//! to completion).

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use nvpim_service::client::{request, Client};
use nvpim_service::service::{ServiceConfig, ServiceHandle};
use nvpim_sweep::SweepPlan;
use serde::Value;

/// Starts a daemon on an OS-assigned loopback port; returns its address
/// and the serving thread (joined via `shutdown`).
fn spawn_daemon(cfg: ServiceConfig) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let service = ServiceHandle::start(cfg);
    let handle = std::thread::spawn(move || {
        nvpim_service::serve(&service, listener).expect("serve");
    });
    (addr, handle)
}

fn shutdown(addr: &str, daemon: std::thread::JoinHandle<()>) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    let resp = client
        .request(&request("shutdown", vec![]))
        .expect("shutdown");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    daemon.join().expect("daemon thread exits");
}

fn error_code(resp: &Value) -> &str {
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(false),
        "expected an error response, got: {resp:?}"
    );
    resp.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Value::as_str)
        .expect("structured errors carry a code")
}

fn tiny_plan_value(seed: u64) -> Value {
    let mut plan = SweepPlan::quick();
    plan.seeds_per_point = 2;
    plan.campaign_seed = seed;
    serde_json::from_str(&plan.canonical_json()).expect("plan JSON parses")
}

fn submit_and_wait(client: &mut Client, seed: u64) -> Value {
    let accepted = client
        .request(&request(
            "submit",
            vec![("plan".to_string(), tiny_plan_value(seed))],
        ))
        .expect("submit");
    assert_eq!(accepted.get("ok").and_then(Value::as_bool), Some(true));
    let job = accepted.get("job").and_then(Value::as_u64).expect("job id");
    let result = client
        .request(&request(
            "result",
            vec![
                ("job".to_string(), Value::UInt(job)),
                ("wait".to_string(), Value::Bool(true)),
            ],
        ))
        .expect("result");
    assert_eq!(result.get("ok").and_then(Value::as_bool), Some(true));
    result
}

#[test]
fn malformed_and_unknown_requests_get_structured_errors() {
    let (addr, daemon) = spawn_daemon(ServiceConfig {
        workers: 1,
        ..Default::default()
    });
    let mut client = Client::connect(&addr).expect("connect");

    client.send_raw("this is not json{{{").expect("send");
    let resp = client.recv().expect("recv").expect("response");
    assert_eq!(error_code(&resp), "malformed_json");

    let resp = client
        .request(&request("frobnicate", vec![]))
        .expect("request");
    assert_eq!(error_code(&resp), "unknown_command");

    // No `cmd` field at all.
    client.send_raw("{\"plan\":\"quick\"}").expect("send");
    let resp = client.recv().expect("recv").expect("response");
    assert_eq!(error_code(&resp), "bad_request");

    // Bad plan shape is invalid_plan, not a connection teardown.
    let resp = client
        .request(&request(
            "submit",
            vec![("plan".to_string(), Value::Str("warp_speed".into()))],
        ))
        .expect("request");
    assert_eq!(error_code(&resp), "invalid_plan");

    // Unknown job ids.
    let resp = client
        .request(&request(
            "status",
            vec![("job".to_string(), Value::UInt(999))],
        ))
        .expect("request");
    assert_eq!(error_code(&resp), "unknown_job");

    // The same connection still serves real work afterwards.
    let result = submit_and_wait(&mut client, 101);
    assert!(result.get("report").is_some());

    shutdown(&addr, daemon);
}

#[test]
fn oversized_lines_error_and_do_not_poison_the_pool() {
    let (addr, daemon) = spawn_daemon(ServiceConfig {
        workers: 1,
        ..Default::default()
    });

    let mut client = Client::connect(&addr).expect("connect");
    let huge = "x".repeat(nvpim_service::MAX_LINE_BYTES + 10);
    client.send_raw(&huge).expect("send oversized");
    let resp = client.recv().expect("recv").expect("response");
    assert_eq!(error_code(&resp), "line_too_long");
    // The server closes this connection afterwards.
    assert!(client.recv().expect("eof read").is_none());

    // The pool is intact: a fresh connection runs a job fine.
    let mut client2 = Client::connect(&addr).expect("reconnect");
    let result = submit_and_wait(&mut client2, 102);
    assert!(result.get("report").is_some());

    shutdown(&addr, daemon);
}

#[test]
fn mid_job_cancel_returns_structured_errors_and_pool_survives() {
    let (addr, daemon) = spawn_daemon(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        chunk_trials: 1,
        ..Default::default()
    });
    let mut client = Client::connect(&addr).expect("connect");

    // A long job (3 points × 200 seeds = 600 trials at chunk size 1).
    let mut plan = SweepPlan::quick();
    plan.seeds_per_point = 200;
    plan.campaign_seed = 103;
    let plan_value: Value = serde_json::from_str(&plan.canonical_json()).expect("parses");
    let accepted = client
        .request(&request("submit", vec![("plan".to_string(), plan_value)]))
        .expect("submit");
    let job = accepted.get("job").and_then(Value::as_u64).expect("job id");

    // Wait until it is actually running.
    loop {
        let status = client
            .request(&request(
                "status",
                vec![("job".to_string(), Value::UInt(job))],
            ))
            .expect("status");
        let state = status
            .get("status")
            .and_then(|s| s.get("state"))
            .and_then(Value::as_str)
            .expect("state");
        if state == "running" {
            break;
        }
        assert_eq!(state, "queued", "job must not finish before cancellation");
        std::thread::sleep(Duration::from_millis(2));
    }

    let cancel = client
        .request(&request(
            "cancel",
            vec![("job".to_string(), Value::UInt(job))],
        ))
        .expect("cancel");
    assert_eq!(cancel.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(cancel.get("cancelled").and_then(Value::as_bool), Some(true));

    // Result is now a structured job_cancelled error.
    let resp = client
        .request(&request(
            "result",
            vec![
                ("job".to_string(), Value::UInt(job)),
                ("wait".to_string(), Value::Bool(true)),
            ],
        ))
        .expect("result");
    assert_eq!(error_code(&resp), "job_cancelled");

    // The worker survived the cancellation and still runs new jobs.
    let result = submit_and_wait(&mut client, 104);
    assert!(result.get("report").is_some());

    shutdown(&addr, daemon);
}

#[test]
fn submit_wait_streams_progress_then_byte_identical_result() {
    let (addr, daemon) = spawn_daemon(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        chunk_trials: 4,
        ..Default::default()
    });
    // Enough trials at a tiny chunk size that the packed-arena engine
    // (tens of microseconds per trial) still crosses many observable chunk
    // boundaries while the waiter is attached.
    let mut plan = SweepPlan::quick();
    plan.seeds_per_point = 96;
    plan.campaign_seed = 105;
    let direct = nvpim_sweep::run_campaign(&plan).expect("direct run");

    let mut client = Client::connect(&addr).expect("connect");
    let plan_value: Value = serde_json::from_str(&plan.canonical_json()).expect("parses");
    client
        .send(&request(
            "submit",
            vec![
                ("plan".to_string(), plan_value),
                ("wait".to_string(), Value::Bool(true)),
            ],
        ))
        .expect("send");
    let accepted = client.recv().expect("recv").expect("accepted line");
    assert_eq!(
        accepted.get("event").and_then(Value::as_str),
        Some("accepted")
    );
    let mut progress_events = 0;
    let report = loop {
        let line = client.recv().expect("recv").expect("line");
        assert_eq!(line.get("ok").and_then(Value::as_bool), Some(true));
        match line.get("event").and_then(Value::as_str) {
            Some("progress") => {
                progress_events += 1;
                let done = line
                    .get("trials_done")
                    .and_then(Value::as_u64)
                    .expect("trials_done");
                assert!(done <= plan.trial_count());
            }
            Some("result") => break line.get("report").expect("report").clone(),
            other => panic!("unexpected event {other:?}"),
        }
    };
    // The embedded report re-renders to exactly the bytes a direct
    // `run_campaign` produces (parse → pretty-print is lossless).
    assert_eq!(
        serde_json::to_string_pretty(&report).expect("serialize"),
        direct.to_json()
    );
    // At chunk size 4 a 48-trial campaign has many observable chunks; the
    // waiter may miss some while the job is fast, but not all.
    assert!(progress_events >= 1, "expected streamed progress events");

    shutdown(&addr, daemon);
}

#[test]
fn four_concurrent_clients_get_identical_cached_reports() {
    // The acceptance criterion: 4 concurrent clients submitting the same
    // plan each receive the identical report, served without extra
    // campaigns (coalesced in flight or content-address hits after).
    let (addr, daemon) = spawn_daemon(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        chunk_trials: 8,
        ..Default::default()
    });
    let mut plan = SweepPlan::quick();
    plan.seeds_per_point = 4;
    plan.campaign_seed = 106;
    let canonical = plan.canonical_json();

    let addr = Arc::new(addr);
    let reports: Vec<String> = (0..4)
        .map(|_| {
            let addr = Arc::clone(&addr);
            let canonical = canonical.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let plan_value: Value = serde_json::from_str(&canonical).expect("parses");
                let accepted = client
                    .request(&request("submit", vec![("plan".to_string(), plan_value)]))
                    .expect("submit");
                assert_eq!(accepted.get("ok").and_then(Value::as_bool), Some(true));
                let job = accepted.get("job").and_then(Value::as_u64).expect("job");
                let result = client
                    .request(&request(
                        "result",
                        vec![
                            ("job".to_string(), Value::UInt(job)),
                            ("wait".to_string(), Value::Bool(true)),
                        ],
                    ))
                    .expect("result");
                assert_eq!(result.get("ok").and_then(Value::as_bool), Some(true));
                serde_json::to_string_pretty(result.get("report").expect("report"))
                    .expect("serialize")
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    for pair in reports.windows(2) {
        assert_eq!(pair[0], pair[1], "all clients see identical bytes");
    }
    // And they match direct execution.
    assert_eq!(
        reports[0],
        nvpim_sweep::run_campaign(&plan).unwrap().to_json()
    );

    // Exactly one campaign ran: submissions minus one were coalesced or
    // cache hits.
    let mut client = Client::connect(addr.as_str()).expect("connect");
    let stats = client.request(&request("stats", vec![])).expect("stats");
    let stats = stats.get("stats").expect("stats payload");
    let completed = stats
        .get("jobs_completed")
        .and_then(Value::as_u64)
        .expect("jobs_completed");
    let coalesced = stats
        .get("jobs_coalesced")
        .and_then(Value::as_u64)
        .expect("jobs_coalesced");
    let hits = stats
        .get("report_cache_hits")
        .and_then(Value::as_u64)
        .expect("report_cache_hits");
    assert_eq!(completed, 1, "one campaign serves all four clients");
    assert_eq!(coalesced + hits, 3);

    shutdown(&addr, daemon);
}

#[test]
fn warm_resubmission_recompiles_nothing() {
    let (addr, daemon) = spawn_daemon(ServiceConfig {
        workers: 1,
        ..Default::default()
    });
    let mut client = Client::connect(&addr).expect("connect");

    let first = submit_and_wait(&mut client, 107);
    let first_report =
        serde_json::to_string_pretty(first.get("report").expect("report")).expect("serialize");

    let stats_before = client.request(&request("stats", vec![])).expect("stats");
    let compiles_before = stats_before
        .get("stats")
        .and_then(|s| s.get("schedule_cache_compiles"))
        .and_then(Value::as_u64)
        .expect("compiles");

    // Resubmit the identical plan: byte-identical report, zero compiles.
    let second = submit_and_wait(&mut client, 107);
    let second_report =
        serde_json::to_string_pretty(second.get("report").expect("report")).expect("serialize");
    assert_eq!(first_report, second_report);
    assert_eq!(second.get("cached").and_then(Value::as_bool), Some(true));

    let stats_after = client.request(&request("stats", vec![])).expect("stats");
    let stats_after = stats_after.get("stats").expect("payload");
    assert_eq!(
        stats_after
            .get("schedule_cache_compiles")
            .and_then(Value::as_u64),
        Some(compiles_before),
        "cache-hit submissions must not compile schedules"
    );
    assert!(
        stats_after
            .get("report_cache_hits")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1
    );

    shutdown(&addr, daemon);
}

/// A scheme that landed through the registry's plugin path (ParityDetect)
/// runs end-to-end through the daemon with zero service-side dispatch
/// edits: the wire protocol parses it like any built-in, the campaign
/// executes, and the served report is byte-identical to a direct
/// `run_campaign` of the same plan.
#[test]
fn plugin_scheme_runs_through_the_daemon_byte_identically() {
    let (addr, daemon) = spawn_daemon(ServiceConfig::default());
    let mut plan = SweepPlan::quick();
    plan.protections = vec![
        nvpim_sweep::ProtectionConfig::PARITY_DETECT,
        nvpim_sweep::ProtectionConfig::PARITY_DETECT_SINGLE_OUTPUT,
    ];
    plan.seeds_per_point = 3;
    plan.campaign_seed = 0x9a41;
    let plan_value: Value = serde_json::from_str(&plan.canonical_json()).expect("plan JSON parses");

    let mut client = Client::connect(&addr).expect("connect");
    let accepted = client
        .request(&request("submit", vec![("plan".to_string(), plan_value)]))
        .expect("submit");
    assert_eq!(
        accepted.get("ok").and_then(Value::as_bool),
        Some(true),
        "ParityDetect submission must be accepted: {accepted:?}"
    );
    let job = accepted.get("job").and_then(Value::as_u64).expect("job id");
    let result = client
        .request(&request(
            "result",
            vec![
                ("job".to_string(), Value::UInt(job)),
                ("wait".to_string(), Value::Bool(true)),
            ],
        ))
        .expect("result");
    assert_eq!(result.get("ok").and_then(Value::as_bool), Some(true));
    let served = result.get("report").expect("result carries a report");
    let direct = nvpim_sweep::run_campaign(&plan).expect("direct run");
    assert_eq!(
        serde_json::to_string_pretty(served).expect("serialize"),
        direct.to_json(),
        "daemon-served ParityDetect report must match direct execution byte for byte"
    );
    let summary = direct
        .points
        .iter()
        .find(|p| p.protection == "parity/m-o")
        .expect("parity point present");
    assert_eq!(summary.corrections_written_back, 0, "detection-only");
    shutdown(&addr, daemon);
}

/// `ping` is the fleet heartbeat: cheap, never queued, and it reports the
/// drain/shutdown flags so a coordinator can tell "unschedulable but
/// alive" from "dead".
#[test]
fn ping_reports_liveness_over_the_wire() {
    let (addr, daemon) = spawn_daemon(ServiceConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let resp = client.request(&request("ping", vec![])).expect("ping");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(resp.get("event").and_then(Value::as_str), Some("pong"));
    assert_eq!(resp.get("draining").and_then(Value::as_bool), Some(false));
    assert_eq!(
        resp.get("shutting_down").and_then(Value::as_bool),
        Some(false)
    );
    shutdown(&addr, daemon);
}

/// `run_shard` streams `shard_accepted`, per-chunk outcome checkpoints,
/// and `shard_done`; the streamed outcomes re-aggregate to the exact
/// byte-identical report of a whole-campaign run. Bad ranges get the
/// structured `bad_shard` error, not a teardown.
#[test]
fn run_shard_streams_resumable_chunk_checkpoints() {
    let (addr, daemon) = spawn_daemon(ServiceConfig::default());
    let mut plan = SweepPlan::quick();
    plan.seeds_per_point = 2;
    plan.campaign_seed = 0x5a4d;
    let total = plan.trial_count();
    let plan_value: Value = serde_json::from_str(&plan.canonical_json()).expect("plan JSON parses");

    let mut client = Client::connect(&addr).expect("connect");
    client
        .send(&request(
            "run_shard",
            vec![
                ("plan".to_string(), plan_value.clone()),
                ("start".to_string(), Value::UInt(0)),
                ("end".to_string(), Value::UInt(total)),
                ("chunk_trials".to_string(), Value::UInt(4)),
            ],
        ))
        .expect("send run_shard");
    let accepted = client.recv().expect("recv").expect("shard_accepted");
    assert_eq!(
        accepted.get("event").and_then(Value::as_str),
        Some("shard_accepted")
    );
    assert_eq!(accepted.get("resumed").and_then(Value::as_u64), Some(0));
    let mut outcomes = Vec::new();
    loop {
        let line = client.recv().expect("recv").expect("stream line");
        assert_eq!(line.get("ok").and_then(Value::as_bool), Some(true));
        match line.get("event").and_then(Value::as_str) {
            Some("shard_chunk") => {
                for item in line
                    .get("outcomes")
                    .and_then(Value::as_array)
                    .expect("chunk outcomes")
                {
                    outcomes.push(
                        nvpim_sweep::TrialOutcome::from_json_value(item).expect("outcome decodes"),
                    );
                }
            }
            Some("shard_done") => {
                assert_eq!(line.get("trials").and_then(Value::as_u64), Some(total));
                break;
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(outcomes.len() as u64, total);

    // The streamed outcomes aggregate to the exact single-run report.
    let mut cache = nvpim_sweep::ScheduleCache::new();
    let prepared = nvpim_sweep::prepare_campaign(&plan, &mut cache).expect("prepare");
    let report = prepared
        .report_from_outcomes(&outcomes)
        .expect("complete outcome list merges");
    let direct = nvpim_sweep::run_campaign(&plan).expect("direct run");
    assert_eq!(report.to_json(), direct.to_json());

    // Inverted range: structured error, connection stays usable.
    let resp = client
        .request(&request(
            "run_shard",
            vec![
                ("plan".to_string(), plan_value),
                ("start".to_string(), Value::UInt(5)),
                ("end".to_string(), Value::UInt(1)),
            ],
        ))
        .expect("request");
    assert_eq!(error_code(&resp), "bad_shard");
    let pong = client.request(&request("ping", vec![])).expect("ping");
    assert_eq!(pong.get("event").and_then(Value::as_str), Some("pong"));
    shutdown(&addr, daemon);
}

/// Backpressure over the wire: a full bounded queue answers `overloaded`
/// with a `retry_after_ms` hint inside the structured error — the value
/// clients feed into their backoff loop.
#[test]
fn overloaded_reply_carries_a_retry_hint() {
    let (addr, daemon) = spawn_daemon(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        ..Default::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    // A slow job to occupy the single worker...
    let mut slow = SweepPlan::quick();
    slow.seeds_per_point = 64;
    slow.campaign_seed = 0xb10c;
    let slow_value: Value = serde_json::from_str(&slow.canonical_json()).expect("plan JSON");
    let accepted = client
        .request(&request("submit", vec![("plan".to_string(), slow_value)]))
        .expect("submit slow");
    assert_eq!(accepted.get("ok").and_then(Value::as_bool), Some(true));
    // ...then fill the queue and overflow it with distinct digests.
    let mut saw_overloaded = false;
    for seed in 0..8u64 {
        let resp = client
            .request(&request(
                "submit",
                vec![("plan".to_string(), tiny_plan_value(0x0f00 + seed))],
            ))
            .expect("submit");
        if resp.get("ok").and_then(Value::as_bool) == Some(false) {
            assert_eq!(error_code(&resp), "overloaded");
            let hint = resp
                .get("error")
                .and_then(|e| e.get("retry_after_ms"))
                .and_then(Value::as_u64)
                .expect("overloaded error carries retry_after_ms");
            assert!(
                (10..=10_000).contains(&hint),
                "hint {hint} outside the clamp band"
            );
            saw_overloaded = true;
            break;
        }
    }
    assert!(saw_overloaded, "the bounded queue never reported overload");
    shutdown(&addr, daemon);
}
